//! Algorithm shootout: run the paper's full algorithm suite on one workload and print
//! a comparison table (a miniature Figure 8).
//!
//! ```text
//! cargo run -p touch --release --example algorithm_shootout [epsilon]
//! ```

use touch::baselines::full_suite;
use touch::{CountingSink, JoinQuery, SyntheticDistribution, SyntheticSpec};

fn main() {
    let epsilon: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);

    // A small-scale version of the paper's Figure 8 workload: uniform data,
    // |A| = 5 000, |B| = 40 000, eps = 10 (override via the first CLI argument).
    let a = SyntheticSpec::new(5_000, SyntheticDistribution::Uniform).generate(11);
    let b = SyntheticSpec::new(40_000, SyntheticDistribution::Uniform).generate(12);
    println!("joining |A| = {} with |B| = {} (uniform, eps = {epsilon})\n", a.len(), b.len());
    println!(
        "{:<12} {:>14} {:>10} {:>12} {:>12}",
        "algorithm", "comparisons", "results", "memory [KB]", "time [ms]"
    );

    let mut reference_results: Option<u64> = None;
    for algo in full_suite() {
        let report = JoinQuery::new(&a, &b)
            .within_distance(epsilon)
            .engine(algo.as_ref())
            .run(&mut CountingSink::new());
        println!(
            "{:<12} {:>14} {:>10} {:>12.0} {:>12.1}",
            report.algorithm,
            report.counters.comparisons,
            report.result_pairs(),
            report.memory_bytes as f64 / 1e3,
            report.total_time().as_secs_f64() * 1e3
        );
        // Every algorithm must agree on the result count — the same guarantee the
        // integration tests enforce.
        match reference_results {
            None => reference_results = Some(report.result_pairs()),
            Some(expected) => assert_eq!(
                report.result_pairs(),
                expected,
                "{} disagrees with the other algorithms",
                report.algorithm
            ),
        }
    }
    println!("\nall algorithms reported {} pairs", reference_results.unwrap_or(0));
}

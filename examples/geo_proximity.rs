//! Geographic proximity join — the GIS use case from the paper's introduction.
//!
//! Finds every (facility, dwelling) pair within a protection distance of each other
//! in a synthetic 2-D city layout. The library is 3-D; 2-D data simply uses a
//! degenerate (zero-extent) z axis. The example also cross-checks TOUCH against the
//! R-tree baseline to show that any [`SpatialJoinAlgorithm`] is a drop-in choice.
//!
//! ```text
//! cargo run -p touch --release --example geo_proximity
//! ```

use touch::{
    Aabb, CollectingSink, Dataset, JoinQuery, Point3, RTreeSyncJoin, SpatialJoinAlgorithm,
    TouchJoin,
};

/// Builds an axis-aligned 2-D footprint (a building, a park, a facility) as a
/// degenerate 3-D box.
fn footprint(x: f64, y: f64, width: f64, depth: f64) -> Aabb {
    Aabb::new(Point3::new(x, y, 0.0), Point3::new(x + width, y + depth, 0.0))
}

fn main() {
    // 1. A synthetic city: a few hundred industrial facilities (dataset A) and a
    //    dense grid of residential blocks (dataset B), coordinates in metres.
    let mut facilities = Dataset::new();
    let mut state = 7u64;
    let mut rand01 = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    for _ in 0..400 {
        let x = rand01() * 20_000.0;
        let y = rand01() * 20_000.0;
        facilities.push_mbr(footprint(x, y, 40.0 + rand01() * 120.0, 40.0 + rand01() * 120.0));
    }
    let mut dwellings = Dataset::new();
    for gx in 0..200 {
        for gy in 0..200 {
            let x = gx as f64 * 100.0 + 10.0;
            let y = gy as f64 * 100.0 + 10.0;
            dwellings.push_mbr(footprint(x, y, 60.0, 60.0));
        }
    }
    println!("{} facilities, {} residential blocks", facilities.len(), dwellings.len());

    // 2. Which residential blocks lie within 250 m of a facility? The query layer
    //    translates the distance predicate into an intersection join internally.
    let protection_distance = 250.0;
    let mut query = JoinQuery::new(&facilities, &dwellings).within_distance(protection_distance);

    let touch = TouchJoin::default();
    let mut touch_sink = CollectingSink::new();
    let report = query.run(&mut touch_sink);
    let pairs = touch_sink.sorted_pairs();
    println!(
        "TOUCH: {} facility/block conflicts, {} comparisons, {:.1} ms",
        pairs.len(),
        report.counters.comparisons,
        report.total_time().as_secs_f64() * 1e3
    );

    // 3. Cross-check with the synchronous R-tree traversal baseline: swap the
    //    engine, keep the query — identical result.
    let rtree = RTreeSyncJoin::paper_default();
    let mut rtree_sink = CollectingSink::new();
    let mut query = query.engine(rtree);
    let rtree_report = query.run(&mut rtree_sink);
    let rtree_pairs = rtree_sink.sorted_pairs();
    println!(
        "RTree: {} conflicts, {} comparisons, {:.1} ms",
        rtree_pairs.len(),
        rtree_report.counters.comparisons,
        rtree_report.total_time().as_secs_f64() * 1e3
    );
    assert_eq!(pairs, rtree_pairs, "both algorithms must find the same conflicts");

    // 4. Summarise: how many distinct blocks are affected?
    let mut affected: Vec<u32> = pairs.iter().map(|&(_, block)| block).collect();
    affected.sort_unstable();
    affected.dedup();
    println!(
        "{} of {} residential blocks ({:.1}%) lie within {protection_distance} m of a facility",
        affected.len(),
        dwellings.len(),
        100.0 * affected.len() as f64 / dwellings.len() as f64
    );
    println!("algorithms used: {} and {}", touch.name(), rtree.name());
}

//! Collision detection in a moving world: ~20 lines from [`World::random`] to
//! collision pairs every tick.
//!
//! ```text
//! cargo run -p touch --release --example collision_tick
//! ```

use touch::{TickConfig, TickEngine, World};

fn main() {
    // 50 000 entities in the default clustered 1000³ world, colliding when
    // their boxes come within 5 units of each other.
    let world = World::random(50_000, 42);
    let config = TickConfig::default().with_epsilon(5.0).with_threads(0); // 0 = auto-detect
    let mut engine = TickEngine::new(world, config);

    for _ in 0..20 {
        let record = engine.tick();
        println!(
            "tick {:>2}: {:>6} collision pairs in {:>6} µs{}",
            record.tick,
            record.pairs,
            record.latency_us,
            if record.replanned { "  (re-planned)" } else { "" },
        );
        // engine.pairs() holds this tick's (i, j) entity pairs, i < j, sorted.
    }

    let report = engine.report();
    println!("\n{}", report.to_csv());
    println!(
        "sustained: {:.0} ticks/sec, p99 {} µs",
        report.summary.ticks_per_sec(),
        report.summary.p99_us()
    );
}

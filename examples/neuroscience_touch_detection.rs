//! Touch detection — the paper's motivating neuroscience application.
//!
//! Synapses are placed wherever an axon branch comes within a threshold distance of a
//! dendrite branch. This example generates a synthetic neural tissue model (branching
//! cylinder morphologies), runs the TOUCH *filtering* phase on the cylinder MBRs and
//! then the *refinement* phase on the exact cylinder geometry, and reports how many
//! synapse locations were found.
//!
//! ```text
//! cargo run -p touch --release --example neuroscience_touch_detection
//! ```

use touch::{distance_join, Cylinder, NeuroscienceSpec, ResultSink, TouchJoin};

fn main() {
    // 1. Build a synthetic tissue model at 1 % of the paper's scale: ~6.4 K axon
    //    cylinders (dataset A) and ~12.9 K dendrite cylinders (dataset B).
    let spec = NeuroscienceSpec::scaled(0.01);
    let tissue = spec.generate(42);
    println!(
        "tissue model: {} axon cylinders, {} dendrite cylinders in a {:.0}-unit cube",
        tissue.axons.len(),
        tissue.dendrites.len(),
        spec.volume_side
    );

    let epsilon = 5.0;

    // 2. Filtering phase: TOUCH finds all pairs of cylinders whose eps-extended MBRs
    //    intersect. This is exactly what the paper evaluates.
    let mut sink = ResultSink::collecting();
    let report =
        distance_join(&TouchJoin::default(), &tissue.axons, &tissue.dendrites, epsilon, &mut sink);
    println!(
        "filtering: {} candidate pairs, {} comparisons, {} dendrites filtered ({:.1}% of B)",
        report.result_pairs(),
        report.counters.comparisons,
        report.counters.filtered,
        100.0 * report.counters.filtered as f64 / tissue.dendrites.len() as f64,
    );

    // 3. Refinement phase: check the exact cylinder-to-cylinder distance of every
    //    candidate pair and keep the real touches. The paper leaves refinement to the
    //    application; the library ships the exact geometry predicate.
    let mut synapses: Vec<(u32, u32)> = Vec::new();
    for &(axon_id, dendrite_id) in sink.pairs() {
        let axon: &Cylinder = &tissue.axon_cylinders[axon_id as usize];
        let dendrite: &Cylinder = &tissue.dendrite_cylinders[dendrite_id as usize];
        if axon.touches(dendrite, epsilon) {
            synapses.push((axon_id, dendrite_id));
        }
    }
    println!(
        "refinement: {} synapse locations confirmed out of {} candidates ({:.1}% precision)",
        synapses.len(),
        sink.pairs().len(),
        100.0 * synapses.len() as f64 / sink.pairs().len().max(1) as f64,
    );

    // The MBR filter is conservative: every true touch must appear among the
    // candidates, so refinement can only shrink the set.
    assert!(synapses.len() <= sink.pairs().len());
    for (axon_id, dendrite_id) in synapses.iter().take(5) {
        let a = &tissue.axon_cylinders[*axon_id as usize];
        let d = &tissue.dendrite_cylinders[*dendrite_id as usize];
        println!(
            "  synapse: axon #{axon_id} <-> dendrite #{dendrite_id} (gap {:.2} um)",
            a.distance_to(d)
        );
    }
}

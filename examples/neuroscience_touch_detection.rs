//! Touch detection — the paper's motivating neuroscience application.
//!
//! Synapses are placed wherever an axon branch comes within a threshold distance of a
//! dendrite branch. This example generates a synthetic neural tissue model (branching
//! cylinder morphologies), runs the TOUCH *filtering* phase on the cylinder MBRs and
//! then the *refinement* phase on the exact cylinder geometry, and reports how many
//! synapse locations were found.
//!
//! ```text
//! cargo run -p touch --release --example neuroscience_touch_detection
//! ```

use touch::{CallbackSink, Cylinder, JoinQuery, NeuroscienceSpec};

fn main() {
    // 1. Build a synthetic tissue model at 1 % of the paper's scale: ~6.4 K axon
    //    cylinders (dataset A) and ~12.9 K dendrite cylinders (dataset B).
    let spec = NeuroscienceSpec::scaled(0.01);
    let tissue = spec.generate(42);
    println!(
        "tissue model: {} axon cylinders, {} dendrite cylinders in a {:.0}-unit cube",
        tissue.axons.len(),
        tissue.dendrites.len(),
        spec.volume_side
    );

    let epsilon = 5.0;

    // 2 + 3. Filtering and refinement in one pass: TOUCH finds all pairs of
    //    cylinders whose eps-extended MBRs intersect (exactly what the paper
    //    evaluates), and a `CallbackSink` refines each candidate against the exact
    //    cylinder geometry as it streams out of the join — no candidate list is
    //    ever materialised. The paper leaves refinement to the application; the
    //    library ships the exact geometry predicate.
    let mut synapses: Vec<(u32, u32)> = Vec::new();
    let mut sink = CallbackSink::new(|axon_id, dendrite_id| {
        let axon: &Cylinder = &tissue.axon_cylinders[axon_id as usize];
        let dendrite: &Cylinder = &tissue.dendrite_cylinders[dendrite_id as usize];
        if axon.touches(dendrite, epsilon) {
            synapses.push((axon_id, dendrite_id));
        }
    });
    let report =
        JoinQuery::new(&tissue.axons, &tissue.dendrites).within_distance(epsilon).run(&mut sink);
    let candidates = sink.count();
    println!(
        "filtering: {} candidate pairs, {} comparisons, {} dendrites filtered ({:.1}% of B)",
        report.result_pairs(),
        report.counters.comparisons,
        report.counters.filtered,
        100.0 * report.counters.filtered as f64 / tissue.dendrites.len() as f64,
    );
    println!(
        "refinement: {} synapse locations confirmed out of {} candidates ({:.1}% precision)",
        synapses.len(),
        candidates,
        100.0 * synapses.len() as f64 / (candidates as f64).max(1.0),
    );

    // The MBR filter is conservative: every true touch must appear among the
    // candidates, so refinement can only shrink the set.
    assert!(synapses.len() as u64 <= candidates);
    for (axon_id, dendrite_id) in synapses.iter().take(5) {
        let a = &tissue.axon_cylinders[*axon_id as usize];
        let d = &tissue.dendrite_cylinders[*dendrite_id as usize];
        println!(
            "  synapse: axon #{axon_id} <-> dendrite #{dendrite_id} (gap {:.2} um)",
            a.distance_to(d)
        );
    }
}

//! Quickstart: run a distance join between two synthetic datasets with TOUCH and
//! inspect the report.
//!
//! ```text
//! cargo run -p touch --release --example quickstart
//! ```

use touch::{
    CollectingSink, Dataset, JoinQuery, Predicate, SpatialJoinAlgorithm, SyntheticDistribution,
    SyntheticSpec, TouchJoin,
};

fn main() {
    // 1. Generate two datasets of 3-D boxes: 20 000 uniformly distributed objects
    //    (dataset A) and 60 000 Gaussian-distributed objects (dataset B), both inside
    //    the paper's 1000-unit space with unit-sized objects.
    let a: Dataset = SyntheticSpec::new(20_000, SyntheticDistribution::Uniform).generate(1);
    let b: Dataset =
        SyntheticSpec::new(60_000, SyntheticDistribution::paper_gaussian()).generate(2);
    println!("dataset A: {} objects, dataset B: {} objects", a.len(), b.len());

    // 2. Run the TOUCH distance join with the paper's default configuration
    //    (1024 partitions, fanout 2, grid local join) and a distance threshold of 10.
    let touch = TouchJoin::default();
    let mut sink = CollectingSink::new();
    let report = JoinQuery::new(&a, &b)
        .predicate(Predicate::WithinDistance(10.0))
        .engine(&touch)
        .run(&mut sink);

    // 3. Inspect the result and the measurements the paper reports.
    println!("algorithm:        {}", report.algorithm);
    println!("result pairs:     {}", report.result_pairs());
    println!("selectivity:      {:.3e}", report.selectivity());
    println!("comparisons:      {}", report.counters.comparisons);
    println!("filtered objects: {}", report.counters.filtered);
    println!("memory footprint: {:.1} MB", report.memory_bytes as f64 / 1e6);
    println!("execution time:   {:.1} ms", report.total_time().as_secs_f64() * 1e3);

    // 4. The first few pairs (ids into dataset A and dataset B respectively).
    for (ia, ib) in sink.pairs().iter().take(5) {
        println!("  pair: A#{ia} <-> B#{ib}");
    }

    // Sanity: TOUCH never does more work than the nested loop would.
    assert!(report.counters.comparisons < (a.len() * b.len()) as u64);
    // Verify that name() matches what the experiment tables print.
    assert_eq!(touch.name(), "TOUCH");

    // 5. Zero configuration: name no engine at all and the query plans itself —
    //    dataset statistics are collected, every knob is derived, and the
    //    executed plan (strategy + knobs) is recorded on the report.
    let mut auto_sink = CollectingSink::new();
    let auto_report =
        JoinQuery::new(&a, &b).predicate(Predicate::WithinDistance(10.0)).run(&mut auto_sink);
    let plan = auto_report.plan.as_ref().expect("auto runs record their plan");
    println!(
        "auto-planned:     {} ({} partitions, fanout {}, min cell {:.2}; stats in {:.2} ms)",
        plan.strategy,
        plan.partitions,
        plan.fanout,
        plan.min_cell_size,
        plan.stats_time.as_secs_f64() * 1e3,
    );
    assert_eq!(auto_sink.sorted_pairs(), sink.sorted_pairs(), "planning never changes the answer");
}

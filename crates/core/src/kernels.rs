//! Pairwise join kernels shared by the local joins of TOUCH and of the baselines.
//!
//! Every partition-based algorithm (TOUCH, PBSM, S3, the R-tree traversal) eventually
//! joins two small sets of objects against each other. The paper's baselines use a
//! plane-sweep for this *local join*; TOUCH additionally offers a grid-based local
//! join (implemented next to the tree in [`crate::TouchTree`]) and the trivial
//! all-pairs scan. The two list kernels live here so that `touch-baselines` can reuse
//! them without duplicating the counting conventions.

//!
//! Both kernels follow the workspace's early-termination convention: `emit`
//! returns `true` to continue and `false` to stop the scan immediately (the way a
//! [`crate::PairSink`] that reports [`crate::PairSink::is_done`] — e.g.
//! [`crate::FirstKSink`] — cuts a join short). Emitters that never stop simply
//! return `true` unconditionally.
//!
//! Both kernels run their candidate tests through the batched SIMD MBR filter
//! ([`crate::simd::overlap_window`]): candidates are tested [`simd::LANES`] at a
//! time, and only lanes the (exact) bitmask keeps reach the scalar
//! confirmation. Comparisons are still **counted one candidate at a time, in
//! candidate order, before the test** — precisely the scalar convention — so
//! pairs, emission order and counters are bit-identical to the scalar
//! reference on every backend, including under early termination mid-batch.

use crate::simd::{self, Backend};
use touch_geom::{ObjectId, SpatialObject};
use touch_metrics::Counters;

/// One probe object tested against a window of candidates through the batched
/// filter. Returns `true` if `emit` stopped the scan. Emits `(probe, other)`
/// unless `flip` is set (the sweep's B-opens-first branch emits `(other, probe)`).
#[inline]
fn probe_window(
    probe: &SpatialObject,
    window: &[SpatialObject],
    flip: bool,
    backend: Backend,
    counters: &mut Counters,
    emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
) -> bool {
    let mut at = 0;
    while at < window.len() {
        let chunk = &window[at..(at + simd::LANES).min(window.len())];
        // Pull the next chunk towards L1 while this one is tested.
        simd::prefetch_read(window, at + simd::LANES);
        let mask = simd::overlap_window(backend, &probe.mbr, chunk);
        counters.record_batch(chunk.len() as u64, u64::from(mask.count_ones()));
        for (lane, other) in chunk.iter().enumerate() {
            counters.record_comparison();
            if mask >> lane & 1 == 1 && probe.mbr.intersects(&other.mbr) {
                let go = if flip { emit(other.id, probe.id) } else { emit(probe.id, other.id) };
                if !go {
                    return true;
                }
            }
        }
        at += simd::LANES;
    }
    false
}

/// Compares every object of `a` against every object of `b` and emits the
/// intersecting pairs. `O(|a|·|b|)` comparisons, fewer if `emit` stops the scan.
pub fn all_pairs(
    a: &[SpatialObject],
    b: &[SpatialObject],
    counters: &mut Counters,
    emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
) {
    let backend = simd::backend();
    for oa in a {
        if probe_window(oa, b, false, backend, counters, emit) {
            return;
        }
    }
}

/// Plane-sweep join of two object lists (Preparata & Shamos).
///
/// Both lists are sorted by the lower x-coordinate of their MBRs, then scanned in
/// lock-step: each object is compared against the objects of the other list whose
/// x-interval overlaps its own (the classic *forward sweep*). Objects that are close
/// in x but far apart in y/z are still compared — exactly the redundant comparisons
/// the paper attributes to the plane-sweep approach — but objects separated in x are
/// never compared.
///
/// The slices are sorted in place; callers that need to preserve their order should
/// pass clones (the partition-based algorithms own their per-partition scratch lists,
/// so in-place sorting is what the paper's implementations do as well).
pub fn plane_sweep(
    a: &mut [SpatialObject],
    b: &mut [SpatialObject],
    counters: &mut Counters,
    emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    sort_by_xmin(a);
    sort_by_xmin(b);
    // SoA copy of the sort keys: the sweep advances and bounds its windows on
    // these two flat f64 arrays instead of re-reading a full 56-byte object per
    // probe — the window end is found before any candidate is touched, and the
    // window itself then goes through the batched filter.
    let a_xmin: Vec<f64> = a.iter().map(|o| o.mbr.min.x).collect();
    let b_xmin: Vec<f64> = b.iter().map(|o| o.mbr.min.x).collect();
    let backend = simd::backend();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        if a_xmin[i] <= b_xmin[j] {
            // a[i] opens first: its window is the b-run still overlapping it in x.
            let upper = a[i].mbr.max.x;
            let mut end = j;
            while end < b.len() && b_xmin[end] <= upper {
                end += 1;
            }
            if probe_window(&a[i], &b[j..end], false, backend, counters, emit) {
                return;
            }
            i += 1;
        } else {
            let upper = b[j].mbr.max.x;
            let mut end = i;
            while end < a.len() && a_xmin[end] <= upper {
                end += 1;
            }
            if probe_window(&b[j], &a[i..end], true, backend, counters, emit) {
                return;
            }
            j += 1;
        }
    }
}

fn sort_by_xmin(objs: &mut [SpatialObject]) {
    // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: the latter is not a
    // total order when NaN coordinates slip in (NaN would compare "equal" to
    // everything), and `sort_unstable_by` may produce an arbitrary permutation —
    // or worse — under an inconsistent comparator. IEEE total ordering keeps the
    // sweep deterministic for every input.
    objs.sort_unstable_by(|p, q| p.mbr.min.x.total_cmp(&q.mbr.min.x));
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Dataset, Point3};

    fn dataset(seeds: &[(f64, f64, f64, f64)]) -> Dataset {
        // (x, y, z, side)
        Dataset::from_mbrs(seeds.iter().map(|&(x, y, z, s)| {
            let min = Point3::new(x, y, z);
            Aabb::new(min, min + Point3::splat(s))
        }))
    }

    fn brute(a: &Dataset, b: &Dataset) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    out.push((oa.id, ob.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn pseudo_random_dataset(n: usize, seed: u64) -> Dataset {
        // Small deterministic LCG so the kernel tests need no external crates.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * 50.0, next() * 50.0, next() * 50.0);
            Aabb::new(min, min + Point3::splat(0.5 + next() * 3.0))
        }))
    }

    #[test]
    fn all_pairs_matches_brute_force_and_counts_everything() {
        let a = pseudo_random_dataset(40, 1);
        let b = pseudo_random_dataset(60, 2);
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        all_pairs(a.objects(), b.objects(), &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        pairs.sort_unstable();
        assert_eq!(pairs, brute(&a, &b));
        assert_eq!(counters.comparisons, 40 * 60);
    }

    #[test]
    fn plane_sweep_matches_brute_force() {
        let a = pseudo_random_dataset(80, 3);
        let b = pseudo_random_dataset(120, 4);
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        let mut sa = a.objects().to_vec();
        let mut sb = b.objects().to_vec();
        plane_sweep(&mut sa, &mut sb, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        pairs.sort_unstable();
        assert_eq!(pairs, brute(&a, &b));
        // The sweep never does more work than the nested loop.
        assert!(counters.comparisons <= 80 * 120);
    }

    #[test]
    fn plane_sweep_prunes_x_separated_objects() {
        // Two groups far apart along x: the sweep must not compare across groups.
        let a = dataset(&[(0.0, 0.0, 0.0, 1.0), (1.0, 0.0, 0.0, 1.0), (100.0, 0.0, 0.0, 1.0)]);
        let b = dataset(&[(0.5, 0.0, 0.0, 1.0), (101.0, 0.0, 0.0, 1.0)]);
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        let mut sa = a.objects().to_vec();
        let mut sb = b.objects().to_vec();
        plane_sweep(&mut sa, &mut sb, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        pairs.sort_unstable();
        assert_eq!(pairs, brute(&a, &b));
        assert!(
            counters.comparisons < 6,
            "sweep should skip cross-group tests, did {} comparisons",
            counters.comparisons
        );
    }

    #[test]
    fn plane_sweep_still_compares_y_separated_objects() {
        // Same x-interval, far apart in y: the paper's criticism of the plane-sweep —
        // the comparison happens (and is counted) even though it cannot match.
        let a = dataset(&[(0.0, 0.0, 0.0, 1.0)]);
        let b = dataset(&[(0.0, 50.0, 0.0, 1.0)]);
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        let mut sa = a.objects().to_vec();
        let mut sb = b.objects().to_vec();
        plane_sweep(&mut sa, &mut sb, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        assert!(pairs.is_empty());
        assert_eq!(counters.comparisons, 1);
    }

    #[test]
    fn empty_inputs() {
        let a = pseudo_random_dataset(5, 9);
        let empty = Dataset::new();
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        all_pairs(a.objects(), empty.objects(), &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        let mut sa = a.objects().to_vec();
        let mut se = empty.objects().to_vec();
        plane_sweep(&mut sa, &mut se, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        plane_sweep(&mut se, &mut sa, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        assert!(pairs.is_empty());
        assert_eq!(counters.comparisons, 0);
    }

    #[test]
    fn duplicate_coordinates_are_handled() {
        // Many identical boxes: every pair intersects, reported exactly once per pair.
        let a = dataset(&[(0.0, 0.0, 0.0, 1.0); 5]);
        let b = dataset(&[(0.0, 0.0, 0.0, 1.0); 7]);
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        let mut sa = a.objects().to_vec();
        let mut sb = b.objects().to_vec();
        plane_sweep(&mut sa, &mut sb, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        assert_eq!(pairs.len(), 35);
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 35, "no duplicates");
    }

    #[test]
    fn all_pairs_stops_when_emit_says_so() {
        // 5 × 7 identical boxes: every comparison matches. Stopping after the 3rd
        // emitted pair must leave the scan at 3 comparisons, not 35.
        let a = dataset(&[(0.0, 0.0, 0.0, 1.0); 5]);
        let b = dataset(&[(0.0, 0.0, 0.0, 1.0); 7]);
        let mut counters = Counters::new();
        let mut emitted = 0;
        all_pairs(a.objects(), b.objects(), &mut counters, &mut |_, _| {
            emitted += 1;
            emitted < 3
        });
        assert_eq!(emitted, 3);
        assert_eq!(counters.comparisons, 3, "the scan must stop with the emitter");
    }

    #[test]
    fn sort_by_xmin_is_total_even_with_nan_coordinates() {
        // A NaN x-min must not poison the comparator: `total_cmp` orders NaN after
        // every finite value, so the sweep stays deterministic and the finite
        // objects still join correctly against each other.
        let a = dataset(&[(5.0, 0.0, 0.0, 1.0), (0.0, 0.0, 0.0, 1.0), (2.0, 0.0, 0.0, 1.0)]);
        let b = dataset(&[(0.5, 0.0, 0.0, 1.0), (4.8, 0.0, 0.0, 1.0)]);
        let mut sa = a.objects().to_vec();
        sa[1].mbr.min.x = f64::NAN;
        let mut expected = Vec::new();
        for oa in &sa {
            for ob in b.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    expected.push((oa.id, ob.id));
                }
            }
        }
        expected.sort_unstable();
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        let mut sb = b.objects().to_vec();
        plane_sweep(&mut sa, &mut sb, &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        // NaN sorts last (IEEE total order), so the finite objects are swept in
        // ascending x and their intersections are all found.
        assert!(sa.last().unwrap().mbr.min.x.is_nan());
        pairs.sort_unstable();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn plane_sweep_stops_when_emit_says_so() {
        let a = dataset(&[(0.0, 0.0, 0.0, 1.0); 5]);
        let b = dataset(&[(0.0, 0.0, 0.0, 1.0); 7]);
        let mut counters = Counters::new();
        let mut sa = a.objects().to_vec();
        let mut sb = b.objects().to_vec();
        let mut emitted = 0;
        plane_sweep(&mut sa, &mut sb, &mut counters, &mut |_, _| {
            emitted += 1;
            emitted < 3
        });
        assert_eq!(emitted, 3);
        assert!(counters.comparisons < 35, "the sweep must stop with the emitter");
    }
}

//! Dataset statistics for the join planner: one cheap pass, exact merging.
//!
//! [`DatasetStats`] is the planner's entire view of a dataset: object count,
//! global MBR, per-axis extent sums (→ means) and per-axis **extent histograms**
//! over data-independent log₂ buckets (→ percentiles). Everything is collected in
//! a single linear pass ([`DatasetStats::from_objects`]), a handful of flops per
//! object — on the engines' hot path this is noise next to the STR sort that
//! follows it, and the measured collection time is recorded on the
//! [`RunReport`](touch_metrics::RunReport) (`PlanSummary::stats_time`) so the
//! overhead is never hidden.
//!
//! ## Mergeability
//!
//! Streaming workloads see dataset B one epoch at a time, so the statistics must
//! *accumulate*: [`DatasetStats::merge`] combines per-epoch stats into stream
//! stats. Every field merges exactly — counts and histogram buckets add, MBRs
//! union — except the floating-point extent sums, which are subject to the usual
//! non-associativity of `f64` addition (relative error ~1e-15 per merge; the
//! property suite in `tests/planner_equivalence.rs` pins merged == one-shot to
//! that tolerance). Bucket boundaries are **data-independent** (fixed log₂
//! scale), which is what makes histogram merging exact: the same object lands in
//! the same bucket no matter which epoch delivered it.

use serde::{Deserialize, Serialize};
use touch_geom::{Aabb, Dataset, SpatialObject};

/// Number of log₂ extent buckets per axis.
///
/// Bucket `i` covers side lengths in `[2^(i-HIST_ZERO_BUCKET), 2^(i+1-HIST_ZERO_BUCKET))`,
/// so the 48 buckets span `2⁻²⁴ … 2²⁴` — twelve orders of magnitude around 1.0,
/// clamped at both ends (degenerate/zero extents land in bucket 0).
pub const EXTENT_BUCKETS: usize = 48;

/// The bucket holding side lengths in `[1, 2)`.
const HIST_ZERO_BUCKET: i32 = 24;

/// Single-pass, exactly-mergeable summary statistics of one dataset (or one
/// epoch of a stream) — the planner's input.
///
/// ```
/// use touch_core::DatasetStats;
/// use touch_geom::{Aabb, Dataset, Point3};
///
/// let ds = Dataset::from_mbrs((0..100).map(|i| {
///     let min = Point3::new(i as f64, 0.0, 0.0);
///     Aabb::new(min, min + Point3::new(2.0, 1.0, 1.0))
/// }));
/// let stats = DatasetStats::from_dataset(&ds);
/// assert_eq!(stats.count(), 100);
/// assert!((stats.mean_side(0) - 2.0).abs() < 1e-12);
/// // Every object has x-extent 2 → the 90th-percentile bucket covers 2.0.
/// assert!(stats.extent_percentile(0, 0.9) >= 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    count: u64,
    mbr: Option<Aabb>,
    sum_side: [f64; 3],
    sum_volume: f64,
    hist: [[u64; EXTENT_BUCKETS]; 3],
}

impl Default for DatasetStats {
    fn default() -> Self {
        DatasetStats {
            count: 0,
            mbr: None,
            sum_side: [0.0; 3],
            sum_volume: 0.0,
            hist: [[0; EXTENT_BUCKETS]; 3],
        }
    }
}

/// The data-independent log₂ bucket of a side length. Degenerate extents —
/// zero, negative or NaN — land in bucket 0.
///
/// `⌊log₂ side⌋` is read straight from the IEEE-754 exponent field instead of
/// calling `log2()`: the histogram update runs once per object per axis on the
/// planning path, and the bit twiddle keeps the whole stats pass at a handful
/// of integer ops per object. Subnormals (exponent field 0, values ≤ 2⁻¹⁰²²)
/// clamp to bucket 0, far below the smallest real bucket edge (2⁻²⁴).
#[inline]
fn bucket_of(side: f64) -> usize {
    if side.is_nan() || side <= 0.0 {
        return 0;
    }
    let exponent = ((side.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (exponent + HIST_ZERO_BUCKET).clamp(0, EXTENT_BUCKETS as i32 - 1) as usize
}

/// Upper edge of bucket `i` — the value percentile queries report.
#[inline]
fn bucket_upper(i: usize) -> f64 {
    f64::powi(2.0, i as i32 + 1 - HIST_ZERO_BUCKET)
}

impl DatasetStats {
    /// Empty statistics (the identity of [`DatasetStats::merge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects statistics over `objects` in one linear pass.
    pub fn from_objects(objects: &[SpatialObject]) -> Self {
        let mut s = Self::new();
        for o in objects {
            s.record(&o.mbr);
        }
        s
    }

    /// Collects statistics over a [`Dataset`] in one linear pass.
    pub fn from_dataset(ds: &Dataset) -> Self {
        Self::from_objects(ds.objects())
    }

    /// Folds one object MBR into the statistics.
    #[inline]
    pub fn record(&mut self, mbr: &Aabb) {
        self.count += 1;
        match &mut self.mbr {
            Some(m) => m.expand_to_include(mbr),
            None => self.mbr = Some(*mbr),
        }
        let mut volume = 1.0;
        for axis in 0..3 {
            let side = mbr.side(axis);
            self.sum_side[axis] += side;
            volume *= side;
            self.hist[axis][bucket_of(side)] += 1;
        }
        self.sum_volume += volume;
    }

    /// Accumulates another statistics record into this one (epoch → stream).
    ///
    /// Counts, histograms and MBRs combine exactly; the floating-point sums are
    /// exact up to `f64` addition order (see the module docs).
    pub fn merge(&mut self, other: &DatasetStats) {
        self.count += other.count;
        match (&mut self.mbr, &other.mbr) {
            (Some(m), Some(o)) => m.expand_to_include(o),
            (None, Some(o)) => self.mbr = Some(*o),
            _ => {}
        }
        for axis in 0..3 {
            self.sum_side[axis] += other.sum_side[axis];
            for b in 0..EXTENT_BUCKETS {
                self.hist[axis][b] += other.hist[axis][b];
            }
        }
        self.sum_volume += other.sum_volume;
    }

    /// Number of objects summarised.
    #[inline]
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// `true` if no objects have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The union of all recorded MBRs, or `None` for empty statistics.
    #[inline]
    pub fn mbr(&self) -> Option<Aabb> {
        self.mbr
    }

    /// Mean object extent along `axis` (0 for empty statistics).
    pub fn mean_side(&self, axis: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_side[axis] / self.count as f64
    }

    /// Mean object extent averaged over all three axes — the figure the grid
    /// cell-size rule of Section 5.2.2 is based on. Matches
    /// [`Dataset::average_side`] averaged over the axes.
    pub fn mean_side_all_axes(&self) -> f64 {
        (0..3).map(|ax| self.mean_side(ax)).sum::<f64>() / 3.0
    }

    /// Mean object MBR volume (0 for empty statistics).
    pub fn mean_volume(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_volume / self.count as f64
    }

    /// Approximate `q`-quantile (`0 < q <= 1`) of the object extent along `axis`,
    /// reported as the upper edge of the histogram bucket where the cumulative
    /// count crosses `q` — i.e. at least a fraction `q` of the objects have an
    /// extent `<=` the returned value. Resolution is one log₂ bucket (a factor of
    /// 2). Returns 0 for empty statistics.
    pub fn extent_percentile(&self, axis: usize, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.hist[axis].iter().enumerate() {
            cumulative += n;
            if cumulative >= threshold {
                return bucket_upper(i);
            }
        }
        bucket_upper(EXTENT_BUCKETS - 1)
    }

    /// Object density: count divided by the volume of the global MBR. Returns 0
    /// for empty statistics or a degenerate (zero-volume) extent.
    pub fn density(&self) -> f64 {
        match self.mbr {
            Some(m) if m.volume() > 0.0 => self.count as f64 / m.volume(),
            _ => 0.0,
        }
    }

    /// The per-axis extent histogram (log₂ buckets, see [`EXTENT_BUCKETS`]).
    pub fn extent_histogram(&self, axis: usize) -> &[u64; EXTENT_BUCKETS] {
        &self.hist[axis]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::Point3;

    fn row(n: usize, side: f64) -> Dataset {
        Dataset::from_mbrs((0..n).map(|i| {
            let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
            Aabb::new(min, min + Point3::splat(side))
        }))
    }

    #[test]
    fn one_pass_collection_matches_dataset_helpers() {
        let ds = row(50, 1.5);
        let stats = DatasetStats::from_dataset(&ds);
        assert_eq!(stats.count(), 50);
        assert!(!stats.is_empty());
        assert_eq!(stats.mbr(), ds.extent());
        for axis in 0..3 {
            assert!((stats.mean_side(axis) - ds.average_side(axis)).abs() < 1e-12);
        }
        assert!((stats.mean_volume() - ds.average_volume()).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_inert() {
        let stats = DatasetStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.mbr(), None);
        assert_eq!(stats.mean_side(0), 0.0);
        assert_eq!(stats.mean_side_all_axes(), 0.0);
        assert_eq!(stats.extent_percentile(0, 0.5), 0.0);
        assert_eq!(stats.density(), 0.0);

        // Merging empty into non-empty (and vice versa) is the identity.
        let full = DatasetStats::from_dataset(&row(10, 1.0));
        let mut merged = full.clone();
        merged.merge(&DatasetStats::new());
        assert_eq!(merged, full);
        let mut from_empty = DatasetStats::new();
        from_empty.merge(&full);
        assert_eq!(from_empty, full);
    }

    #[test]
    fn merge_equals_one_shot() {
        let ds = row(97, 1.25);
        let one_shot = DatasetStats::from_dataset(&ds);
        for chunks in [1, 2, 5, 13] {
            let chunk = ds.len().div_ceil(chunks);
            let mut merged = DatasetStats::new();
            for batch in ds.objects().chunks(chunk) {
                merged.merge(&DatasetStats::from_objects(batch));
            }
            assert_eq!(merged.count(), one_shot.count());
            assert_eq!(merged.mbr(), one_shot.mbr());
            for axis in 0..3 {
                assert_eq!(merged.extent_histogram(axis), one_shot.extent_histogram(axis));
                assert!((merged.mean_side(axis) - one_shot.mean_side(axis)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn percentiles_bracket_the_extents() {
        // 90 objects of side 1, 10 of side 8: p50 covers the small ones, p99 the big.
        let mut ds = row(90, 1.0);
        for i in 0..10 {
            let min = Point3::new(500.0 + i as f64 * 20.0, 0.0, 0.0);
            ds.push_mbr(Aabb::new(min, min + Point3::splat(8.0)));
        }
        let stats = DatasetStats::from_dataset(&ds);
        let p50 = stats.extent_percentile(0, 0.5);
        let p99 = stats.extent_percentile(0, 0.99);
        assert!((1.0..8.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 8.0, "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn buckets_are_data_independent_and_clamped() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(1.0), HIST_ZERO_BUCKET as usize);
        assert_eq!(bucket_of(1.5), HIST_ZERO_BUCKET as usize);
        assert_eq!(bucket_of(2.0), HIST_ZERO_BUCKET as usize + 1);
        assert_eq!(bucket_of(0.5), HIST_ZERO_BUCKET as usize - 1);
        assert_eq!(bucket_of(1e300), EXTENT_BUCKETS - 1);
        assert_eq!(bucket_of(1e-300), 0);
        assert_eq!(bucket_of(f64::INFINITY), EXTENT_BUCKETS - 1);
        assert!(bucket_upper(HIST_ZERO_BUCKET as usize) == 2.0);
    }

    #[test]
    fn exponent_extraction_matches_log2() {
        // The IEEE-exponent fast path must agree with the textbook formula on
        // every magnitude the buckets span (and beyond both clamps).
        let mut side = 1e-9f64;
        while side < 1e9 {
            for v in [side, side * 1.0001, side * 1.9999] {
                let reference = ((v.log2().floor() as i32) + HIST_ZERO_BUCKET)
                    .clamp(0, EXTENT_BUCKETS as i32 - 1) as usize;
                assert_eq!(bucket_of(v), reference, "side = {v}");
            }
            side *= 2.0;
        }
    }

    #[test]
    fn density_uses_the_global_extent() {
        let ds = Dataset::from_mbrs([
            Aabb::new(Point3::ORIGIN, Point3::splat(1.0)),
            Aabb::new(Point3::splat(9.0), Point3::splat(10.0)),
        ]);
        let stats = DatasetStats::from_dataset(&ds);
        assert!((stats.density() - 2.0 / 1000.0).abs() < 1e-12);
        // Degenerate extent (single point-ish axis) → density reported as 0.
        let flat = Dataset::from_mbrs([Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 0.0))]);
        assert_eq!(DatasetStats::from_dataset(&flat).density(), 0.0);
    }
}

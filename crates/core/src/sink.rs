//! Result collection.

use touch_geom::ObjectId;

/// Collects the result pairs of a join.
///
/// At the paper's dataset sizes the result set can reach billions of pairs, so the
/// experiment harness runs joins in *counting* mode ([`ResultSink::counting`]) where
/// pairs are tallied but not materialised. Library users who need the pairs use
/// [`ResultSink::collecting`].
///
/// Pairs are always reported as `(id_in_A, id_in_B)` regardless of the join order an
/// algorithm chose internally.
#[derive(Debug, Clone)]
pub struct ResultSink {
    collect: bool,
    count: u64,
    pairs: Vec<(ObjectId, ObjectId)>,
}

impl ResultSink {
    /// A sink that only counts result pairs.
    pub fn counting() -> Self {
        ResultSink { collect: false, count: 0, pairs: Vec::new() }
    }

    /// A sink that counts and materialises result pairs.
    pub fn collecting() -> Self {
        ResultSink { collect: true, count: 0, pairs: Vec::new() }
    }

    /// Reports one result pair `(a, b)`.
    #[inline]
    pub fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.count += 1;
        if self.collect {
            self.pairs.push((a, b));
        }
    }

    /// Number of pairs reported so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if this sink materialises pairs.
    #[inline]
    pub fn is_collecting(&self) -> bool {
        self.collect
    }

    /// The materialised pairs (empty in counting mode).
    #[inline]
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// Consumes the sink and returns the materialised pairs.
    pub fn into_pairs(self) -> Vec<(ObjectId, ObjectId)> {
        self.pairs
    }

    /// Returns the pairs sorted lexicographically — convenient for comparing the
    /// output of different algorithms in tests.
    pub fn sorted_pairs(&self) -> Vec<(ObjectId, ObjectId)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// Resets the sink to its empty state, keeping the collection mode.
    pub fn clear(&mut self) {
        self.count = 0;
        self.pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_mode_does_not_materialise() {
        let mut s = ResultSink::counting();
        assert!(!s.is_collecting());
        s.push(1, 2);
        s.push(3, 4);
        assert_eq!(s.count(), 2);
        assert!(s.pairs().is_empty());
    }

    #[test]
    fn collecting_mode_materialises_in_order() {
        let mut s = ResultSink::collecting();
        assert!(s.is_collecting());
        s.push(3, 4);
        s.push(1, 2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.pairs(), &[(3, 4), (1, 2)]);
        assert_eq!(s.sorted_pairs(), vec![(1, 2), (3, 4)]);
        assert_eq!(s.into_pairs(), vec![(3, 4), (1, 2)]);
    }

    #[test]
    fn clear_resets_but_keeps_mode() {
        let mut s = ResultSink::collecting();
        s.push(1, 1);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(s.pairs().is_empty());
        assert!(s.is_collecting());
    }
}

//! Result collection.

use touch_geom::ObjectId;

/// Collects the result pairs of a join.
///
/// At the paper's dataset sizes the result set can reach billions of pairs, so the
/// experiment harness runs joins in *counting* mode ([`ResultSink::counting`]) where
/// pairs are tallied but not materialised. Library users who need the pairs use
/// [`ResultSink::collecting`].
///
/// Pairs are always reported as `(id_in_A, id_in_B)` regardless of the join order an
/// algorithm chose internally.
#[derive(Debug, Clone)]
pub struct ResultSink {
    collect: bool,
    count: u64,
    pairs: Vec<(ObjectId, ObjectId)>,
}

impl ResultSink {
    /// A sink that only counts result pairs.
    pub fn counting() -> Self {
        ResultSink { collect: false, count: 0, pairs: Vec::new() }
    }

    /// A sink that counts and materialises result pairs.
    pub fn collecting() -> Self {
        ResultSink { collect: true, count: 0, pairs: Vec::new() }
    }

    /// Reports one result pair `(a, b)`.
    #[inline]
    pub fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.count += 1;
        if self.collect {
            self.pairs.push((a, b));
        }
    }

    /// Number of pairs reported so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if this sink materialises pairs.
    #[inline]
    pub fn is_collecting(&self) -> bool {
        self.collect
    }

    /// The materialised pairs (empty in counting mode).
    #[inline]
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// Consumes the sink and returns the materialised pairs.
    pub fn into_pairs(self) -> Vec<(ObjectId, ObjectId)> {
        self.pairs
    }

    /// Returns the pairs sorted lexicographically — convenient for comparing the
    /// output of different algorithms in tests.
    pub fn sorted_pairs(&self) -> Vec<(ObjectId, ObjectId)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// Resets the sink to its empty state, keeping the collection mode.
    pub fn clear(&mut self) {
        self.count = 0;
        self.pairs.clear();
    }
}

/// One shard of a [`ShardedSink`]: a private result collector owned by a single
/// worker thread.
///
/// A shard is deliberately *not* shared: each worker pushes into its own shard
/// without synchronisation, and the shards are merged into one [`ResultSink`] when
/// the parallel section is over. `SinkShard` mirrors the [`ResultSink`] modes —
/// counting or collecting — so merging preserves the caller's choice.
#[derive(Debug, Clone)]
pub struct SinkShard {
    collect: bool,
    count: u64,
    pairs: Vec<(ObjectId, ObjectId)>,
}

impl SinkShard {
    /// Reports one result pair `(a, b)`.
    #[inline]
    pub fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.count += 1;
        if self.collect {
            self.pairs.push((a, b));
        }
    }

    /// Number of pairs reported into this shard so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The pairs materialised in this shard (empty in counting mode).
    #[inline]
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }
}

/// A thread-safe result collector for parallel joins: one [`SinkShard`] per worker.
///
/// [`ResultSink`] is single-threaded by design (`push` takes `&mut self`).
/// `ShardedSink` is the concurrent counterpart used by `touch-parallel`: it is split
/// into independent shards handed to worker threads (via [`ShardedSink::shards_mut`]
/// and `split_at_mut`-style slice borrows, e.g. `iter_mut` inside
/// [`std::thread::scope`]), then drained back into a regular sink with
/// [`ShardedSink::merge_into`]. No locks are involved — disjoint `&mut` borrows are
/// all the synchronisation needed.
#[derive(Debug, Clone)]
pub struct ShardedSink {
    shards: Vec<SinkShard>,
}

impl ShardedSink {
    /// A sharded sink whose shards only count result pairs.
    pub fn counting(shards: usize) -> Self {
        Self::with_mode(false, shards)
    }

    /// A sharded sink whose shards count and materialise result pairs.
    pub fn collecting(shards: usize) -> Self {
        Self::with_mode(true, shards)
    }

    /// A sharded sink matching the collection mode of `sink`, so that
    /// [`ShardedSink::merge_into`] loses nothing the caller asked for.
    pub fn for_sink(sink: &ResultSink, shards: usize) -> Self {
        Self::with_mode(sink.is_collecting(), shards)
    }

    fn with_mode(collect: bool, shards: usize) -> Self {
        assert!(shards > 0, "a sharded sink needs at least one shard");
        ShardedSink { shards: vec![SinkShard { collect, count: 0, pairs: Vec::new() }; shards] }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Mutable access to the shards, for handing one to each worker thread.
    #[inline]
    pub fn shards_mut(&mut self) -> &mut [SinkShard] {
        &mut self.shards
    }

    /// Total number of pairs reported across all shards.
    pub fn total_count(&self) -> u64 {
        self.shards.iter().map(|s| s.count).sum()
    }

    /// Drains every shard into `sink`, in shard order.
    ///
    /// Counts always transfer; materialised pairs transfer only if `sink` is
    /// collecting (matching what [`ResultSink::push`] would have done).
    pub fn merge_into(self, sink: &mut ResultSink) {
        for shard in self.shards {
            sink.count += shard.count;
            if sink.collect {
                sink.pairs.extend(shard.pairs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_mode_does_not_materialise() {
        let mut s = ResultSink::counting();
        assert!(!s.is_collecting());
        s.push(1, 2);
        s.push(3, 4);
        assert_eq!(s.count(), 2);
        assert!(s.pairs().is_empty());
    }

    #[test]
    fn collecting_mode_materialises_in_order() {
        let mut s = ResultSink::collecting();
        assert!(s.is_collecting());
        s.push(3, 4);
        s.push(1, 2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.pairs(), &[(3, 4), (1, 2)]);
        assert_eq!(s.sorted_pairs(), vec![(1, 2), (3, 4)]);
        assert_eq!(s.into_pairs(), vec![(3, 4), (1, 2)]);
    }

    #[test]
    fn clear_resets_but_keeps_mode() {
        let mut s = ResultSink::collecting();
        s.push(1, 1);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(s.pairs().is_empty());
        assert!(s.is_collecting());
    }

    #[test]
    fn sharded_sink_merges_counts_and_pairs() {
        let mut sink = ResultSink::collecting();
        let mut sharded = ShardedSink::for_sink(&sink, 3);
        assert_eq!(sharded.shard_count(), 3);
        sharded.shards_mut()[0].push(1, 10);
        sharded.shards_mut()[2].push(2, 20);
        sharded.shards_mut()[2].push(3, 30);
        assert_eq!(sharded.total_count(), 3);
        assert_eq!(sharded.shards_mut()[2].count(), 2);
        assert_eq!(sharded.shards_mut()[2].pairs(), &[(2, 20), (3, 30)]);
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 3);
        assert_eq!(sink.sorted_pairs(), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn sharded_sink_counting_mode_does_not_materialise() {
        let mut sink = ResultSink::counting();
        let mut sharded = ShardedSink::for_sink(&sink, 2);
        sharded.shards_mut()[0].push(1, 1);
        sharded.shards_mut()[1].push(2, 2);
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 2);
        assert!(sink.pairs().is_empty());
    }

    #[test]
    fn sharded_sink_merge_preserves_prior_sink_contents() {
        let mut sink = ResultSink::collecting();
        sink.push(9, 9);
        let mut sharded = ShardedSink::collecting(2);
        sharded.shards_mut()[1].push(5, 5);
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 2);
        assert_eq!(sink.sorted_pairs(), vec![(5, 5), (9, 9)]);
    }

    #[test]
    fn shards_can_be_used_from_scoped_threads() {
        let mut sharded = ShardedSink::collecting(4);
        std::thread::scope(|scope| {
            for (i, shard) in sharded.shards_mut().iter_mut().enumerate() {
                scope.spawn(move || {
                    for j in 0..10 {
                        shard.push(i as ObjectId, j);
                    }
                });
            }
        });
        assert_eq!(sharded.total_count(), 40);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedSink::counting(0);
    }
}

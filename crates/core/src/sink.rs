//! Result collection: the [`PairSink`] trait and its standard implementations.
//!
//! Every join engine in the workspace reports its result pairs through a
//! `&mut dyn PairSink`. The trait decouples *finding* pairs from *consuming* them:
//! the same engine can count ([`CountingSink`]), materialise ([`CollectingSink`]),
//! stream pairs into arbitrary user code without buffering ([`CallbackSink`]) or
//! stop early once enough results arrived ([`FirstKSink`]) — and parallel engines
//! go through the same interface via the [`ShardedSink`] adapter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use touch_geom::ObjectId;

/// A consumer of spatial-join result pairs.
///
/// Engines report **every** result pair `(a, b)` — oriented as `(id_in_A, id_in_B)`
/// regardless of the join order chosen internally — through [`PairSink::push`],
/// exactly once per pair.
///
/// # Early termination
///
/// A sink may signal that it has seen enough by returning `true` from
/// [`PairSink::is_done`]. Engines honour the signal inside their local-join loops:
/// they stop scanning as soon as they observe it (sequential engines check after
/// every delivered pair; the parallel engines propagate a shared pair budget from
/// [`PairSink::pair_limit`] to their worker shards). The signal is a *permission to
/// stop*, not an obligation — a sink must tolerate further `push` calls after
/// reporting done.
///
/// # Counting-only consumers
///
/// A sink that does not need the pair identities returns `false` from
/// [`PairSink::wants_pairs`]. Engines still `push` every pair they find one by one,
/// but *merging* paths (e.g. a [`ShardedSink`] draining its per-worker shards) may
/// instead transfer whole tallies through [`PairSink::add_count`] — such a sink
/// **must** override `add_count`, or bulk counts are silently dropped by the
/// default no-op.
pub trait PairSink {
    /// Consumes one result pair `(id_in_A, id_in_B)`.
    fn push(&mut self, a: ObjectId, b: ObjectId);

    /// `true` (the default) if the sink needs the identities of the pairs; `false`
    /// if a tally is enough ([`CountingSink`]), letting merge paths skip pair
    /// materialisation entirely.
    fn wants_pairs(&self) -> bool {
        true
    }

    /// `true` once the sink has seen enough pairs; engines stop their local-join
    /// loops as soon as they observe it. Defaults to `false` (never stop).
    fn is_done(&self) -> bool {
        false
    }

    /// Upper bound on the number of further pairs this sink will accept, or `None`
    /// (the default) for unbounded sinks. Parallel engines convert the limit into a
    /// budget shared by their worker shards so early termination also works when
    /// pairs are produced concurrently.
    fn pair_limit(&self) -> Option<u64> {
        None
    }

    /// Consumes a tally of `n` pairs whose identities were not materialised.
    ///
    /// Only called by merge paths, and only when [`PairSink::wants_pairs`] is
    /// `false`. The default implementation drops the tally — counting sinks must
    /// override it.
    fn add_count(&mut self, n: u64) {
        let _ = n;
    }

    /// Called exactly once by the query layer after the join completed, giving
    /// buffering sinks a flush point. Defaults to a no-op.
    fn finish(&mut self) {}
}

/// Delivers one result pair to `sink` following the early-termination protocol,
/// and counts it in `results` only if it was actually pushed.
///
/// This is the one implementation of the per-pair delivery step every engine's
/// emit closure needs: nothing is pushed into a sink that already reported
/// [`PairSink::is_done`], `results` stays equal to the pairs the sink received,
/// and the returned value follows the [`kernels`](crate::kernels) emit
/// convention — `true` to continue the scan, `false` to stop it. Engines use it
/// as `&mut |a, b| deliver(sink, a, b, &mut results)`.
#[inline]
pub fn deliver(sink: &mut dyn PairSink, a: ObjectId, b: ObjectId, results: &mut u64) -> bool {
    if sink.is_done() {
        return false;
    }
    sink.push(a, b);
    *results += 1;
    !sink.is_done()
}

/// A sink that tallies result pairs without materialising them.
///
/// This is the mode the experiment harness runs in: at the paper's dataset sizes
/// the result set can reach billions of pairs, and only the count matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// A fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs reported so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl PairSink for CountingSink {
    #[inline]
    fn push(&mut self, _a: ObjectId, _b: ObjectId) {
        self.count += 1;
    }

    fn wants_pairs(&self) -> bool {
        false
    }

    fn add_count(&mut self, n: u64) {
        self.count += n;
    }
}

/// A sink that materialises every result pair in arrival order.
#[derive(Debug, Clone, Default)]
pub struct CollectingSink {
    pairs: Vec<(ObjectId, ObjectId)>,
}

impl CollectingSink {
    /// A fresh collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs collected so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.pairs.len() as u64
    }

    /// The materialised pairs, in arrival order.
    #[inline]
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// Consumes the sink and returns the materialised pairs.
    pub fn into_pairs(self) -> Vec<(ObjectId, ObjectId)> {
        self.pairs
    }

    /// The pairs sorted lexicographically — convenient for comparing the output of
    /// different algorithms in tests.
    pub fn sorted_pairs(&self) -> Vec<(ObjectId, ObjectId)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// Resets the sink to its empty state, keeping the allocation.
    pub fn clear(&mut self) {
        self.pairs.clear();
    }
}

impl PairSink for CollectingSink {
    #[inline]
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.pairs.push((a, b));
    }
}

/// A sink that hands every pair to a closure, materialising nothing.
///
/// This is the zero-copy streaming consumer: pairs flow straight from the join's
/// inner loops into user code (a network writer, an aggregation, a spill file)
/// without ever being buffered by the join.
#[derive(Debug, Clone)]
pub struct CallbackSink<F: FnMut(ObjectId, ObjectId)> {
    callback: F,
    count: u64,
}

impl<F: FnMut(ObjectId, ObjectId)> CallbackSink<F> {
    /// Wraps `callback` as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback, count: 0 }
    }

    /// Number of pairs forwarded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consumes the sink, returning the wrapped callback.
    pub fn into_inner(self) -> F {
        self.callback
    }
}

impl<F: FnMut(ObjectId, ObjectId)> PairSink for CallbackSink<F> {
    #[inline]
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.count += 1;
        (self.callback)(a, b);
    }
}

/// A sink that keeps only the first `k` pairs and then tells the engine to stop.
///
/// Engines honour the stop signal in their local-join loops, so a `FirstKSink`
/// over a selective query ends the join long before the full result set is
/// enumerated — the building block for `EXISTS`-style probes and top-k previews.
/// Under a parallel engine the *number* of returned pairs is still exactly
/// `min(k, |result|)`, but *which* pairs arrive first depends on worker scheduling.
#[derive(Debug, Clone)]
pub struct FirstKSink {
    limit: usize,
    pairs: Vec<(ObjectId, ObjectId)>,
}

impl FirstKSink {
    /// A sink that accepts at most `limit` pairs.
    pub fn new(limit: usize) -> Self {
        FirstKSink { limit, pairs: Vec::new() }
    }

    /// The configured limit `k`.
    #[inline]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of pairs accepted so far (at most `k`).
    #[inline]
    pub fn count(&self) -> u64 {
        self.pairs.len() as u64
    }

    /// The accepted pairs, in arrival order.
    #[inline]
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// Consumes the sink and returns the accepted pairs.
    pub fn into_pairs(self) -> Vec<(ObjectId, ObjectId)> {
        self.pairs
    }

    /// Restores the full budget of `k` pairs, discarding everything accepted so
    /// far (the capacity is kept).
    ///
    /// A `FirstKSink` is stateful across joins by design — its budget is
    /// *consumed*, so reusing one sink for a second stream silently starts with
    /// `k - count()` remaining (and a [`ShardedSink`] built from it derives an
    /// already-spent shared budget from [`PairSink::pair_limit`]). Engines that
    /// reset their own state between streams (`StreamingTouchJoin::reset`)
    /// cannot reach into the caller's sink; call this alongside the engine
    /// reset so stream 2 observes the same early-termination behaviour as
    /// stream 1.
    pub fn reset(&mut self) {
        self.pairs.clear();
    }
}

impl PairSink for FirstKSink {
    #[inline]
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        if self.pairs.len() < self.limit {
            self.pairs.push((a, b));
        }
    }

    #[inline]
    fn is_done(&self) -> bool {
        self.pairs.len() >= self.limit
    }

    fn pair_limit(&self) -> Option<u64> {
        Some((self.limit - self.pairs.len().min(self.limit)) as u64)
    }
}

/// A self-join filter adapter: forwards only pairs `(a, b)` with `a < b` to the
/// wrapped sink, dropping identity pairs and one orientation of every mirrored
/// duplicate.
///
/// This is the correctness backstop behind the default
/// [`SpatialJoinAlgorithm::join_self_into`](crate::SpatialJoinAlgorithm::join_self_into):
/// any engine that joins a dataset against itself emits each unordered pair
/// twice (once per orientation) plus every identity pair, and wrapping its sink
/// in a `SelfPairSink` reduces that stream to each unordered pair exactly once.
/// The TOUCH engines do **not** rely on it — they apply the same index-order
/// filter inside their local-join kernels, so shared pair budgets
/// ([`PairSink::pair_limit`]) are spent on post-filter pairs only — but the
/// baselines reach self-join correctness through this adapter alone.
///
/// The adapter always reports [`PairSink::wants_pairs`]` == true` (it must see
/// identities to filter) and deliberately drops [`PairSink::add_count`] tallies:
/// bulk counts are pre-filter and would double-count.
pub struct SelfPairSink<'a> {
    inner: &'a mut dyn PairSink,
    delivered: u64,
}

impl std::fmt::Debug for SelfPairSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfPairSink").field("delivered", &self.delivered).finish_non_exhaustive()
    }
}

impl<'a> SelfPairSink<'a> {
    /// Wraps `inner`, forwarding only pairs with `a < b`.
    pub fn new(inner: &'a mut dyn PairSink) -> Self {
        SelfPairSink { inner, delivered: 0 }
    }

    /// Number of pairs that passed the filter and reached the inner sink.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl PairSink for SelfPairSink<'_> {
    #[inline]
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        if a < b {
            self.inner.push(a, b);
            self.delivered += 1;
        }
    }

    /// Always `true`: the filter needs pair identities even when the inner sink
    /// only counts, otherwise merge paths would transfer unfiltered tallies.
    fn wants_pairs(&self) -> bool {
        true
    }

    #[inline]
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn pair_limit(&self) -> Option<u64> {
        self.inner.pair_limit()
    }

    /// Dropped by design: a bulk tally carries no identities, so it cannot be
    /// filtered and would double-count mirrored pairs.
    fn add_count(&mut self, _n: u64) {}
}

/// One shard of a [`ShardedSink`]: a private result collector owned by a single
/// worker thread.
///
/// A shard is deliberately *not* shared: each worker pushes into its own shard
/// without synchronisation, and the shards are merged into the caller's
/// [`PairSink`] when the parallel section is over. A shard mirrors the caller's
/// [`PairSink::wants_pairs`] mode — so merging never materialises more than the
/// caller asked for — and participates in the sink's early-termination protocol
/// through a budget of pairs shared atomically between all shards (see
/// [`ShardedSink::for_sink`]).
#[derive(Debug, Clone)]
pub struct SinkShard {
    collect: bool,
    count: u64,
    pairs: Vec<(ObjectId, ObjectId)>,
    /// Remaining global pair budget shared with the sibling shards, when the
    /// target sink declared a [`PairSink::pair_limit`].
    budget: Option<Arc<AtomicU64>>,
    exhausted: bool,
}

impl SinkShard {
    /// Number of pairs reported into this shard so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The pairs materialised in this shard (empty in counting mode).
    #[inline]
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// Tries to reserve one unit of the shared pair budget. Returns `false` — and
    /// marks the shard exhausted — once the budget is spent.
    #[inline]
    fn reserve(&mut self) -> bool {
        let Some(budget) = &self.budget else { return true };
        if budget.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1)).is_ok() {
            true
        } else {
            self.exhausted = true;
            false
        }
    }
}

impl PairSink for SinkShard {
    /// Reports one result pair `(a, b)` into this shard. When the shared pair
    /// budget is exhausted the pair is dropped and [`PairSink::is_done`] starts
    /// returning `true`, which makes the owning worker stop its local joins.
    #[inline]
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        if self.exhausted || !self.reserve() {
            return;
        }
        self.count += 1;
        if self.collect {
            self.pairs.push((a, b));
        }
    }

    fn wants_pairs(&self) -> bool {
        self.collect
    }

    #[inline]
    fn is_done(&self) -> bool {
        self.exhausted
    }
}

/// A thread-safe result-collection adapter for parallel joins: one [`SinkShard`]
/// per worker, all presenting the caller's [`PairSink`] contract.
///
/// `PairSink::push` takes `&mut self`, so a user sink cannot be shared between
/// workers. `ShardedSink` is the concurrent counterpart used by `touch-parallel`:
/// it is split into independent shards handed to worker threads (via
/// [`ShardedSink::shards_mut`] and `split_at_mut`-style slice borrows, e.g.
/// `iter_mut` inside [`std::thread::scope`]), then drained back into the caller's
/// sink with [`ShardedSink::merge_into`]. No locks are involved for the pairs
/// themselves — disjoint `&mut` borrows are the synchronisation — and the only
/// shared state is the optional atomic pair budget that propagates
/// [`PairSink::pair_limit`] early termination across workers.
#[derive(Debug, Clone)]
pub struct ShardedSink {
    shards: Vec<SinkShard>,
}

impl ShardedSink {
    /// A sharded sink whose shards only count result pairs.
    pub fn counting(shards: usize) -> Self {
        Self::with_mode(false, shards, None)
    }

    /// A sharded sink whose shards count and materialise result pairs.
    pub fn collecting(shards: usize) -> Self {
        Self::with_mode(true, shards, None)
    }

    /// A sharded sink matching `sink`'s collection mode and pair budget, so that
    /// [`ShardedSink::merge_into`] loses nothing the caller asked for and
    /// early-terminating sinks stop the workers.
    pub fn for_sink(sink: &dyn PairSink, shards: usize) -> Self {
        let budget = sink.pair_limit().map(|limit| Arc::new(AtomicU64::new(limit)));
        Self::with_mode(sink.wants_pairs(), shards, budget)
    }

    fn with_mode(collect: bool, shards: usize, budget: Option<Arc<AtomicU64>>) -> Self {
        assert!(shards > 0, "a sharded sink needs at least one shard");
        ShardedSink {
            shards: vec![
                SinkShard {
                    collect,
                    count: 0,
                    pairs: Vec::new(),
                    budget,
                    exhausted: false
                };
                shards
            ],
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Mutable access to the shards, for handing one to each worker thread.
    #[inline]
    pub fn shards_mut(&mut self) -> &mut [SinkShard] {
        &mut self.shards
    }

    /// Total number of pairs reported across all shards.
    pub fn total_count(&self) -> u64 {
        self.shards.iter().map(|s| s.count).sum()
    }

    /// Drains every shard into `sink`, in shard order, and returns the number of
    /// pairs the sink actually received.
    ///
    /// If `sink` wants pairs, the materialised pairs are pushed one by one
    /// (stopping early if the sink reports done — which is why the returned count,
    /// not [`ShardedSink::total_count`], is what belongs in `counters.results`);
    /// otherwise the shard tallies are transferred in bulk through
    /// [`PairSink::add_count`].
    pub fn merge_into(self, sink: &mut dyn PairSink) -> u64 {
        let mut delivered = 0u64;
        if sink.wants_pairs() {
            'drain: for shard in self.shards {
                for (a, b) in shard.pairs {
                    if !deliver(sink, a, b, &mut delivered) {
                        break 'drain;
                    }
                }
            }
        } else {
            delivered = self.total_count();
            sink.add_count(delivered);
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies_without_materialising() {
        let mut s = CountingSink::new();
        assert!(!s.wants_pairs());
        s.push(1, 2);
        s.push(3, 4);
        s.add_count(5);
        assert_eq!(s.count(), 7);
        assert!(!s.is_done());
        assert_eq!(s.pair_limit(), None);
    }

    #[test]
    fn collecting_sink_materialises_in_order() {
        let mut s = CollectingSink::new();
        assert!(s.wants_pairs());
        s.push(3, 4);
        s.push(1, 2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.pairs(), &[(3, 4), (1, 2)]);
        assert_eq!(s.sorted_pairs(), vec![(1, 2), (3, 4)]);
        s.clear();
        assert_eq!(s.count(), 0);
        s.push(9, 9);
        assert_eq!(s.into_pairs(), vec![(9, 9)]);
    }

    #[test]
    fn callback_sink_forwards_without_buffering() {
        let mut seen = Vec::new();
        let mut s = CallbackSink::new(|a, b| seen.push((a, b)));
        s.push(1, 10);
        s.push(2, 20);
        assert_eq!(s.count(), 2);
        assert_eq!(seen, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn first_k_sink_stops_at_the_limit() {
        let mut s = FirstKSink::new(2);
        assert_eq!(s.limit(), 2);
        assert_eq!(s.pair_limit(), Some(2));
        assert!(!s.is_done());
        s.push(1, 1);
        assert_eq!(s.pair_limit(), Some(1));
        s.push(2, 2);
        assert!(s.is_done());
        assert_eq!(s.pair_limit(), Some(0));
        s.push(3, 3); // ignored: the sink is full
        assert_eq!(s.count(), 2);
        assert_eq!(s.into_pairs(), vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn zero_limit_first_k_is_done_immediately() {
        let s = FirstKSink::new(0);
        assert!(s.is_done());
        assert_eq!(s.pair_limit(), Some(0));
    }

    #[test]
    fn sharded_sink_merges_counts_and_pairs() {
        let mut sink = CollectingSink::new();
        let mut sharded = ShardedSink::for_sink(&sink, 3);
        assert_eq!(sharded.shard_count(), 3);
        sharded.shards_mut()[0].push(1, 10);
        sharded.shards_mut()[2].push(2, 20);
        sharded.shards_mut()[2].push(3, 30);
        assert_eq!(sharded.total_count(), 3);
        assert_eq!(sharded.shards_mut()[2].count(), 2);
        assert_eq!(sharded.shards_mut()[2].pairs(), &[(2, 20), (3, 30)]);
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 3);
        assert_eq!(sink.sorted_pairs(), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn sharded_sink_counting_mode_transfers_tallies() {
        let mut sink = CountingSink::new();
        let mut sharded = ShardedSink::for_sink(&sink, 2);
        assert!(!sharded.shards_mut()[0].wants_pairs());
        sharded.shards_mut()[0].push(1, 1);
        sharded.shards_mut()[1].push(2, 2);
        assert!(sharded.shards_mut()[0].pairs().is_empty(), "counting shards buffer nothing");
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn sharded_sink_merge_preserves_prior_sink_contents() {
        let mut sink = CollectingSink::new();
        sink.push(9, 9);
        let mut sharded = ShardedSink::collecting(2);
        sharded.shards_mut()[1].push(5, 5);
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 2);
        assert_eq!(sink.sorted_pairs(), vec![(5, 5), (9, 9)]);
    }

    #[test]
    fn shared_budget_caps_pairs_across_shards() {
        let mut sink = FirstKSink::new(3);
        let mut sharded = ShardedSink::for_sink(&sink, 2);
        for i in 0..10 {
            sharded.shards_mut()[(i % 2) as usize].push(i, i);
        }
        assert_eq!(sharded.total_count(), 3, "the shared budget caps accepted pairs");
        assert!(sharded.shards_mut().iter().all(|s| s.is_done()), "all shards observed the cap");
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 3);
        assert!(sink.is_done());
    }

    #[test]
    fn merge_into_respects_a_sink_that_became_done() {
        let mut sink = FirstKSink::new(1);
        let mut sharded = ShardedSink::collecting(2); // no budget: unbounded shards
        sharded.shards_mut()[0].push(1, 1);
        sharded.shards_mut()[1].push(2, 2);
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 1, "merge stops pushing once the sink is done");
    }

    #[test]
    fn shards_can_be_used_from_scoped_threads() {
        let mut sharded = ShardedSink::collecting(4);
        std::thread::scope(|scope| {
            for (i, shard) in sharded.shards_mut().iter_mut().enumerate() {
                scope.spawn(move || {
                    for j in 0..10 {
                        shard.push(i as ObjectId, j);
                    }
                });
            }
        });
        assert_eq!(sharded.total_count(), 40);
    }

    #[test]
    fn budgeted_shards_are_exact_under_concurrency() {
        let mut sink = FirstKSink::new(25);
        let mut sharded = ShardedSink::for_sink(&sink, 4);
        std::thread::scope(|scope| {
            for (i, shard) in sharded.shards_mut().iter_mut().enumerate() {
                scope.spawn(move || {
                    for j in 0..100 {
                        shard.push(i as ObjectId, j);
                    }
                });
            }
        });
        assert_eq!(sharded.total_count(), 25, "exactly k pairs survive the shared budget");
        sharded.merge_into(&mut sink);
        assert_eq!(sink.count(), 25);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedSink::counting(0);
    }

    #[test]
    fn self_pair_sink_keeps_only_strictly_ordered_pairs() {
        let mut inner = CollectingSink::new();
        let mut filter = SelfPairSink::new(&mut inner);
        assert!(filter.wants_pairs(), "forced on so merges never bulk-transfer");
        filter.push(1, 2); // kept
        filter.push(2, 1); // mirrored duplicate — dropped
        filter.push(3, 3); // identity — dropped
        filter.add_count(100); // pre-filter tally — dropped
        assert_eq!(filter.delivered(), 1);
        assert_eq!(inner.pairs(), &[(1, 2)]);
    }

    #[test]
    fn self_pair_sink_delegates_termination_to_the_inner_sink() {
        let mut inner = FirstKSink::new(2);
        let mut filter = SelfPairSink::new(&mut inner);
        assert_eq!(filter.pair_limit(), Some(2));
        filter.push(0, 1);
        filter.push(1, 0); // dropped — budget untouched
        assert!(!filter.is_done());
        filter.push(2, 5);
        assert!(filter.is_done());
        assert_eq!(filter.pair_limit(), Some(0));
        assert_eq!(filter.delivered(), 2);
        assert_eq!(inner.into_pairs(), vec![(0, 1), (2, 5)]);
    }
}

//! # touch-core — the TOUCH in-memory spatial join
//!
//! This crate implements the paper's contribution: **TOUCH**, a two-way in-memory
//! spatial join for unsorted, unindexed datasets that combines *data-oriented*
//! partitioning (an STR-built hierarchy over dataset A) with *hierarchical single
//! assignment* of dataset B and a space-oriented grid for the per-node local joins.
//!
//! TOUCH runs in three phases (Algorithm 1 of the paper):
//!
//! 1. **Tree building** ([`TouchTree::build`], Algorithm 2): dataset A is grouped
//!    into `p` spatially coherent buckets with STR; the buckets become the leaves of
//!    a hierarchy whose inner nodes are formed by grouping `fanout` nodes at a time.
//! 2. **Assignment** ([`TouchTree::assign`], Algorithm 3): every object of dataset B
//!    descends from the root and is stored at the lowest node whose MBR it overlaps
//!    without overlapping a sibling; objects that overlap nothing are *filtered* —
//!    they cannot produce results and are never compared.
//! 3. **Join** ([`TouchTree::local_join_node`], Algorithm 4): each node holding
//!    B-objects is joined against the A-objects in its descendant leaves through a
//!    uniform grid (with reference-point de-duplication), a plane-sweep, or an
//!    all-pairs scan ([`LocalJoinStrategy`]).
//!
//! The crate also defines the vocabulary shared by every engine and baseline:
//!
//! * the [`SpatialJoinAlgorithm`] trait — the engine-side contract, driven
//!   object-safely as `&dyn SpatialJoinAlgorithm` with a `&mut dyn PairSink`,
//! * the [`PairSink`] trait and its standard consumers — [`CountingSink`],
//!   [`CollectingSink`], [`CallbackSink`] (zero-materialisation streaming) and
//!   [`FirstKSink`] (early termination),
//! * the [`JoinQuery`] builder — the single user-facing entrypoint that owns the
//!   distance-join ε-translation ([`Predicate::WithinDistance`]), report identity
//!   and the sink lifecycle,
//! * the planning layer — [`DatasetStats`] (one-pass, exactly-mergeable dataset
//!   statistics), the [`JoinPlanner`] cost model and the [`JoinPlan`] every
//!   engine executes; a bare query (no `.engine(…)`) plans automatically,
//! * the pairwise join kernels ([`kernels`]) and the runtime-dispatched batched
//!   MBR filter underneath them ([`simd`]).
//!
//! For multi-threaded execution (the `touch-parallel` crate) the tree exposes its
//! per-phase building blocks — [`TouchTree::from_tiled`],
//! [`TouchTree::assignment_target`] (read-only), [`TouchTree::extend_assigned`],
//! [`TouchTree::nodes_with_assignments`] and [`TouchTree::local_join_node`] — and
//! [`ShardedSink`] adapts any [`PairSink`] into lock-free per-worker shards that
//! merge back when the parallel section is over.
//!
//! ## Quick example
//!
//! ```
//! use touch_core::{CollectingSink, JoinQuery, Predicate};
//! use touch_geom::{Aabb, Dataset, Point3};
//!
//! // Two tiny datasets of unit boxes.
//! let a = Dataset::from_mbrs((0..10).map(|i| {
//!     let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//! let b = Dataset::from_mbrs((0..10).map(|i| {
//!     let min = Point3::new(i as f64 * 3.0 + 1.5, 0.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//!
//! // Distance join with ε = 1: every a_i matches b_{i-1} and b_i.
//! let mut sink = CollectingSink::new();
//! let report = JoinQuery::new(&a, &b)
//!     .predicate(Predicate::WithinDistance(1.0))
//!     .run(&mut sink);
//! assert_eq!(report.result_pairs(), 19);
//! assert_eq!(sink.pairs().len(), 19);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod assignment;
mod control;
pub mod kernels;
mod plan;
mod query;
mod scratch;
pub mod simd;
mod sink;
mod stats;
mod touch;
mod traits;
mod tree;

pub use assignment::AssignmentBuffer;
pub use control::{catch_phase, panic_message, CancelCause, CancelToken, ExecControl, JoinError};
pub use plan::{AutoJoin, ExecutionStrategy, JoinPlan, JoinPlanner, PlanEnv};
pub use query::{IntoEngine, JoinQuery, Predicate};
pub use scratch::{LocalJoinScratch, ScratchPool};
pub use sink::{
    deliver, CallbackSink, CollectingSink, CountingSink, FirstKSink, PairSink, SelfPairSink,
    ShardedSink, SinkShard,
};
pub use stats::{DatasetStats, EXTENT_BUCKETS};
pub use touch::{time_phase_traced, JoinOrder, LocalJoinStrategy, TouchConfig, TouchJoin};
pub use traits::{collect_join, count_join, distance_join, SpatialJoinAlgorithm};
pub use tree::{
    AdaptiveParams, LocalJoinKind, LocalJoinParams, TouchNode, TouchTree, ASSIGN_CANCEL_CHUNK,
};

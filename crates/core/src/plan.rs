//! The join planning layer: [`JoinPlanner`], [`JoinPlan`] and the core
//! [`AutoJoin`] engine.
//!
//! TOUCH's performance hinges on tuning knobs the paper sets per workload — tree
//! partitioning and fanout, the grid cell floor, the grid-vs-all-pairs cutoff —
//! and on picking the right execution strategy for the machine and the query.
//! This module turns those hand-set constants into **derived quantities**: a
//! [`JoinPlanner`] reads [`DatasetStats`](crate::DatasetStats) (one cheap pass
//! per dataset) plus a [`PlanEnv`] (thread availability, the sink's pair limit,
//! the ε of the predicate, the expected number of probe epochs) and emits a
//! [`JoinPlan`] — the **complete, pinned parameterisation of one join**.
//!
//! Every TOUCH engine executes from a `JoinPlan`. Explicit configurations
//! ([`TouchConfig`], `ParallelConfig`, `StreamingConfig`) are translated into
//! plans by faithful constructors ([`JoinPlan::from_touch_config`],
//! [`JoinPlan::from_streaming_tree`]) that reproduce the historical decisions
//! bit-for-bit, so the explicit paths behave exactly as before the planning
//! layer existed. Because a plan pins *resolved* values — which side the tree is
//! built on, the concrete minimum cell size — the same plan executed by the
//! sequential, parallel or streaming engine performs the identical computation:
//! same pairs, same counters. That is what makes automatic strategy selection
//! safe.
//!
//! ## The cost model
//!
//! The planner is deliberately transparent — a handful of closed-form rules over
//! the statistics, each unit-testable on its own:
//!
//! * **Tree side** — the smaller dataset (the paper's *join order*
//!   recommendation, Section 5.2.3): it is likely sparser, filters more of the
//!   probe side and keeps the hierarchy small.
//! * **Leaf size / partitions** — leaves target `√n` objects
//!   (clamped to `[16, 2048]`): scale-free middle ground between grid-build
//!   amortisation (bigger leaves) and extent tightness (smaller leaves);
//!   `partitions = ⌈n / leaf⌉`, capped at 65 536.
//! * **Fanout** — 2 (the paper's default, maximising single-assignment
//!   filtering) until the hierarchy grows past 4 096 partitions, then 4 to cap
//!   the assignment descent depth.
//! * **Minimum grid cell size** — `2 ×` the larger of the two datasets' mean
//!   object extents (Section 5.2.2: cells must stay "considerably larger than
//!   the average object"). For a distance join the planner sees the ε-extended
//!   A, so ε inflates the floor automatically.
//! * **All-pairs cutoff** — `leaf/16` (clamped to `[8, 128]`): nodes whose
//!   subtree holds fewer A-objects than this do not repay building a grid.
//! * **Strategy** — a sink that stops after a handful of pairs
//!   ([`PlanEnv::pair_limit`]) favours the sequential engine (earliest possible
//!   termination, no worker spin-up to waste); a multi-epoch probe side
//!   ([`PlanEnv::epochs`]) selects the streaming engine (build once, amortise);
//!   otherwise the parallel engine is chosen whenever more than one thread is
//!   available and the input is large enough ([`JoinPlanner::parallel_min_work`])
//!   for the fork/join overhead to pay off.

use crate::control::{ExecControl, JoinError};
use crate::stats::DatasetStats;
use crate::{LocalJoinParams, PairSink, SpatialJoinAlgorithm, TouchConfig, TouchJoin};
use serde::{Deserialize, Serialize};
use touch_geom::Dataset;
use touch_metrics::{PlanSummary, RunReport};

/// The execution strategy a [`JoinPlan`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionStrategy {
    /// Single-threaded `TouchJoin`.
    Sequential,
    /// Work-stealing `ParallelTouchJoin` at the given worker count.
    Parallel {
        /// Resolved worker count (≥ 2).
        threads: usize,
    },
    /// Persistent-tree `StreamingTouchJoin` (one-shot runs push B as one epoch).
    Streaming {
        /// Resolved worker count per epoch (1 = sequential epochs).
        threads: usize,
    },
}

impl ExecutionStrategy {
    /// The worker count this strategy runs with (1 for [`ExecutionStrategy::Sequential`]).
    pub fn threads(&self) -> usize {
        match *self {
            ExecutionStrategy::Sequential => 1,
            ExecutionStrategy::Parallel { threads } | ExecutionStrategy::Streaming { threads } => {
                threads.max(1)
            }
        }
    }

    /// Stable label used in reports: `"sequential"`, `"parallel(4)"`, `"streaming(2)"`.
    pub fn label(&self) -> String {
        match *self {
            ExecutionStrategy::Sequential => "sequential".to_string(),
            ExecutionStrategy::Parallel { threads } => format!("parallel({threads})"),
            ExecutionStrategy::Streaming { threads } => format!("streaming({threads})"),
        }
    }
}

/// The complete, pinned parameterisation of one join execution.
///
/// A plan holds only **resolved** values: which dataset the hierarchy is built
/// on, concrete partition/fanout counts, the [`LocalJoinParams`] with the
/// minimum cell size already computed. Executing the same plan on the same
/// datasets therefore performs the identical computation on every engine —
/// pairs, emission per node and all counters — which the planner equivalence
/// suite (`tests/planner_equivalence.rs`) locks down.
///
/// Obtain one from [`JoinPlanner::plan`] (statistics-driven), from
/// [`JoinPlan::from_touch_config`] (faithful translation of an explicit
/// configuration), or from [`crate::JoinQuery::plan`] for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinPlan {
    /// Selected execution strategy.
    pub strategy: ExecutionStrategy,
    /// `true` to build the hierarchy on dataset A, `false` on dataset B.
    pub build_on_a: bool,
    /// STR partitions (leaf buckets) of the hierarchy.
    pub partitions: usize,
    /// Fanout of the hierarchy.
    pub fanout: usize,
    /// The per-node local-join parameterisation (grid kind, cells per dimension,
    /// resolved minimum cell size, all-pairs cutoff).
    pub params: LocalJoinParams,
    /// Probe objects per parallel-assignment work unit.
    pub chunk_size: usize,
    /// Inputs smaller than this are STR-sorted sequentially at build.
    pub sort_threshold: usize,
    /// The planner's work proxy (|A| + |B|); recorded for transparency, not used
    /// by the engines.
    pub estimated_work: u64,
}

impl JoinPlan {
    /// Translates an explicit [`TouchConfig`] into the plan the sequential engine
    /// has always executed: same tree side ([`TouchConfig::builds_tree_on_a`]),
    /// same partitioning, same grid sizing
    /// ([`TouchConfig::min_local_cell_size`]). Guarantees the explicit-config
    /// path stays bit-identical to the pre-planning implementation.
    pub fn from_touch_config(cfg: &TouchConfig, a: &Dataset, b: &Dataset) -> JoinPlan {
        JoinPlan {
            strategy: ExecutionStrategy::Sequential,
            build_on_a: cfg.builds_tree_on_a(a, b),
            partitions: cfg.partitions,
            fanout: cfg.fanout,
            params: cfg.local_join_params(cfg.min_local_cell_size(a, b)),
            chunk_size: JoinPlanner::DEFAULT_CHUNK_SIZE,
            sort_threshold: JoinPlanner::DEFAULT_SORT_THRESHOLD,
            estimated_work: (a.len() + b.len()) as u64,
        }
    }

    /// Translates an explicit streaming configuration into a plan: the hierarchy
    /// is always on the dataset handed to the builder (`build_on_a`), and the
    /// cell floor comes from the **tree dataset only**
    /// ([`TouchConfig::min_local_cell_size_of`]) — the stream's global average
    /// object size is unknowable at build time.
    pub fn from_streaming_tree(
        cfg: &TouchConfig,
        tree_ds: &Dataset,
        threads: usize,
        chunk_size: usize,
        sort_threshold: usize,
    ) -> JoinPlan {
        JoinPlan {
            strategy: ExecutionStrategy::Streaming { threads },
            build_on_a: true,
            partitions: cfg.partitions,
            fanout: cfg.fanout,
            params: cfg.local_join_params(cfg.min_local_cell_size_of(tree_ds)),
            chunk_size,
            sort_threshold,
            estimated_work: tree_ds.len() as u64,
        }
    }

    /// This plan with a different execution strategy (the knobs stay pinned).
    pub fn with_strategy(mut self, strategy: ExecutionStrategy) -> JoinPlan {
        self.strategy = strategy;
        self
    }

    /// This plan with explicit parallel execution knobs.
    pub fn with_execution(mut self, chunk_size: usize, sort_threshold: usize) -> JoinPlan {
        self.chunk_size = chunk_size;
        self.sort_threshold = sort_threshold;
        self
    }

    /// The worker count the plan runs with (1 for sequential).
    pub fn threads(&self) -> usize {
        self.strategy.threads()
    }

    /// The measurement-side record of this plan (attached to
    /// [`RunReport::plan`]; `stats_time` starts at zero and is filled in by the
    /// auto engine that actually collected statistics).
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            strategy: self.strategy.label(),
            build_on_a: self.build_on_a,
            partitions: self.partitions,
            fanout: self.fanout,
            cells_per_dim: self.params.cells_per_dim,
            min_cell_size: self.params.min_cell_size,
            allpairs_max_a: self.params.allpairs_max_a,
            threads: self.threads(),
            stats_time: std::time::Duration::ZERO,
        }
    }

    /// The equivalent [`TouchConfig`] — the explicit configuration that would
    /// reproduce this plan's algorithmic decisions on the datasets it was
    /// planned for. Used by engines that are constructed
    /// [`from_plan`](crate::TouchJoin::from_plan) but still expose a `config()`.
    pub fn as_touch_config(&self) -> TouchConfig {
        TouchConfig {
            partitions: self.partitions,
            fanout: self.fanout,
            local_cells_per_dim: self.params.cells_per_dim,
            min_cell_factor: TouchConfig::default().min_cell_factor,
            local_join: crate::LocalJoinStrategy::from_kind(self.params.kind),
            join_order: if self.build_on_a {
                crate::JoinOrder::TreeOnA
            } else {
                crate::JoinOrder::TreeOnB
            },
            grid_allpairs_max_a: self.params.allpairs_max_a,
            adapt: self.params.adapt,
        }
    }
}

/// The planning environment: everything the cost model consults besides the
/// dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEnv {
    /// Worker threads available to the query (≥ 1). [`PlanEnv::detect`] resolves
    /// the machine's parallelism; pass 1 to restrict planning to sequential
    /// execution.
    pub threads: usize,
    /// The sink's pair budget ([`PairSink::pair_limit`]), if any: small budgets
    /// favour early-terminating sequential plans.
    pub pair_limit: Option<u64>,
    /// The ε of the distance predicate (0 for a plain intersection join). The
    /// planner usually sees the ε-extended dataset A already, so this is
    /// informational.
    pub epsilon: f64,
    /// Expected number of probe epochs: 1 for a one-shot query; > 1 selects the
    /// streaming engine (build the tree once, amortise it over the epochs).
    pub epochs: usize,
}

impl PlanEnv {
    /// A one-shot environment with the machine's available parallelism.
    pub fn detect() -> Self {
        PlanEnv {
            threads: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            pair_limit: None,
            epsilon: 0.0,
            epochs: 1,
        }
    }

    /// A one-shot environment restricted to sequential execution.
    pub fn sequential() -> Self {
        PlanEnv { threads: 1, pair_limit: None, epsilon: 0.0, epochs: 1 }
    }

    /// This environment with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This environment with a sink pair budget.
    pub fn with_pair_limit(mut self, limit: Option<u64>) -> Self {
        self.pair_limit = limit;
        self
    }

    /// This environment expecting the probe side in `epochs` batches.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }
}

/// The statistics-driven cost model: derives a [`JoinPlan`] from two
/// [`DatasetStats`] and a [`PlanEnv`]. All tuning constants are public fields
/// with documented defaults, so the model is transparent and each rule is
/// unit-testable (see the module docs for the rules themselves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPlanner {
    /// Grid cells stay at least this multiple of the mean object extent
    /// (Section 5.2.2). Default: 2.0, the paper's evaluated factor.
    pub min_cell_factor: f64,
    /// Target grid cells per dimension before the cell floor caps the
    /// resolution. Default: 500, the paper's evaluated resolution.
    pub cells_per_dim: usize,
    /// Minimum total work (|A| + |B|) before a parallel plan pays for its
    /// fork/join overhead. Default: 16 384 objects.
    pub parallel_min_work: u64,
    /// Pair budgets at or below this select a sequential plan: the sequential
    /// engine stops at exactly the k-th pair, while parallel workers overshoot
    /// by design. Default: 1 024.
    pub early_stop_limit: u64,
    /// Probe objects per parallel-assignment work unit. Default: 4 096.
    pub chunk_size: usize,
    /// Inputs below this are STR-sorted sequentially. Default: 8 192.
    pub sort_threshold: usize,
}

impl JoinPlanner {
    /// Default assignment chunk size (shared with `ParallelConfig`).
    pub const DEFAULT_CHUNK_SIZE: usize = 4096;
    /// Default sequential-sort threshold (shared with `ParallelConfig`).
    pub const DEFAULT_SORT_THRESHOLD: usize = 8192;

    /// The leaf-size target for a tree over `n` objects: `√n` clamped to
    /// `[16, 2048]`.
    pub fn target_leaf_size(tree_count: usize) -> usize {
        ((tree_count.max(1) as f64).sqrt().round() as usize).clamp(16, 2048)
    }

    /// The buffered-mutation count past which folding a delta into the next
    /// serving generation stops paying off and the tree should be rebuilt from
    /// scratch (a fresh STR sort).
    ///
    /// A delta fold splices the previous generation's tile order — correct for
    /// any order ([`crate::TouchTree::from_tiled`]), but every fold degrades
    /// tiling quality a little, and quality is what the assignment descent
    /// prunes with. The rule: one target leaf's worth of objects
    /// ([`JoinPlanner::target_leaf_size`]) or ⅛ of the live set, whichever is
    /// larger. Small trees rebuild eagerly (a rebuild is cheap), large trees
    /// tolerate proportionally more buffered churn before paying the
    /// O(n log n) re-sort.
    pub fn delta_rebuild_limit(&self, live: usize) -> usize {
        Self::target_leaf_size(live).max(live / 8)
    }

    /// Plans a one-shot (or epoch-hinted) join of `a` and `b`.
    ///
    /// `a` must be the statistics of the dataset the engine will actually see —
    /// for a distance join, the ε-extended A (which is what
    /// [`crate::JoinQuery`] hands every engine).
    pub fn plan(&self, a: &DatasetStats, b: &DatasetStats, env: &PlanEnv) -> JoinPlan {
        let build_on_a = a.count() <= b.count();
        let tree_count = if build_on_a { a.count() } else { b.count() };
        let work = (a.count() + b.count()) as u64;
        self.plan_with_tree_side(a, b, env, build_on_a, tree_count, work)
    }

    /// Plans a **self-join** of one dataset: the hierarchy is always on the
    /// (single) input, every knob is derived from its statistics alone, and the
    /// work estimate is halved relative to the naive `a ⋈ a` reading — a
    /// self-join enumerates each unordered pair once, not both orientations.
    ///
    /// `a` must be the statistics of the dataset the engine will actually see —
    /// for a distance self-join, the ε-extended view.
    pub fn plan_self(&self, a: &DatasetStats, env: &PlanEnv) -> JoinPlan {
        self.plan_with_tree_side(a, a, env, true, a.count(), a.count() as u64)
    }

    /// Plans a streaming join whose hierarchy is pinned to the tree dataset
    /// (`tree`), probing a stream summarised by `probe` — which may be
    /// [`DatasetStats::new`] (empty) before the first stream, in which case the
    /// cell floor comes from the tree side alone, exactly like the explicit
    /// streaming configuration.
    pub fn plan_streaming(
        &self,
        tree: &DatasetStats,
        probe: &DatasetStats,
        env: &PlanEnv,
    ) -> JoinPlan {
        let work = (tree.count() + probe.count()) as u64;
        let plan = self.plan_with_tree_side(tree, probe, env, true, tree.count(), work);
        let threads = match plan.strategy {
            ExecutionStrategy::Sequential => 1,
            s => s.threads(),
        };
        plan.with_strategy(ExecutionStrategy::Streaming { threads })
    }

    fn plan_with_tree_side(
        &self,
        a: &DatasetStats,
        b: &DatasetStats,
        env: &PlanEnv,
        build_on_a: bool,
        tree_count: usize,
        work: u64,
    ) -> JoinPlan {
        let target_leaf = Self::target_leaf_size(tree_count);
        let partitions = tree_count.div_ceil(target_leaf).clamp(1, 65_536);
        let fanout = if partitions > 4096 { 4 } else { 2 };
        let min_cell = self.min_cell_factor * a.mean_side_all_axes().max(b.mean_side_all_axes());
        let allpairs_max_a = (target_leaf / 16).clamp(8, 128);
        // Per-node adaptive strategy selection, pinned to the *probe* side's
        // global density at plan time (the side streamed against the tree).
        // An empty or volume-less probe summary — notably a streaming plan made
        // before the first epoch — yields no density and falls back to the
        // global cutoff, so such plans stay exactly the historical decisions.
        let probe = if build_on_a { b } else { a };
        let adapt = match probe.density() {
            d if d > 0.0 => Some(crate::AdaptiveParams::with_density(d)),
            _ => None,
        };

        let strategy = if env.pair_limit.is_some_and(|k| k <= self.early_stop_limit) {
            ExecutionStrategy::Sequential
        } else if env.epochs > 1 {
            ExecutionStrategy::Streaming { threads: self.parallel_width(env, work) }
        } else if env.threads > 1 && work >= self.parallel_min_work {
            ExecutionStrategy::Parallel { threads: env.threads }
        } else {
            ExecutionStrategy::Sequential
        };

        JoinPlan {
            strategy,
            build_on_a,
            partitions,
            fanout,
            params: LocalJoinParams {
                kind: crate::LocalJoinKind::Grid,
                cells_per_dim: self.cells_per_dim,
                min_cell_size: min_cell,
                allpairs_max_a,
                adapt,
            },
            chunk_size: self.chunk_size,
            sort_threshold: self.sort_threshold,
            estimated_work: work,
        }
    }

    /// The worker count a non-sequential plan runs with: the available threads
    /// if the work justifies them, 1 otherwise.
    fn parallel_width(&self, env: &PlanEnv, work: u64) -> usize {
        if env.threads > 1 && work >= self.parallel_min_work {
            env.threads
        } else {
            1
        }
    }
}

impl Default for JoinPlanner {
    fn default() -> Self {
        JoinPlanner {
            min_cell_factor: 2.0,
            cells_per_dim: 500,
            parallel_min_work: 16_384,
            early_stop_limit: 1024,
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
            sort_threshold: Self::DEFAULT_SORT_THRESHOLD,
        }
    }
}

/// The core auto-planned engine: collects [`DatasetStats`], runs the
/// [`JoinPlanner`] and executes the plan **sequentially**.
///
/// This is what a bare [`crate::JoinQuery`] (no `.engine(…)`) runs. `touch-core`
/// cannot name the parallel or streaming engines (they live downstream), so this
/// engine plans with [`PlanEnv::sequential`] — every knob is statistics-derived,
/// the strategy is always [`ExecutionStrategy::Sequential`], and the recorded
/// plan always matches what actually ran. The facade crate's `Engine::Auto`
/// plans with the machine's full parallelism and dispatches across all three
/// engines; it is the form the experiment harness and benchmarks use.
#[derive(Debug, Clone, Default)]
pub struct AutoJoin {
    planner: JoinPlanner,
}

impl AutoJoin {
    /// An auto engine with the default planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An auto engine with a custom planner.
    pub fn with_planner(planner: JoinPlanner) -> Self {
        AutoJoin { planner }
    }

    /// The planner this engine consults.
    pub fn planner(&self) -> &JoinPlanner {
        &self.planner
    }
}

impl SpatialJoinAlgorithm for AutoJoin {
    fn name(&self) -> String {
        "TOUCH-AUTO".to_string()
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        let (stats_a, stats_b) = (DatasetStats::from_dataset(a), DatasetStats::from_dataset(b));
        Some(self.planner.plan(&stats_a, &stats_b, &PlanEnv::sequential()))
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let stats_start = std::time::Instant::now();
        let (stats_a, stats_b) = (DatasetStats::from_dataset(a), DatasetStats::from_dataset(b));
        let stats_time = stats_start.elapsed();
        let env = PlanEnv::sequential().with_pair_limit(sink.pair_limit()).with_threads(1);
        let plan = self.planner.plan(&stats_a, &stats_b, &env);
        TouchJoin::from_plan(plan).join_into(a, b, sink, report);
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        Some(self.planner.plan_self(&DatasetStats::from_dataset(a), &PlanEnv::sequential()))
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        let stats_start = std::time::Instant::now();
        let stats = DatasetStats::from_dataset(a);
        let stats_time = stats_start.elapsed();
        let env = PlanEnv::sequential().with_pair_limit(sink.pair_limit()).with_threads(1);
        let plan = self.planner.plan_self(&stats, &env);
        TouchJoin::from_plan(plan).join_self_into(a, base, sink, report);
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        // Check before the stats pass so a pre-cancelled run skips even planning.
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(());
        }
        let stats_start = std::time::Instant::now();
        let (stats_a, stats_b) = (DatasetStats::from_dataset(a), DatasetStats::from_dataset(b));
        let stats_time = stats_start.elapsed();
        let env = PlanEnv::sequential().with_pair_limit(sink.pair_limit()).with_threads(1);
        let plan = self.planner.plan(&stats_a, &stats_b, &env);
        TouchJoin::from_plan(plan).try_join_into(a, b, sink, report, ctl)?;
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
        Ok(())
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(());
        }
        let stats_start = std::time::Instant::now();
        let stats = DatasetStats::from_dataset(a);
        let stats_time = stats_start.elapsed();
        let env = PlanEnv::sequential().with_pair_limit(sink.pair_limit()).with_threads(1);
        let plan = self.planner.plan_self(&stats, &env);
        TouchJoin::from_plan(plan).try_join_self_into(a, base, sink, report, ctl)?;
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Point3};

    fn cloud(n: usize, seed: u64, side: f64) -> Dataset {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * 50.0, next() * 50.0, next() * 50.0);
            Aabb::new(min, min + Point3::splat(side))
        }))
    }

    fn stats(n: usize, seed: u64, side: f64) -> DatasetStats {
        DatasetStats::from_dataset(&cloud(n, seed, side))
    }

    #[test]
    fn tree_goes_on_the_smaller_side() {
        let planner = JoinPlanner::default();
        let small = stats(100, 1, 1.0);
        let large = stats(1000, 2, 1.0);
        assert!(planner.plan(&small, &large, &PlanEnv::sequential()).build_on_a);
        assert!(!planner.plan(&large, &small, &PlanEnv::sequential()).build_on_a);
        // Ties go to A, like JoinOrder::SmallerAsTree.
        assert!(planner.plan(&small, &stats(100, 3, 1.0), &PlanEnv::sequential()).build_on_a);
    }

    #[test]
    fn leaf_sizing_is_scale_free_and_monotonic() {
        assert_eq!(JoinPlanner::target_leaf_size(0), 16);
        assert_eq!(JoinPlanner::target_leaf_size(256), 16);
        assert_eq!(JoinPlanner::target_leaf_size(10_000), 100);
        assert_eq!(JoinPlanner::target_leaf_size(1_600_000), 1265);
        assert_eq!(JoinPlanner::target_leaf_size(usize::MAX / 4), 2048);

        let planner = JoinPlanner::default();
        let env = PlanEnv::sequential();
        let mut last = 0;
        for n in [64, 1_000, 50_000, 500_000] {
            let plan = planner.plan(&stats(n, 1, 1.0), &stats(n, 2, 1.0), &env);
            assert!(plan.partitions >= last, "partitions must not shrink as n grows");
            assert!(plan.partitions <= n.max(1));
            last = plan.partitions;
        }
    }

    #[test]
    fn min_cell_tracks_the_larger_mean_extent() {
        let planner = JoinPlanner::default();
        let env = PlanEnv::sequential();
        let small_objs = stats(500, 1, 0.5);
        let large_objs = stats(500, 2, 3.0);
        let plan = planner.plan(&small_objs, &large_objs, &env);
        assert!((plan.params.min_cell_size - 6.0).abs() < 0.2, "2 × the larger mean side");
        // ε-extension inflates A's extents, which inflates the floor.
        let extended = DatasetStats::from_dataset(&cloud(500, 1, 0.5).extended(1.0));
        let eps_plan = planner.plan(&extended, &large_objs, &env);
        assert!(eps_plan.params.min_cell_size >= plan.params.min_cell_size);
    }

    #[test]
    fn strategy_rules() {
        let planner = JoinPlanner::default();
        let a = stats(20_000, 1, 1.0);
        let b = stats(20_000, 2, 1.0);

        // Enough work + threads → parallel.
        let par = planner.plan(&a, &b, &PlanEnv::sequential().with_threads(4));
        assert_eq!(par.strategy, ExecutionStrategy::Parallel { threads: 4 });
        assert_eq!(par.threads(), 4);

        // One thread → sequential, whatever the size.
        let seq = planner.plan(&a, &b, &PlanEnv::sequential());
        assert_eq!(seq.strategy, ExecutionStrategy::Sequential);

        // Small input → sequential even with threads.
        let tiny = planner.plan(
            &stats(50, 1, 1.0),
            &stats(50, 2, 1.0),
            &PlanEnv::sequential().with_threads(8),
        );
        assert_eq!(tiny.strategy, ExecutionStrategy::Sequential);

        // A small pair budget forces the early-terminating sequential plan.
        let first_k =
            planner.plan(&a, &b, &PlanEnv::sequential().with_threads(8).with_pair_limit(Some(5)));
        assert_eq!(first_k.strategy, ExecutionStrategy::Sequential);
        // …but a huge budget does not.
        let bulk = planner.plan(
            &a,
            &b,
            &PlanEnv::sequential().with_threads(8).with_pair_limit(Some(1 << 40)),
        );
        assert_eq!(bulk.strategy, ExecutionStrategy::Parallel { threads: 8 });

        // Multi-epoch probes select streaming.
        let streaming =
            planner.plan(&a, &b, &PlanEnv::sequential().with_threads(4).with_epochs(16));
        assert_eq!(streaming.strategy, ExecutionStrategy::Streaming { threads: 4 });
    }

    #[test]
    fn planning_is_deterministic() {
        let planner = JoinPlanner::default();
        let a = stats(5_000, 7, 1.5);
        let b = stats(9_000, 8, 0.5);
        let env = PlanEnv::sequential().with_threads(4);
        assert_eq!(planner.plan(&a, &b, &env), planner.plan(&a, &b, &env));
        // Thread availability changes only the strategy, never the knobs.
        let seq = planner.plan(&a, &b, &PlanEnv::sequential());
        let par = planner.plan(&a, &b, &env);
        assert_eq!(seq.with_strategy(par.strategy), par);
    }

    #[test]
    fn from_touch_config_reproduces_the_historical_decisions() {
        let a = cloud(300, 1, 1.0);
        let b = cloud(200, 2, 2.0);
        let cfg = TouchConfig::default();
        let plan = JoinPlan::from_touch_config(&cfg, &a, &b);
        assert_eq!(plan.build_on_a, cfg.builds_tree_on_a(&a, &b));
        assert_eq!(plan.partitions, cfg.partitions);
        assert_eq!(plan.fanout, cfg.fanout);
        assert_eq!(plan.params, cfg.local_join_params(cfg.min_local_cell_size(&a, &b)));
        assert_eq!(plan.strategy, ExecutionStrategy::Sequential);
        // And the round-trip back to a config preserves the knobs.
        let back = plan.as_touch_config();
        assert_eq!(back.partitions, cfg.partitions);
        assert_eq!(back.fanout, cfg.fanout);
        assert_eq!(back.grid_allpairs_max_a, cfg.grid_allpairs_max_a);
        assert_eq!(back.join_order, crate::JoinOrder::TreeOnB, "tree side is resolved");
    }

    #[test]
    fn self_join_plans_cost_one_dataset_and_halve_the_work() {
        let planner = JoinPlanner::default();
        let a = stats(10_000, 1, 1.0);
        let env = PlanEnv::sequential().with_threads(8);

        let self_plan = planner.plan_self(&a, &env);
        assert!(self_plan.build_on_a, "the hierarchy is always on the single input");
        assert_eq!(self_plan.estimated_work, 10_000, "half the naive a ⋈ a estimate");
        // 10k entities < parallel_min_work once the estimate is halved, so the
        // self-join stays sequential where the naive reading would go parallel.
        assert_eq!(self_plan.strategy, ExecutionStrategy::Sequential);
        assert_eq!(planner.plan(&a, &a, &env).strategy, ExecutionStrategy::Parallel { threads: 8 });

        // The knobs themselves match the two-dataset plan of a ⋈ a.
        let pair_plan = planner.plan(&a, &a, &env);
        assert_eq!(self_plan.partitions, pair_plan.partitions);
        assert_eq!(self_plan.fanout, pair_plan.fanout);
        assert_eq!(self_plan.params, pair_plan.params);

        // Enough work → parallel, same as the two-dataset rule.
        let big = stats(20_000, 2, 1.0);
        assert_eq!(
            planner.plan_self(&big, &env).strategy,
            ExecutionStrategy::Parallel { threads: 8 }
        );
    }

    #[test]
    fn streaming_plans_pin_the_tree_side() {
        let planner = JoinPlanner::default();
        let tree = stats(50_000, 1, 1.0);
        // Even a much smaller (or empty) probe summary never flips the tree side.
        let plan = planner.plan_streaming(&tree, &DatasetStats::new(), &PlanEnv::sequential());
        assert!(plan.build_on_a);
        assert!(matches!(plan.strategy, ExecutionStrategy::Streaming { .. }));
        // With an empty probe summary the cell floor comes from the tree alone.
        let expected = 2.0 * tree.mean_side_all_axes();
        assert!((plan.params.min_cell_size - expected).abs() < 1e-12);
    }

    #[test]
    fn summary_carries_the_knobs() {
        let planner = JoinPlanner::default();
        let plan = planner.plan(
            &stats(30_000, 1, 1.0),
            &stats(30_000, 2, 1.0),
            &PlanEnv::sequential().with_threads(2),
        );
        let summary = plan.summary();
        assert_eq!(summary.strategy, "parallel(2)");
        assert_eq!(summary.partitions, plan.partitions);
        assert_eq!(summary.threads, 2);
        assert!(summary.compact().starts_with("parallel(2):p"));
    }
}

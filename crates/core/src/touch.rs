//! The TOUCH join algorithm: configuration and the [`SpatialJoinAlgorithm`]
//! implementation tying the three phases together (Algorithm 1).

use crate::control::{catch_phase, ExecControl, JoinError};
use crate::plan::JoinPlan;
use crate::tree::LocalJoinKind;
use crate::{deliver, LocalJoinScratch, PairSink, SpatialJoinAlgorithm, TouchTree};
use serde::{Deserialize, Serialize};
use touch_geom::Dataset;
use touch_metrics::{MemoryUsage, NoTrace, Phase, RunReport, TraceEvent, TraceSink};

/// Local-join strategy of the join phase (Section 5.2.2 and the ablation study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalJoinStrategy {
    /// The paper's Algorithm 4: per-node uniform grid with reference-point
    /// de-duplication (default).
    Grid,
    /// Plane-sweep over the node's A and B objects.
    PlaneSweep,
    /// Exhaustive pairwise comparison.
    AllPairs,
}

impl LocalJoinStrategy {
    /// The tree-level join kind this strategy selects (used by the sequential join
    /// and by `touch-parallel` when driving [`crate::TouchTree::local_join_node`]).
    pub fn kind(self) -> LocalJoinKind {
        match self {
            LocalJoinStrategy::Grid => LocalJoinKind::Grid,
            LocalJoinStrategy::PlaneSweep => LocalJoinKind::PlaneSweep,
            LocalJoinStrategy::AllPairs => LocalJoinKind::AllPairs,
        }
    }

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LocalJoinStrategy::Grid => "grid",
            LocalJoinStrategy::PlaneSweep => "plane-sweep",
            LocalJoinStrategy::AllPairs => "all-pairs",
        }
    }

    /// The inverse of [`LocalJoinStrategy::kind`] (used when a resolved
    /// [`JoinPlan`] is translated back into a [`TouchConfig`]).
    pub fn from_kind(kind: LocalJoinKind) -> Self {
        match kind {
            LocalJoinKind::Grid => LocalJoinStrategy::Grid,
            LocalJoinKind::PlaneSweep => LocalJoinStrategy::PlaneSweep,
            LocalJoinKind::AllPairs => LocalJoinStrategy::AllPairs,
        }
    }
}

/// Which dataset the hierarchy is built on (Section 5.2.3, *Join Order*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinOrder {
    /// Build the tree on the smaller dataset (the paper's recommendation and the
    /// default): it is likely sparser, filters more of the other dataset, and keeps
    /// the hierarchy small.
    SmallerAsTree,
    /// Always build the tree on dataset A as given.
    TreeOnA,
    /// Always build the tree on dataset B.
    TreeOnB,
}

/// Configuration of the TOUCH join.
///
/// The defaults are the paper's evaluated configuration (Section 6.1): 1024
/// partitions, fanout 2, 500 grid cells per dimension for the local join, grid local
/// join, smaller dataset first.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TouchConfig {
    /// Number of STR buckets (leaves) the tree is built from. Paper default: 1024.
    pub partitions: usize,
    /// Fanout of the hierarchy. Paper default: 2.
    pub fanout: usize,
    /// Target number of grid cells per dimension for the local join. Paper default:
    /// 500. The effective resolution is capped so cells stay larger than
    /// `min_cell_factor ×` the average object side (Section 5.2.2).
    pub local_cells_per_dim: usize,
    /// The local-join cell size is at least this multiple of the average object side.
    pub min_cell_factor: f64,
    /// Local-join strategy.
    pub local_join: LocalJoinStrategy,
    /// Which dataset the hierarchy is built on.
    pub join_order: JoinOrder,
    /// Nodes whose subtree holds at most this many A-objects use an all-pairs scan
    /// instead of building a local-join grid. The cutoff looks only at the A side —
    /// never at how many B-objects the node holds — so per-node strategy decisions
    /// are identical whether B is joined in one shot or streamed in epochs (see
    /// [`crate::LocalJoinParams`]).
    pub grid_allpairs_max_a: usize,
    /// Per-node adaptive strategy selection for the grid local join. `None`
    /// (default) keeps the single global `grid_allpairs_max_a` cutoff; the
    /// planner fills this in from the probe dataset's statistics so each node
    /// picks grid, all-pairs or plane-sweep from its own size and density (see
    /// [`crate::AdaptiveParams`]). The decision uses only plan-time statistics,
    /// never per-epoch B counts, preserving streaming decomposability.
    pub adapt: Option<crate::AdaptiveParams>,
}

impl Default for TouchConfig {
    fn default() -> Self {
        TouchConfig {
            partitions: 1024,
            fanout: 2,
            local_cells_per_dim: 500,
            min_cell_factor: 2.0,
            local_join: LocalJoinStrategy::Grid,
            join_order: JoinOrder::SmallerAsTree,
            grid_allpairs_max_a: 8,
            adapt: None,
        }
    }
}

/// The TOUCH in-memory spatial join (the paper's contribution).
///
/// Executes from a [`JoinPlan`]: an explicit [`TouchConfig`] is translated per
/// run with [`JoinPlan::from_touch_config`] (reproducing the pre-planning
/// behaviour exactly), while [`TouchJoin::from_plan`] pins a pre-computed plan —
/// the form the auto-planning layer dispatches to.
#[derive(Debug, Clone, Default)]
pub struct TouchJoin {
    config: TouchConfig,
    plan: Option<JoinPlan>,
}

impl TouchConfig {
    /// Whether the hierarchy is built on dataset A under this configuration's
    /// [`JoinOrder`]. Shared by the sequential join and `touch-parallel`, so the two
    /// can never diverge on the decision.
    pub fn builds_tree_on_a(&self, a: &Dataset, b: &Dataset) -> bool {
        match self.join_order {
            JoinOrder::TreeOnA => true,
            JoinOrder::TreeOnB => false,
            JoinOrder::SmallerAsTree => a.len() <= b.len(),
        }
    }

    /// The minimum local-join grid cell size for joining `a` and `b`: grid cells
    /// must stay larger than the average object (Section 5.2.2), measured over both
    /// inputs. Shared by the sequential join and `touch-parallel`.
    pub fn min_local_cell_size(&self, a: &Dataset, b: &Dataset) -> f64 {
        self.min_local_cell_size_of(a).max(self.min_local_cell_size_of(b))
    }

    /// The minimum local-join grid cell size derived from a single dataset. This is
    /// what `touch-streaming` uses: when B arrives in epochs its global average
    /// object size is unknown at build time, so the streaming engine sizes its grid
    /// cells from the tree dataset alone. Equals [`TouchConfig::min_local_cell_size`]
    /// whenever the tree dataset's objects are at least as large on average as the
    /// probe dataset's.
    pub fn min_local_cell_size_of(&self, ds: &Dataset) -> f64 {
        self.min_local_cell_size_of_objects(ds.objects())
    }

    /// The bare-slice form of [`TouchConfig::min_local_cell_size_of`]: identical
    /// arithmetic (same summation order, so the result is bit-identical to the
    /// [`Dataset`] form over the same objects) for callers that hold object
    /// slices rather than datasets — the serving layer resolves its per-query
    /// grid floor from the frozen generation's A-objects and the probe batch
    /// through this.
    pub fn min_local_cell_size_of_objects(&self, objects: &[touch_geom::SpatialObject]) -> f64 {
        let side = |axis: usize| {
            if objects.is_empty() {
                return 0.0;
            }
            objects.iter().map(|o| o.mbr.side(axis)).sum::<f64>() / objects.len() as f64
        };
        let avg = (0..3).map(side).sum::<f64>() / 3.0;
        avg * self.min_cell_factor
    }

    /// The [`LocalJoinParams`](crate::LocalJoinParams) this configuration selects for
    /// the given minimum cell size — the single place the per-node join knobs are
    /// assembled, shared by the sequential, parallel and streaming execution paths.
    pub fn local_join_params(&self, min_cell_size: f64) -> crate::LocalJoinParams {
        crate::LocalJoinParams {
            kind: self.local_join.kind(),
            cells_per_dim: self.local_cells_per_dim,
            min_cell_size,
            allpairs_max_a: self.grid_allpairs_max_a,
            adapt: self.adapt,
        }
    }
}

impl TouchJoin {
    /// Creates a TOUCH join with the given configuration.
    pub fn new(config: TouchConfig) -> Self {
        TouchJoin { config, plan: None }
    }

    /// Creates a TOUCH join that executes a pre-computed, fully resolved
    /// [`JoinPlan`] (the planner's output). The plan pins every decision —
    /// tree side, partitioning, grid sizing — so it should be executed on the
    /// datasets it was planned for.
    pub fn from_plan(plan: JoinPlan) -> Self {
        TouchJoin { config: plan.as_touch_config(), plan: Some(plan) }
    }

    /// Creates a TOUCH join with the paper's default configuration but a custom
    /// fanout (used by the fanout-impact experiment, Figure 14).
    pub fn with_fanout(fanout: usize) -> Self {
        TouchJoin::new(TouchConfig { fanout, ..TouchConfig::default() })
    }

    /// The configuration this join runs with (for a plan-pinned join, the
    /// equivalent explicit configuration).
    pub fn config(&self) -> &TouchConfig {
        &self.config
    }

    /// The plan this join executes for datasets `a` and `b`: the pinned plan if
    /// one was provided, otherwise the faithful translation of the configuration.
    fn resolve_plan(&self, a: &Dataset, b: &Dataset) -> JoinPlan {
        self.plan.unwrap_or_else(|| JoinPlan::from_touch_config(&self.config, a, b))
    }
}

/// Executes a resolved [`JoinPlan`] sequentially: the single code path behind
/// [`TouchJoin::join_into`], shared by explicit configurations and the planning
/// layer so the two can never diverge.
pub(crate) fn execute_sequential(
    plan: &JoinPlan,
    a: &Dataset,
    b: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
) {
    execute_sequential_traced(plan, a, b, sink, report, &NoTrace);
}

/// Times `f` into `report`'s `phase` and, when `trace` is enabled, also records
/// the phase as a [`TraceEvent::Phase`] span. Shared by the sequential and (via
/// re-export) the parallel/streaming coordinators so phase spans line up with
/// the reported phase times.
pub fn time_phase_traced<T>(
    report: &mut RunReport,
    phase: Phase,
    trace: &dyn TraceSink,
    f: impl FnOnce() -> T,
) -> T {
    if !trace.is_enabled() {
        return report.timer.time(phase, f);
    }
    let start_us = trace.now_us();
    let out = report.timer.time(phase, f);
    trace.record(TraceEvent::Phase {
        phase,
        start_us,
        duration_us: trace.now_us().saturating_sub(start_us),
    });
    out
}

/// Traced form of [`execute_sequential`]: the identical join (the untraced
/// entry point is this with a [`NoTrace`] sink) plus phase spans and per-node
/// [`TraceEvent::NodeJoin`] spans attributed to worker 0.
///
/// # Panics
/// Re-raises a contained phase panic with the attributed
/// [`JoinError::WorkerPanicked`] rendering (the original panic message is
/// embedded). Use [`execute_sequential_ctl`] to handle it as an error.
pub(crate) fn execute_sequential_traced(
    plan: &JoinPlan,
    a: &Dataset,
    b: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    trace: &dyn TraceSink,
) {
    execute_sequential_ctl(plan, a, b, sink, report, ExecControl::with_trace(trace))
        .unwrap_or_else(|e| panic!("{e}"));
}

/// The one sequential execution path: [`execute_sequential_traced`] is this
/// with a never-triggering token, [`execute_sequential`] additionally with a
/// disabled trace sink.
///
/// Cooperation contract:
///
/// * the cancel token is polled between phases, per assignment chunk and per
///   join node; a tripped token stops the run in an orderly way and returns
///   `Ok` with the partial report stamped
///   ([`Completion`](touch_metrics::Completion)),
/// * each phase runs inside [`catch_phase`], so a panic surfaces as
///   `Err(`[`JoinError::WorkerPanicked`]`)` (phase attributed, worker 0) with
///   the report covering the work completed before the panic,
/// * with an untriggered token the run is bit-identical — pairs *and* counters
///   — to the pre-fault-tolerance code path (locked by the equivalence suites
///   and the perfsmoke counter gate).
pub(crate) fn execute_sequential_ctl(
    plan: &JoinPlan,
    a: &Dataset,
    b: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    ctl: ExecControl<'_>,
) -> Result<(), JoinError> {
    report.plan = Some(plan.summary());
    let build_on_a = plan.build_on_a;
    let (tree_ds, probe_ds) = if build_on_a { (a, b) } else { (b, a) };
    let mut results = 0u64;
    let mut emit = |tree_id, probe_id| {
        if build_on_a {
            deliver(sink, tree_id, probe_id, &mut results)
        } else {
            deliver(sink, probe_id, tree_id, &mut results)
        }
    };
    execute_phases_ctl(plan, tree_ds, probe_ds, &mut emit, report, ctl)?;
    report.counters.results += results;
    Ok(())
}

/// Self-join form of [`execute_sequential_ctl`]: the same three phases over
/// `a ⋈ base` (the possibly ε-extended view and the original dataset, with
/// aligned ids), with the index-order filter applied inside the emit closure —
/// identity pairs and mirrored duplicates are dropped *before* the sink sees
/// them, so early termination budgets are spent on post-filter pairs only
/// while the comparison/node-test counters stay identical to the raw
/// `a ⋈ base` run.
pub(crate) fn execute_sequential_self_ctl(
    plan: &JoinPlan,
    a: &Dataset,
    base: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    ctl: ExecControl<'_>,
) -> Result<(), JoinError> {
    report.plan = Some(plan.summary());
    let build_on_a = plan.build_on_a;
    let (tree_ds, probe_ds) = if build_on_a { (a, base) } else { (base, a) };
    let mut results = 0u64;
    let mut emit = |tree_id, probe_id| {
        let (x, y) = if build_on_a { (tree_id, probe_id) } else { (probe_id, tree_id) };
        if x < y {
            deliver(sink, x, y, &mut results)
        } else {
            !sink.is_done()
        }
    };
    execute_phases_ctl(plan, tree_ds, probe_ds, &mut emit, report, ctl)?;
    report.counters.results += results;
    Ok(())
}

/// The shared three-phase body of [`execute_sequential_ctl`] and
/// [`execute_sequential_self_ctl`] — build, assign, join over an emit closure
/// that already encodes orientation (and, for self-joins, the index-order
/// filter). Counters are accumulated locally and folded back into the report
/// on **every** exit path, so a cancelled or panicked run still reports the
/// work it did.
fn execute_phases_ctl(
    plan: &JoinPlan,
    tree_ds: &Dataset,
    probe_ds: &Dataset,
    emit: &mut impl FnMut(touch_geom::ObjectId, touch_geom::ObjectId) -> bool,
    report: &mut RunReport,
    ctl: ExecControl<'_>,
) -> Result<(), JoinError> {
    if let Some(cause) = ctl.cancel.triggered() {
        report.completion = cause.completion();
        return Ok(());
    }

    // Phase 1: build the hierarchy on the tree dataset (Algorithm 2).
    let mut tree = catch_phase(Phase::Build, 0, || {
        time_phase_traced(report, Phase::Build, ctl.trace, || {
            TouchTree::build(tree_ds.objects(), plan.partitions, plan.fanout)
        })
    })?;
    if let Some(cause) = ctl.cancel.triggered() {
        report.memory_bytes = tree.memory_bytes();
        report.completion = cause.completion();
        return Ok(());
    }

    // Phase 2: assign the probe dataset to the hierarchy (Algorithm 3).
    let mut counters = std::mem::take(&mut report.counters);
    let assigned = catch_phase(Phase::Assignment, 0, || {
        time_phase_traced(report, Phase::Assignment, ctl.trace, || {
            tree.assign_ctl(probe_ds.objects(), &mut counters, ctl.cancel)
        })
    });
    let cut_short = match assigned {
        Ok(cut_short) => cut_short,
        Err(e) => {
            report.counters = counters;
            return Err(e);
        }
    };
    if let Some(cause) = cut_short {
        report.counters = counters;
        report.memory_bytes = tree.memory_bytes();
        report.completion = cause.completion();
        return Ok(());
    }

    // Phase 3: local joins (Algorithm 4), honouring the sink's early
    // termination after every delivered pair. The scratch lives for the whole
    // join, so the per-node grid directories and sweep buffers allocate once.
    let mut scratch = LocalJoinScratch::new();
    let joined = catch_phase(Phase::Join, 0, || {
        time_phase_traced(report, Phase::Join, ctl.trace, || {
            tree.join_assigned_ctl(&plan.params, &mut scratch, &mut counters, emit, ctl, 0)
        })
    });
    match joined {
        Ok((peak_local_aux, cause)) => {
            report.counters = counters;
            report.memory_bytes = tree.memory_bytes() + peak_local_aux;
            if let Some(cause) = cause {
                report.completion = cause.completion();
            }
            Ok(())
        }
        Err(e) => {
            report.counters = counters;
            report.memory_bytes = tree.memory_bytes() + scratch.memory_bytes();
            Err(e)
        }
    }
}

/// Untraced form of [`execute_sequential_self_traced`].
pub(crate) fn execute_sequential_self(
    plan: &JoinPlan,
    a: &Dataset,
    base: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
) {
    execute_sequential_self_traced(plan, a, base, sink, report, &NoTrace);
}

/// Executes a resolved [`JoinPlan`] sequentially as a **self-join**: the same
/// three phases as [`execute_sequential_traced`] over `a ⋈ base` (the possibly
/// ε-extended view and the original dataset, with aligned ids), with the
/// index-order filter applied inside the emit closure — identity pairs and
/// mirrored duplicates are dropped *before* the sink sees them, so early
/// termination budgets are spent on post-filter pairs only while the
/// comparison/node-test counters stay identical to the raw `a ⋈ base` run.
pub(crate) fn execute_sequential_self_traced(
    plan: &JoinPlan,
    a: &Dataset,
    base: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    trace: &dyn TraceSink,
) {
    execute_sequential_self_ctl(plan, a, base, sink, report, ExecControl::with_trace(trace))
        .unwrap_or_else(|e| panic!("{e}"));
}

impl SpatialJoinAlgorithm for TouchJoin {
    fn name(&self) -> String {
        "TOUCH".to_string()
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        Some(self.resolve_plan(a, b))
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        execute_sequential(&self.resolve_plan(a, b), a, b, sink, report);
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        execute_sequential_traced(&self.resolve_plan(a, b), a, b, sink, report, trace);
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        Some(self.resolve_plan(a, a))
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        execute_sequential_self(&self.resolve_plan(a, base), a, base, sink, report);
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        execute_sequential_self_traced(&self.resolve_plan(a, base), a, base, sink, report, trace);
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        execute_sequential_ctl(&self.resolve_plan(a, b), a, b, sink, report, ctl)
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        execute_sequential_self_ctl(&self.resolve_plan(a, base), a, base, sink, report, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_join;
    use touch_geom::{Aabb, Point3};

    fn lattice(side: usize, spacing: f64, box_side: f64, offset: f64) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(
                        x as f64 * spacing + offset,
                        y as f64 * spacing + offset,
                        z as f64 * spacing + offset,
                    );
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
                }
            }
        }
        ds
    }

    fn brute_pairs(a: &Dataset, b: &Dataset) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    out.push((oa.id, ob.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn default_configuration_matches_the_paper() {
        let c = TouchConfig::default();
        assert_eq!(c.partitions, 1024);
        assert_eq!(c.fanout, 2);
        assert_eq!(c.local_cells_per_dim, 500);
        assert_eq!(c.local_join, LocalJoinStrategy::Grid);
        assert_eq!(c.join_order, JoinOrder::SmallerAsTree);
        assert_eq!(c.grid_allpairs_max_a, 8);
        assert_eq!(TouchJoin::default().name(), "TOUCH");
    }

    #[test]
    fn matches_brute_force_on_overlapping_lattices() {
        let a = lattice(5, 1.5, 1.0, 0.0);
        let b = lattice(6, 1.3, 0.9, 0.4);
        let expected = brute_pairs(&a, &b);
        let (pairs, report) = collect_join(&TouchJoin::default(), &a, &b);
        assert_eq!(pairs, expected);
        assert_eq!(report.result_pairs(), expected.len() as u64);
        assert!(report.memory_bytes > 0);
    }

    #[test]
    fn join_order_does_not_change_results_or_orientation() {
        let a = lattice(4, 1.4, 1.0, 0.0);
        let b = lattice(6, 1.1, 0.8, 0.3); // larger than a
        let expected = brute_pairs(&a, &b);
        for order in [JoinOrder::SmallerAsTree, JoinOrder::TreeOnA, JoinOrder::TreeOnB] {
            let algo = TouchJoin::new(TouchConfig { join_order: order, ..TouchConfig::default() });
            let (pairs, _) = collect_join(&algo, &a, &b);
            assert_eq!(pairs, expected, "join order {order:?} changed the result");
        }
    }

    #[test]
    fn all_local_join_strategies_agree() {
        let a = lattice(4, 1.2, 1.0, 0.0);
        let b = lattice(5, 1.0, 0.7, 0.2);
        let expected = brute_pairs(&a, &b);
        for strategy in
            [LocalJoinStrategy::Grid, LocalJoinStrategy::PlaneSweep, LocalJoinStrategy::AllPairs]
        {
            let algo =
                TouchJoin::new(TouchConfig { local_join: strategy, ..TouchConfig::default() });
            let (pairs, _) = collect_join(&algo, &a, &b);
            assert_eq!(pairs, expected, "strategy {strategy:?} changed the result");
        }
    }

    #[test]
    fn fanout_variants_agree_and_report_filtering() {
        // Dataset A in a corner, half of B far away: those B objects are filtered.
        let a = lattice(4, 1.5, 1.0, 0.0);
        let mut b = lattice(4, 1.5, 1.0, 0.5);
        for i in 0..32 {
            b.push_mbr(Aabb::new(
                Point3::splat(500.0 + i as f64 * 3.0),
                Point3::splat(501.0 + i as f64 * 3.0),
            ));
        }
        let expected = brute_pairs(&a, &b);
        for fanout in [2, 4, 8, 16] {
            let algo = TouchJoin::with_fanout(fanout);
            let (pairs, report) = collect_join(&algo, &a, &b);
            assert_eq!(pairs, expected, "fanout {fanout} changed the result");
            assert_eq!(report.counters.filtered, 32, "far-away B objects must be filtered");
        }
    }

    #[test]
    fn self_join_matches_brute_force_unordered_pairs() {
        let a = lattice(5, 1.2, 1.5, 0.0); // side > spacing: every neighbour pair overlaps
        let expected: Vec<(u32, u32)> =
            brute_pairs(&a, &a).into_iter().filter(|&(x, y)| x < y).collect();
        assert!(!expected.is_empty());
        let mut sink = crate::CollectingSink::new();
        let report = TouchJoin::default().join_self(&a, &mut sink);
        assert_eq!(sink.sorted_pairs(), expected);
        assert_eq!(report.result_pairs(), expected.len() as u64);
    }

    #[test]
    fn empty_inputs_produce_empty_results() {
        let empty = Dataset::new();
        let b = lattice(3, 2.0, 1.0, 0.0);
        let (pairs, report) = collect_join(&TouchJoin::default(), &empty, &b);
        assert!(pairs.is_empty());
        assert_eq!(report.result_pairs(), 0);
        let (pairs, _) = collect_join(&TouchJoin::default(), &b, &empty);
        assert!(pairs.is_empty());
    }

    #[test]
    fn phase_times_are_populated() {
        let a = lattice(6, 1.5, 1.0, 0.0);
        let b = lattice(6, 1.5, 1.0, 0.2);
        let mut sink = crate::CountingSink::new();
        let report = TouchJoin::default().join(&a, &b, &mut sink);
        assert!(report.total_time() > std::time::Duration::ZERO);
        assert_eq!(report.dataset_a, a.len());
        assert_eq!(report.dataset_b, b.len());
        assert_eq!(report.result_pairs(), sink.count());
    }
}

//! Reusable scratch memory for the join phase: the CSR grid directory, the SoA
//! candidate-MBR cache, the plane-sweep buffers and the per-epoch work list.
//!
//! TOUCH's filter phase is bounded by comparisons and cache behaviour, not I/O —
//! which makes per-node allocation the enemy. The seed implementation paid a
//! `HashMap<usize, Vec<u32>>` per grid local join and a fresh `to_vec()` of both
//! object lists per plane-sweep node; on workloads with thousands of small nodes
//! those allocations dwarf the actual MBR tests. [`LocalJoinScratch`] replaces all
//! of it with flat buffers that are **retained across nodes, epochs and queries**:
//!
//! * the grid's cell directory is a CSR layout (count pass → prefix sum → fill into
//!   two flat arrays), reset in O(touched cells) between nodes;
//! * the candidate test scans a contiguous MBR array instead of hopping
//!   `SpatialObject` structs;
//! * the plane-sweep clones land in two reused buffers;
//! * the join phase's `nodes_with_assignments` work list is served from a reused
//!   buffer ([`ScratchPool`]).
//!
//! Every path through the scratch produces **exactly** the pairs, pair order and
//! counters of the seed implementation — the CSR directory lists each cell's
//! candidates in B-insertion order, precisely as the per-cell `Vec`s did.

use crate::simd;
use touch_geom::{Aabb, ObjectId, SpatialObject};
use touch_index::UniformGrid;
use touch_metrics::{vec_bytes, Counters, MemoryUsage};

/// Grids with at most this many cells use the dense CSR directory (two flat `u32`
/// arrays indexed by linear cell id, O(1) probe lookups). Larger grids — possible
/// only under extreme `cells_per_dim`/`min_cell_size` configurations — fall back to
/// a sorted sparse directory whose footprint scales with the *occupied* cells, like
/// the seed's `HashMap` did, instead of the geometric cell count.
const DENSE_DIRECTORY_MAX_CELLS: usize = 1 << 21;

/// Reusable per-worker scratch for [`TouchTree::local_join_node`] and everything
/// above it.
///
/// A scratch is plain memory: it carries no results between joins, only capacity.
/// Using one scratch for a thousand local joins performs exactly the same
/// comparisons and emits exactly the same pairs as a thousand fresh scratches —
/// locked down by `tests/scratch_equivalence.rs` — it just stops allocating once it
/// has seen a typical node.
///
/// [`TouchTree::local_join_node`]: crate::TouchTree::local_join_node
#[derive(Debug, Default, Clone)]
pub struct LocalJoinScratch {
    /// Dense CSR: number of B-entries per cell. Maintained **all-zero between
    /// joins** (reset walks only the touched cells), so a join can detect
    /// first-touch in O(1).
    cell_len: Vec<u32>,
    /// Dense CSR: running cursor per cell; after the fill pass, `cell_end[c]` is the
    /// exclusive end of cell `c`'s run in `entries` (start = end − len). Only
    /// entries of touched cells are meaningful.
    cell_end: Vec<u32>,
    /// Linear ids of the cells holding at least one B-entry, in first-touch order.
    touched_cells: Vec<u32>,
    /// B-positions grouped by cell (the CSR value array), each cell's run in
    /// B-insertion order.
    entries: Vec<u32>,
    /// Sparse fallback: `(cell, b_position)` pairs, sorted to group cells.
    sparse_pairs: Vec<(u64, u32)>,
    /// Sparse fallback directory: `(cell, start, end)` runs into `entries`.
    sparse_runs: Vec<(u64, u32, u32)>,
    /// SoA cache of the node's B-MBRs: the candidate test reads a contiguous
    /// 48-byte-stride array instead of 56-byte `SpatialObject`s scattered through
    /// the probe loop.
    b_mbrs: Vec<Aabb>,
    /// Plane-sweep clone of the node's A-objects (sorted in place by the kernel).
    sweep_a: Vec<SpatialObject>,
    /// Plane-sweep clone of the node's B-objects.
    sweep_b: Vec<SpatialObject>,
    /// The join phase's work list (`nodes_with_assignments`), refilled per epoch by
    /// [`TouchTree::join_assigned`] without reallocating.
    ///
    /// [`TouchTree::join_assigned`]: crate::TouchTree::join_assigned
    pub(crate) work: Vec<usize>,
}

impl LocalJoinScratch {
    /// An empty scratch. Buffers grow on first use and are retained from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if the grid directory holds no entries — the invariant every grid
    /// join re-establishes before it runs (and therefore leaves behind for the
    /// next). Exposed for the scratch-reuse test suites; the full `cell_len` scan
    /// (rather than just the touched cells) is deliberate, so a reset bug that
    /// strands stale counts *and* clears the touched list is still caught.
    pub fn directory_is_clean(&self) -> bool {
        self.touched_cells.is_empty() && self.cell_len.iter().all(|&len| len == 0)
    }

    /// The plane-sweep buffers, loaded with clones of `a_objs` and `b_objs`
    /// (the kernel sorts them in place, so the originals must stay untouched).
    pub(crate) fn load_sweep(
        &mut self,
        a_objs: &[SpatialObject],
        b_objs: &[SpatialObject],
    ) -> (&mut Vec<SpatialObject>, &mut Vec<SpatialObject>) {
        self.sweep_a.clear();
        self.sweep_a.extend_from_slice(a_objs);
        self.sweep_b.clear();
        self.sweep_b.extend_from_slice(b_objs);
        (&mut self.sweep_a, &mut self.sweep_b)
    }

    /// Algorithm 4's grid local join over reused flat memory: multiple assignment
    /// of `b_objs` into a CSR cell directory, then the probe pass over `a_objs`
    /// with reference-point de-duplication. Pairs, pair order and counters are
    /// identical to the seed's per-cell-`Vec` implementation.
    pub(crate) fn grid_join(
        &mut self,
        grid: &UniformGrid,
        a_objs: &[SpatialObject],
        b_objs: &[SpatialObject],
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) {
        // Defensive reset: a panic that unwound through a previous join may have
        // left directory entries behind; clearing here (O(touched)) restores the
        // all-zero invariant no matter how the last join ended.
        for &c in &self.touched_cells {
            self.cell_len[c as usize] = 0;
        }
        self.touched_cells.clear();
        self.entries.clear();

        self.b_mbrs.clear();
        self.b_mbrs.extend(b_objs.iter().map(|o| o.mbr));

        if grid.total_cells() <= DENSE_DIRECTORY_MAX_CELLS {
            self.dense_join(grid, a_objs, b_objs, counters, emit);
        } else {
            self.sparse_join(grid, a_objs, b_objs, counters, emit);
        }
    }

    /// Dense CSR path: count pass → prefix sum over the touched cells → fill, then
    /// probe with O(1) cell lookups.
    fn dense_join(
        &mut self,
        grid: &UniformGrid,
        a_objs: &[SpatialObject],
        b_objs: &[SpatialObject],
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) {
        let cells = grid.total_cells();
        if self.cell_len.len() < cells {
            self.cell_len.resize(cells, 0);
            self.cell_end.resize(cells, 0);
        }

        // Count pass: how many B-objects land in each cell (multiple assignment;
        // every cell beyond an object's first is a replica, as in the seed). The
        // pass also accumulates the bounding box of occupied cells, which the
        // probe uses to skip A-objects that cannot reach any candidate.
        let mut occupied = CellBox::empty();
        for (pos, _) in b_objs.iter().enumerate() {
            let mbr = self.b_mbrs[pos];
            let (lo, hi) = grid.cell_range(&mbr);
            occupied.widen(lo, hi);
            let mut first = true;
            for_cells(lo, hi, |c| {
                let cell = grid.linear_index(c);
                if self.cell_len[cell] == 0 {
                    self.touched_cells.push(cell as u32);
                }
                self.cell_len[cell] += 1;
                if first {
                    first = false;
                } else {
                    counters.record_replica();
                }
            });
        }

        // Prefix sum: assign each touched cell its run in `entries`, storing the
        // run *start* in `cell_end` so the fill pass can advance it into the end.
        let mut cursor = 0u32;
        for &c in &self.touched_cells {
            self.cell_end[c as usize] = cursor;
            cursor += self.cell_len[c as usize];
        }
        self.entries.resize(cursor as usize, 0);

        // Fill pass: B-positions drop into their cells in B order, so every cell's
        // run lists candidates in exactly the insertion order the seed's per-cell
        // `Vec`s had.
        for (pos, _) in b_objs.iter().enumerate() {
            let mbr = self.b_mbrs[pos];
            let (lo, hi) = grid.cell_range(&mbr);
            for_cells(lo, hi, |c| {
                let cell = grid.linear_index(c);
                self.entries[self.cell_end[cell] as usize] = pos as u32;
                self.cell_end[cell] += 1;
            });
        }

        // Probe pass over flat slices.
        let (cell_len, cell_end) = (&self.cell_len, &self.cell_end);
        let entries = &self.entries;
        probe(grid, a_objs, b_objs, &self.b_mbrs, &occupied, counters, emit, |cell| {
            let len = cell_len[cell] as usize;
            if len == 0 {
                return None;
            }
            let end = cell_end[cell] as usize;
            Some(&entries[end - len..end])
        });

        // Reset the directory to all-zero in O(touched cells).
        for &c in &self.touched_cells {
            self.cell_len[c as usize] = 0;
        }
        self.touched_cells.clear();
    }

    /// Sparse fallback for geometrically huge grids: `(cell, b_position)` pairs are
    /// sorted to group cells (B order within a cell is preserved because the pairs
    /// are unique and sorted lexicographically), then probed via binary search.
    fn sparse_join(
        &mut self,
        grid: &UniformGrid,
        a_objs: &[SpatialObject],
        b_objs: &[SpatialObject],
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) {
        self.sparse_pairs.clear();
        let mut occupied = CellBox::empty();
        for (pos, _) in b_objs.iter().enumerate() {
            let mbr = self.b_mbrs[pos];
            let (lo, hi) = grid.cell_range(&mbr);
            occupied.widen(lo, hi);
            let mut first = true;
            for_cells(lo, hi, |c| {
                self.sparse_pairs.push((grid.linear_index(c) as u64, pos as u32));
                if first {
                    first = false;
                } else {
                    counters.record_replica();
                }
            });
        }
        // (cell, pos) pairs are unique, so the unstable sort is deterministic and
        // keeps each cell's candidates in ascending B order — the insertion order
        // of the dense path and of the seed's per-cell `Vec`s.
        self.sparse_pairs.sort_unstable();

        self.sparse_runs.clear();
        self.entries.clear();
        for &(cell, pos) in &self.sparse_pairs {
            self.entries.push(pos);
            match self.sparse_runs.last_mut() {
                Some((c, _, end)) if *c == cell => *end += 1,
                _ => {
                    let at = (self.entries.len() - 1) as u32;
                    self.sparse_runs.push((cell, at, at + 1));
                }
            }
        }

        let (runs, entries) = (&self.sparse_runs, &self.entries);
        probe(grid, a_objs, b_objs, &self.b_mbrs, &occupied, counters, emit, |cell| {
            let i = runs.binary_search_by_key(&(cell as u64), |&(c, _, _)| c).ok()?;
            let (_, start, end) = runs[i];
            Some(&entries[start as usize..end as usize])
        });
    }
}

impl MemoryUsage for LocalJoinScratch {
    /// Heap bytes currently reserved by every scratch buffer. This is the figure
    /// the engines charge to the join phase's auxiliary memory: with reuse, it is
    /// the high-water mark of everything the local joins ever needed at once.
    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.cell_len)
            + vec_bytes(&self.cell_end)
            + vec_bytes(&self.touched_cells)
            + vec_bytes(&self.entries)
            + vec_bytes(&self.sparse_pairs)
            + vec_bytes(&self.sparse_runs)
            + vec_bytes(&self.b_mbrs)
            + vec_bytes(&self.sweep_a)
            + vec_bytes(&self.sweep_b)
            + vec_bytes(&self.work)
    }
}

/// The inclusive bounding box of the occupied grid cells, accumulated during the
/// count pass. The probe intersects every A-object's cell range with it: cells
/// outside the box hold no candidates, so clamping skips them — and usually whole
/// A-objects — **without changing a single comparison** (an empty cell contributes
/// nothing to the counters either way).
#[derive(Debug, Clone, Copy)]
struct CellBox {
    lo: [usize; 3],
    hi: [usize; 3],
}

impl CellBox {
    /// A box containing no cells (any clamp against it comes up empty).
    fn empty() -> Self {
        CellBox { lo: [usize::MAX; 3], hi: [0; 3] }
    }

    /// Widens the box to cover the inclusive cell range `lo..=hi`.
    #[inline]
    fn widen(&mut self, lo: [usize; 3], hi: [usize; 3]) {
        for axis in 0..3 {
            self.lo[axis] = self.lo[axis].min(lo[axis]);
            self.hi[axis] = self.hi[axis].max(hi[axis]);
        }
    }

    /// Intersects the inclusive range `lo..=hi` with the box; `None` if no
    /// occupied cell falls inside the range.
    #[inline]
    fn clamp(&self, lo: [usize; 3], hi: [usize; 3]) -> Option<([usize; 3], [usize; 3])> {
        let mut clo = [0; 3];
        let mut chi = [0; 3];
        for axis in 0..3 {
            clo[axis] = lo[axis].max(self.lo[axis]);
            chi[axis] = hi[axis].min(self.hi[axis]);
            if clo[axis] > chi[axis] {
                return None;
            }
        }
        Some((clo, chi))
    }
}

/// Visits every cell of the inclusive coordinate range in the z-major order of
/// [`UniformGrid::for_each_overlapped_cell`] — the directory passes and the probe
/// must walk cells in exactly the same order for the candidate runs to line up.
#[inline]
fn for_cells(lo: [usize; 3], hi: [usize; 3], mut f: impl FnMut([usize; 3])) {
    for z in lo[2]..=hi[2] {
        for y in lo[1]..=hi[1] {
            for x in lo[0]..=hi[0] {
                f([x, y, z]);
            }
        }
    }
}

/// The shared probe pass: every A-object visits the cells it overlaps (in the same
/// z-major order the assignment passes used, clamped to the occupied cell box),
/// tests itself against the cell's candidates through the SoA MBR cache, and
/// reports a hit only from the cell containing the reference point (Dittrich &
/// Seeger), which guarantees exactly-once results without a de-duplication pass.
/// `lookup` maps a linear cell id to its candidate run (`None` for empty cells).
///
/// Each candidate run goes through the batched SIMD MBR filter
/// ([`simd::overlap_run`]): [`simd::LANES`] candidates are gathered from the
/// SoA cache per batch while the MBRs of the *next* batch are prefetched, and
/// only lanes the (exact) bitmask keeps reach the scalar confirmation and the
/// reference-point rule. Comparisons are counted one candidate at a time, in
/// run order, before the test — so pairs, order and counters are bit-identical
/// to the unbatched scalar walk on every backend.
#[allow(clippy::too_many_arguments)] // private kernel: the args *are* the hot state
fn probe<'d>(
    grid: &UniformGrid,
    a_objs: &[SpatialObject],
    b_objs: &[SpatialObject],
    b_mbrs: &[Aabb],
    occupied: &CellBox,
    counters: &mut Counters,
    emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    lookup: impl Fn(usize) -> Option<&'d [u32]>,
) {
    let backend = simd::backend();
    'all: for a in a_objs {
        let (range_lo, range_hi) = grid.cell_range(&a.mbr);
        let Some((lo, hi)) = occupied.clamp(range_lo, range_hi) else { continue };
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    let cell = grid.linear_index([x, y, z]);
                    let Some(candidates) = lookup(cell) else { continue };
                    let mut at = 0;
                    while at < candidates.len() {
                        let run = &candidates[at..(at + simd::LANES).min(candidates.len())];
                        // Hide the gather latency of the next batch: its MBR
                        // cache lines start moving while this batch is tested.
                        if let Some(next) = candidates.get(at + simd::LANES..) {
                            for &nb in next.iter().take(simd::LANES) {
                                simd::prefetch_read(b_mbrs, nb as usize);
                            }
                        }
                        let mask = simd::overlap_run(backend, &a.mbr, b_mbrs, run);
                        counters.record_batch(run.len() as u64, u64::from(mask.count_ones()));
                        for (lane, &bpos) in run.iter().enumerate() {
                            counters.record_comparison();
                            if mask >> lane & 1 == 0 {
                                continue;
                            }
                            let bm = &b_mbrs[bpos as usize];
                            if a.mbr.intersects(bm) {
                                // Reference-point rule: report only from the cell
                                // that contains the lower corner of the
                                // intersection.
                                let rp = a.mbr.intersection_reference_point(bm);
                                let rp_cell = grid.linear_index(grid.cell_of_point(&rp));
                                if rp_cell == cell {
                                    if !emit(a.id, b_objs[bpos as usize].id) {
                                        break 'all;
                                    }
                                } else {
                                    counters.record_duplicate_suppressed();
                                }
                            }
                        }
                        at += simd::LANES;
                    }
                }
            }
        }
    }
}

/// A set of [`LocalJoinScratch`]es plus the join-phase work list, sized on demand:
/// one scratch per worker of the widest join it has served. This is what a
/// persistent engine ([`StreamingTouchJoin`]) holds on to so that *nothing* in the
/// join phase allocates per epoch once the stream has warmed up.
///
/// [`StreamingTouchJoin`]: https://docs.rs/touch-streaming
#[derive(Debug, Default, Clone)]
pub struct ScratchPool {
    scratches: Vec<LocalJoinScratch>,
    work: Vec<usize>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scratch of the sequential path (worker 0), creating it on first use.
    pub fn primary(&mut self) -> &mut LocalJoinScratch {
        &mut self.worker_scratches(1)[0]
    }

    /// Exactly-sized view of the first `workers` scratches, growing the pool if it
    /// has never served this many workers.
    pub fn worker_scratches(&mut self, workers: usize) -> &mut [LocalJoinScratch] {
        if self.scratches.len() < workers {
            self.scratches.resize_with(workers, LocalJoinScratch::default);
        }
        &mut self.scratches[..workers]
    }

    /// Number of worker scratches currently held.
    pub fn workers(&self) -> usize {
        self.scratches.len()
    }

    /// Takes the reusable work-list buffer out of the pool (so the pool's
    /// scratches can be borrowed independently while the list is iterated).
    /// Return it with [`ScratchPool::restore_work`].
    pub fn take_work(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.work)
    }

    /// Returns the work-list buffer taken with [`ScratchPool::take_work`],
    /// retaining its capacity for the next epoch.
    pub fn restore_work(&mut self, work: Vec<usize>) {
        self.work = work;
    }
}

impl MemoryUsage for ScratchPool {
    /// Reserved bytes across every worker scratch plus the work list.
    fn memory_bytes(&self) -> usize {
        self.scratches.iter().map(|s| s.memory_bytes()).sum::<usize>() + vec_bytes(&self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Dataset, Point3};

    fn boxes(seeds: &[(f64, f64, f64, f64)]) -> Dataset {
        Dataset::from_mbrs(seeds.iter().map(|&(x, y, z, s)| {
            let min = Point3::new(x, y, z);
            Aabb::new(min, min + Point3::splat(s))
        }))
    }

    fn dense_cloud(n: usize, seed: u64) -> Dataset {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * 30.0, next() * 30.0, next() * 30.0);
            Aabb::new(min, min + Point3::splat(0.5 + next() * 4.0))
        }))
    }

    fn brute(a: &Dataset, b: &Dataset) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    out.push((oa.id, ob.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn grid_join_pairs(
        scratch: &mut LocalJoinScratch,
        grid: &UniformGrid,
        a: &Dataset,
        b: &Dataset,
    ) -> (Vec<(u32, u32)>, Counters) {
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        scratch.grid_join(grid, a.objects(), b.objects(), &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        pairs.sort_unstable();
        (pairs, counters)
    }

    #[test]
    fn dense_and_sparse_paths_agree_with_brute_force() {
        let a = dense_cloud(60, 7);
        let b = dense_cloud(80, 11);
        let extent = Aabb::new(Point3::ORIGIN, Point3::splat(35.0));
        let expected = brute(&a, &b);
        assert!(!expected.is_empty());

        // Dense: a handful of cells.
        let dense_grid = UniformGrid::new(extent, 8);
        let mut scratch = LocalJoinScratch::new();
        let (pairs, dense_counters) = grid_join_pairs(&mut scratch, &dense_grid, &a, &b);
        assert_eq!(pairs, expected);

        // Sparse: force the fallback with a grid over the dense limit.
        let huge_grid = UniformGrid::new(extent, 160); // 160³ > 2²¹ cells
        assert!(huge_grid.total_cells() > super::DENSE_DIRECTORY_MAX_CELLS);
        let (pairs, _) = grid_join_pairs(&mut scratch, &huge_grid, &a, &b);
        assert_eq!(pairs, expected, "sparse fallback must match brute force");

        // Same geometry ⇒ same counters, whichever directory is in use: compare the
        // dense run against a sparse run over an identical grid geometry.
        let mut forced = LocalJoinScratch::new();
        let mut counters = Counters::new();
        let mut pairs = Vec::new();
        forced.b_mbrs.extend(b.objects().iter().map(|o| o.mbr));
        forced.sparse_join(&dense_grid, a.objects(), b.objects(), &mut counters, &mut |x, y| {
            pairs.push((x, y));
            true
        });
        pairs.sort_unstable();
        assert_eq!(pairs, expected);
        assert_eq!(counters, dense_counters, "dense and sparse paths must count identically");
    }

    #[test]
    fn reuse_across_joins_is_clean_and_stops_allocating() {
        let a1 = dense_cloud(50, 1);
        let b1 = dense_cloud(70, 2);
        let a2 = boxes(&[(0.0, 0.0, 0.0, 2.0), (3.0, 3.0, 3.0, 2.0)]);
        let b2 = boxes(&[(1.0, 1.0, 1.0, 3.0)]);
        let extent = Aabb::new(Point3::ORIGIN, Point3::splat(35.0));
        let grid1 = UniformGrid::new(extent, 10);
        let grid2 = UniformGrid::new(Aabb::new(Point3::ORIGIN, Point3::splat(6.0)), 4);

        // Reference: fresh scratches.
        let fresh1 = grid_join_pairs(&mut LocalJoinScratch::new(), &grid1, &a1, &b1);
        let fresh2 = grid_join_pairs(&mut LocalJoinScratch::new(), &grid2, &a2, &b2);

        // One scratch, interleaved reuse over different grids and object sets.
        let mut scratch = LocalJoinScratch::new();
        for _ in 0..3 {
            assert_eq!(grid_join_pairs(&mut scratch, &grid1, &a1, &b1), fresh1);
            assert!(scratch.directory_is_clean(), "join left directory entries behind");
            assert_eq!(grid_join_pairs(&mut scratch, &grid2, &a2, &b2), fresh2);
            assert!(scratch.directory_is_clean());
        }

        // Warm scratch: repeating the largest join must not grow the buffers.
        let warm = scratch.memory_bytes();
        assert!(warm > 0);
        let _ = grid_join_pairs(&mut scratch, &grid1, &a1, &b1);
        assert_eq!(scratch.memory_bytes(), warm, "warm reuse must not allocate");
    }

    #[test]
    fn early_termination_stops_the_probe_and_leaves_the_scratch_reusable() {
        let a = boxes(&[(0.0, 0.0, 0.0, 1.0); 5]);
        let b = boxes(&[(0.0, 0.0, 0.0, 1.0); 7]);
        let grid = UniformGrid::new(Aabb::new(Point3::ORIGIN, Point3::splat(2.0)), 2);
        let mut scratch = LocalJoinScratch::new();
        let mut counters = Counters::new();
        let mut emitted = 0;
        scratch.grid_join(&grid, a.objects(), b.objects(), &mut counters, &mut |_, _| {
            emitted += 1;
            emitted < 3
        });
        assert_eq!(emitted, 3);
        assert!(counters.comparisons < 35, "the probe must stop with the emitter");
        // The next join starts from a clean directory even after an early stop.
        let (pairs, _) = grid_join_pairs(&mut scratch, &grid, &a, &b);
        assert_eq!(pairs.len(), 35);
    }

    #[test]
    fn pool_grows_on_demand_and_recycles_the_work_list() {
        let mut pool = ScratchPool::new();
        assert_eq!(pool.workers(), 0);
        pool.primary();
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.worker_scratches(4).len(), 4);
        assert_eq!(pool.workers(), 4);
        // Narrower views don't shrink the pool.
        assert_eq!(pool.worker_scratches(2).len(), 2);
        assert_eq!(pool.workers(), 4);

        let mut work = pool.take_work();
        work.extend([3usize, 1, 2]);
        let ptr = work.as_ptr();
        pool.restore_work(work);
        let again = pool.take_work();
        assert!(again.capacity() >= 3, "work list capacity must be retained");
        assert_eq!(again.as_ptr(), ptr, "work list buffer must be the same allocation");
        pool.restore_work(again);
        assert!(pool.memory_bytes() > 0);
    }
}

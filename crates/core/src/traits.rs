//! The spatial-join algorithm interface and the legacy convenience wrappers.
//!
//! [`SpatialJoinAlgorithm`] is the engine-side contract: report every intersecting
//! pair into a [`PairSink`] and fill in a [`RunReport`]. The user-side entrypoint
//! is the [`crate::JoinQuery`] builder, which owns predicate translation (ε
//! extension), report labelling and sink lifecycle; the free functions here
//! ([`distance_join`], [`collect_join`], [`count_join`]) are thin wrappers over it
//! kept for existing call sites — see `MIGRATION.md` at the workspace root.

use crate::control::{catch_phase, ExecControl, JoinError};
use crate::plan::JoinPlan;
use crate::{CollectingSink, CountingSink, JoinQuery, PairSink, Predicate, SelfPairSink};
use touch_geom::{Dataset, ObjectId};
use touch_metrics::{Phase, RunReport, TraceSink};

/// A two-way spatial intersection join over MBR datasets.
///
/// Implemented by [`crate::TouchJoin`], the parallel and streaming engines, and by
/// every baseline in `touch-baselines` (nested loop, plane-sweep, PBSM, S3, indexed
/// nested loop, synchronous R-tree traversal, octree, seeded tree). An
/// implementation must report **every** pair `(a, b)` with
/// `a.mbr.intersects(b.mbr)` **exactly once** into the sink — the paper's
/// completeness, soundness and no-duplication guarantees (Theorem 1, Lemma 3) —
/// and fill in the [`RunReport`] counters it is responsible for. The only
/// exception to completeness is an early-terminating sink: once
/// [`PairSink::is_done`] is observed the engine may stop enumerating.
///
/// The trait is object-safe: engines are driven as `&dyn SpatialJoinAlgorithm`
/// with a `&mut dyn PairSink`, which is how [`crate::JoinQuery`] dispatches over
/// heterogeneous engines.
pub trait SpatialJoinAlgorithm {
    /// Human-readable name used in reports and figures (e.g. `"TOUCH"`, `"PBSM-500"`).
    fn name(&self) -> String;

    /// The [`JoinPlan`] this engine would execute for `a` and `b`, if it is a
    /// planned engine: the TOUCH engines return the faithful translation of
    /// their configuration (or the pinned plan they were built from), the auto
    /// engines return the planner's output. Baselines — which have no TOUCH
    /// plan — return `None` (the default).
    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        let _ = (a, b);
        None
    }

    /// Joins datasets `a` and `b`, pushing every intersecting pair `(id_a, id_b)`
    /// into `sink` exactly once, and records phase times, counters and memory into
    /// `report`.
    ///
    /// The caller creates `report` (via [`RunReport::new`]) and owns its identity
    /// fields — label, dataset sizes and `epsilon`, which the query layer sets
    /// **before** the join runs so partial records emitted mid-run already carry
    /// it. The engine must only *add* its measurements, never reset the report.
    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport);

    /// Traced form of [`SpatialJoinAlgorithm::join_into`]: identical join, but
    /// the engine additionally reports execution spans (per-node local joins,
    /// assignment chunks, steals, epochs) to `trace`.
    ///
    /// The contract is strict: **tracing must not influence the join** — pairs
    /// and counters are bit-identical whether `trace` is a recording sink, a
    /// disabled sink or this default. The default ignores `trace` entirely
    /// (correct for baselines, which have no instrumented spans); the TOUCH
    /// engines override it.
    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        let _ = trace;
        self.join_into(a, b, sink, report);
    }

    /// Fallible, cancellable form of [`SpatialJoinAlgorithm::join_into`] — the
    /// engine-side half of [`JoinQuery::try_run`](crate::JoinQuery::try_run).
    ///
    /// Contract:
    ///
    /// * `ctl.cancel` is polled cooperatively (between phases and at chunk /
    ///   node granularity in the engines that override this); a tripped token
    ///   stops the run in an orderly way and returns `Ok(())` with the
    ///   **partial** report's [`completion`](RunReport::completion) stamped
    ///   [`Cancelled`](touch_metrics::Completion::Cancelled) or
    ///   [`DeadlineExceeded`](touch_metrics::Completion::DeadlineExceeded) —
    ///   cancellation of a report-producing run is not an error,
    /// * a panic inside the engine is contained and surfaces as
    ///   `Err(`[`JoinError::WorkerPanicked`]`)` with the phase and worker
    ///   attributed,
    /// * with a never-triggering token and no panic the run is **bit-identical**
    ///   (pairs and counters) to [`SpatialJoinAlgorithm::join_traced`].
    ///
    /// The default covers engines without internal cancel points: it checks the
    /// token once up front, then runs the whole traced join inside one
    /// [`catch_phase`] attributed to [`Phase::Join`] / worker 0. Engines with
    /// chunked inner loops (the TOUCH engines) override it to honour the token
    /// mid-run.
    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(());
        }
        catch_phase(Phase::Join, 0, || self.join_traced(a, b, sink, report, ctl.trace))
    }

    /// Convenience form of [`SpatialJoinAlgorithm::join_into`]: creates the report,
    /// runs the join and returns the completed record.
    fn join(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink) -> RunReport {
        let mut report = RunReport::new(self.name(), a.len(), b.len());
        self.join_into(a, b, sink, &mut report);
        report
    }

    /// The [`JoinPlan`] this engine would execute for a **self-join** of `a`, if
    /// it is a planned engine. The default plans the self-join as `a ⋈ a`;
    /// planner-backed engines override it to cost one dataset's statistics once
    /// and halve the pair estimate.
    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        self.plan_for(a, a)
    }

    /// Self-join of one dataset: pushes every **unordered** pair `(x, y)` with
    /// `x < y` whose members intersect into `sink` exactly once — identity pairs
    /// are skipped, and of each mirrored duplicate only the index-ordered
    /// orientation survives.
    ///
    /// The two dataset arguments exist so the query layer can apply the ε
    /// extension to one side: `a` is the (possibly extended) probe-side view and
    /// `base` the original dataset, with identical, aligned object ids. For a
    /// plain intersection self-join pass the same dataset twice. Extension of
    /// one side is sufficient for a distance self-join because per-axis AABB
    /// extension is symmetric: `ext(x) ∩ y ⟺ ext(y) ∩ x`.
    ///
    /// The default wraps `sink` in a [`SelfPairSink`] and runs the ordinary
    /// [`SpatialJoinAlgorithm::join_into`] of `a ⋈ base` — correct for every
    /// engine, at the cost of enumerating both orientations. The TOUCH engines
    /// override it with an in-kernel index-order filter so the comparison work
    /// and shared pair budgets are spent on post-filter pairs only.
    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        let mut filter = SelfPairSink::new(sink);
        self.join_into(a, base, &mut filter, report);
        report.counters.results = filter.delivered();
    }

    /// Traced form of [`SpatialJoinAlgorithm::join_self_into`]; the same
    /// tracing contract as [`SpatialJoinAlgorithm::join_traced`] applies.
    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        let mut filter = SelfPairSink::new(sink);
        self.join_traced(a, base, &mut filter, report, trace);
        report.counters.results = filter.delivered();
    }

    /// Fallible, cancellable form of [`SpatialJoinAlgorithm::join_self_into`];
    /// the same contract as [`SpatialJoinAlgorithm::try_join_into`] applies.
    ///
    /// The default wraps `sink` in a [`SelfPairSink`] around the fallible
    /// two-way join, and re-derives the post-filter results counter on **every**
    /// orderly exit (complete, cancelled or deadline-exceeded) so partial
    /// reports stay consistent with what the sink observed.
    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        let mut filter = SelfPairSink::new(sink);
        let res = self.try_join_into(a, base, &mut filter, report, ctl);
        if res.is_ok() {
            report.counters.results = filter.delivered();
        }
        res
    }

    /// Convenience form of [`SpatialJoinAlgorithm::join_self_into`]: creates the
    /// report, runs the self-join of `a` and returns the completed record.
    fn join_self(&self, a: &Dataset, sink: &mut dyn PairSink) -> RunReport {
        let mut report = RunReport::new(self.name(), a.len(), a.len());
        self.join_self_into(a, a, sink, &mut report);
        report
    }
}

impl<T: SpatialJoinAlgorithm + ?Sized> SpatialJoinAlgorithm for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        (**self).plan_for(a, b)
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        (**self).join_into(a, b, sink, report)
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        (**self).join_traced(a, b, sink, report, trace)
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        (**self).plan_self_for(a)
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        (**self).join_self_into(a, base, sink, report)
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        (**self).join_self_traced(a, base, sink, report, trace)
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        (**self).try_join_into(a, b, sink, report, ctl)
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        (**self).try_join_self_into(a, base, sink, report, ctl)
    }
}

impl<T: SpatialJoinAlgorithm + ?Sized> SpatialJoinAlgorithm for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        (**self).plan_for(a, b)
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        (**self).join_into(a, b, sink, report)
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        (**self).join_traced(a, b, sink, report, trace)
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        (**self).plan_self_for(a)
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        (**self).join_self_into(a, base, sink, report)
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        (**self).join_self_traced(a, base, sink, report, trace)
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        (**self).try_join_into(a, b, sink, report, ctl)
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        (**self).try_join_self_into(a, base, sink, report, ctl)
    }
}

/// Runs `algo` as a **distance join** with threshold `eps`.
///
/// Equivalent to `JoinQuery::new(a, b).predicate(Predicate::WithinDistance(eps))
/// .engine(algo).run(sink)`: following Section 4 of the paper, the distance join
/// is translated into an intersection join by enlarging every MBR of dataset A by
/// `eps` and testing the enlarged boxes against dataset B. The returned report
/// carries `eps` so the experiment harness can label its rows.
pub fn distance_join(
    algo: &dyn SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
    eps: f64,
    sink: &mut dyn PairSink,
) -> RunReport {
    JoinQuery::new(a, b).predicate(Predicate::WithinDistance(eps)).engine(algo).run(sink)
}

/// Convenience wrapper: runs an intersection join and returns the materialised,
/// lexicographically sorted result pairs together with the report.
pub fn collect_join(
    algo: &dyn SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
) -> (Vec<(ObjectId, ObjectId)>, RunReport) {
    let mut sink = CollectingSink::new();
    let report = JoinQuery::new(a, b).engine(algo).run(&mut sink);
    (sink.sorted_pairs(), report)
}

/// Convenience wrapper: runs an intersection join in counting mode and returns the
/// report only.
pub fn count_join(algo: &dyn SpatialJoinAlgorithm, a: &Dataset, b: &Dataset) -> RunReport {
    JoinQuery::new(a, b).engine(algo).run(&mut CountingSink::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Point3};

    /// A deliberately naive reference implementation used to test the wrappers.
    struct BruteForce;

    impl SpatialJoinAlgorithm for BruteForce {
        fn name(&self) -> String {
            "BruteForce".into()
        }

        fn join_into(
            &self,
            a: &Dataset,
            b: &Dataset,
            sink: &mut dyn PairSink,
            report: &mut RunReport,
        ) {
            'scan: for oa in a.iter() {
                for ob in b.iter() {
                    report.counters.record_comparison();
                    if oa.mbr.intersects(&ob.mbr) {
                        if sink.is_done() {
                            break 'scan;
                        }
                        report.counters.record_result();
                        sink.push(oa.id, ob.id);
                    }
                }
            }
        }
    }

    fn boxes(offsets: &[f64]) -> Dataset {
        Dataset::from_mbrs(offsets.iter().map(|&x| {
            let min = Point3::new(x, 0.0, 0.0);
            Aabb::new(min, min + Point3::splat(1.0))
        }))
    }

    #[test]
    fn distance_join_extends_only_a() {
        let a = boxes(&[0.0]);
        let b = boxes(&[3.0]);
        // Gap of 2 between the boxes.
        let algo = BruteForce;
        let mut sink = CountingSink::new();
        let miss = distance_join(&algo, &a, &b, 1.0, &mut sink);
        assert_eq!(miss.result_pairs(), 0);
        assert_eq!(miss.epsilon, 1.0);
        let mut sink = CountingSink::new();
        let hit = distance_join(&algo, &a, &b, 2.0, &mut sink);
        assert_eq!(hit.result_pairs(), 1);
        assert_eq!(hit.epsilon, 2.0);
    }

    #[test]
    fn collect_and_count_wrappers_agree() {
        let a = boxes(&[0.0, 2.0, 4.0]);
        let b = boxes(&[0.5, 10.0]);
        let algo = BruteForce;
        let (pairs, report) = collect_join(&algo, &a, &b);
        let count_report = count_join(&algo, &a, &b);
        assert_eq!(pairs.len() as u64, report.result_pairs());
        assert_eq!(report.result_pairs(), count_report.result_pairs());
        assert_eq!(pairs, vec![(0, 0)]);
        assert_eq!(report.counters.comparisons, 6);
    }

    #[test]
    fn default_join_builds_a_labelled_report() {
        let a = boxes(&[0.0]);
        let b = boxes(&[0.5]);
        let mut sink = CollectingSink::new();
        let report = BruteForce.join(&a, &b, &mut sink);
        assert_eq!(report.algorithm, "BruteForce");
        assert_eq!((report.dataset_a, report.dataset_b), (1, 1));
        assert_eq!(sink.pairs(), &[(0, 0)]);
    }

    #[test]
    fn default_self_join_filters_identities_and_mirrors() {
        // Boxes 0 and 1 overlap; box 2 is far away. A⋈A enumerates 5 raw hits
        // ((0,0),(0,1),(1,0),(1,1),(2,2)); the self-join keeps exactly (0,1).
        let a = boxes(&[0.0, 0.5, 10.0]);
        let mut sink = CollectingSink::new();
        let report = BruteForce.join_self(&a, &mut sink);
        assert_eq!(sink.pairs(), &[(0, 1)]);
        assert_eq!(report.result_pairs(), 1, "results counter is post-filter");
        assert_eq!((report.dataset_a, report.dataset_b), (3, 3));
    }

    #[test]
    fn blanket_impls_delegate() {
        let algo = BruteForce;
        let by_ref: &dyn SpatialJoinAlgorithm = &&algo;
        assert_eq!(by_ref.name(), "BruteForce");
        let boxed: Box<dyn SpatialJoinAlgorithm> = Box::new(BruteForce);
        let a = boxes(&[0.0]);
        let b = boxes(&[0.5]);
        let (pairs, _) = collect_join(&boxed, &a, &b);
        assert_eq!(pairs, vec![(0, 0)]);
    }
}

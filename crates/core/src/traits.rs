//! The spatial-join algorithm interface and the distance-join translation.

use crate::ResultSink;
use touch_geom::{Dataset, ObjectId};
use touch_metrics::RunReport;

/// A two-way spatial intersection join over MBR datasets.
///
/// Implemented by [`crate::TouchJoin`] and by every baseline in `touch-baselines`
/// (nested loop, plane-sweep, PBSM, S3, indexed nested loop, synchronous R-tree
/// traversal). An implementation must report **every** pair `(a, b)` with
/// `a.mbr.intersects(b.mbr)` **exactly once** into the sink — the paper's
/// completeness, soundness and no-duplication guarantees (Theorem 1, Lemma 3) — and
/// fill in the [`RunReport`] counters it is responsible for.
pub trait SpatialJoinAlgorithm {
    /// Human-readable name used in reports and figures (e.g. `"TOUCH"`, `"PBSM-500"`).
    fn name(&self) -> String;

    /// Joins datasets `a` and `b`, pushing every intersecting pair `(id_a, id_b)`
    /// into `sink` exactly once and returning the measurement report.
    fn join(&self, a: &Dataset, b: &Dataset, sink: &mut ResultSink) -> RunReport;
}

/// Runs `algo` as a **distance join** with threshold `eps`.
///
/// Following Section 4 of the paper, the distance join is translated into an
/// intersection join by enlarging every MBR of dataset A by `eps` and testing the
/// enlarged boxes against dataset B. The returned report carries `eps` so the
/// experiment harness can label its rows.
pub fn distance_join(
    algo: &dyn SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
    eps: f64,
    sink: &mut ResultSink,
) -> RunReport {
    let extended = a.extended(eps);
    let mut report = algo.join(&extended, b, sink);
    report.epsilon = eps;
    report
}

/// Convenience wrapper: runs an intersection join and returns the materialised,
/// lexicographically sorted result pairs together with the report.
pub fn collect_join(
    algo: &dyn SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
) -> (Vec<(ObjectId, ObjectId)>, RunReport) {
    let mut sink = ResultSink::collecting();
    let report = algo.join(a, b, &mut sink);
    (sink.sorted_pairs(), report)
}

/// Convenience wrapper: runs an intersection join in counting mode and returns the
/// report only.
pub fn count_join(algo: &dyn SpatialJoinAlgorithm, a: &Dataset, b: &Dataset) -> RunReport {
    let mut sink = ResultSink::counting();
    algo.join(a, b, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Point3};

    /// A deliberately naive reference implementation used to test the wrappers.
    struct BruteForce;

    impl SpatialJoinAlgorithm for BruteForce {
        fn name(&self) -> String {
            "BruteForce".into()
        }

        fn join(&self, a: &Dataset, b: &Dataset, sink: &mut ResultSink) -> RunReport {
            let mut report = RunReport::new(self.name(), a.len(), b.len());
            for oa in a.iter() {
                for ob in b.iter() {
                    report.counters.record_comparison();
                    if oa.mbr.intersects(&ob.mbr) {
                        report.counters.record_result();
                        sink.push(oa.id, ob.id);
                    }
                }
            }
            report
        }
    }

    fn boxes(offsets: &[f64]) -> Dataset {
        Dataset::from_mbrs(offsets.iter().map(|&x| {
            let min = Point3::new(x, 0.0, 0.0);
            Aabb::new(min, min + Point3::splat(1.0))
        }))
    }

    #[test]
    fn distance_join_extends_only_a() {
        let a = boxes(&[0.0]);
        let b = boxes(&[3.0]);
        // Gap of 2 between the boxes.
        let algo = BruteForce;
        let mut sink = ResultSink::counting();
        let miss = distance_join(&algo, &a, &b, 1.0, &mut sink);
        assert_eq!(miss.result_pairs(), 0);
        assert_eq!(miss.epsilon, 1.0);
        let mut sink = ResultSink::counting();
        let hit = distance_join(&algo, &a, &b, 2.0, &mut sink);
        assert_eq!(hit.result_pairs(), 1);
        assert_eq!(hit.epsilon, 2.0);
    }

    #[test]
    fn collect_and_count_wrappers_agree() {
        let a = boxes(&[0.0, 2.0, 4.0]);
        let b = boxes(&[0.5, 10.0]);
        let algo = BruteForce;
        let (pairs, report) = collect_join(&algo, &a, &b);
        let count_report = count_join(&algo, &a, &b);
        assert_eq!(pairs.len() as u64, report.result_pairs());
        assert_eq!(report.result_pairs(), count_report.result_pairs());
        assert_eq!(pairs, vec![(0, 0)]);
        assert_eq!(report.counters.comparisons, 6);
    }
}

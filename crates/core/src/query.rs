//! The unified query layer: [`JoinQuery`], [`Predicate`] and [`IntoEngine`].
//!
//! Every join in the workspace — TOUCH itself, the parallel and streaming
//! engines, and all eight baselines — runs through the same builder:
//!
//! ```
//! use touch_core::{CollectingSink, JoinQuery, Predicate, TouchConfig};
//! use touch_geom::{Aabb, Dataset, Point3};
//!
//! let a = Dataset::from_mbrs((0..50).map(|i| {
//!     let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//! let b = Dataset::from_mbrs((0..50).map(|i| {
//!     let min = Point3::new(i as f64 * 3.0 + 1.5, 0.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//!
//! let mut sink = CollectingSink::new();
//! let report = JoinQuery::new(&a, &b)
//!     .predicate(Predicate::WithinDistance(1.0))
//!     .engine(TouchConfig::default())
//!     .run(&mut sink);
//! assert_eq!(report.result_pairs() as usize, sink.pairs().len());
//! assert_eq!(report.epsilon, 1.0);
//! ```
//!
//! The query layer owns everything that used to be scattered across wrappers and
//! engines: the ε-translation of distance joins (including the scratch buffer that
//! replaces the old per-call clone of dataset A), the A/B orientation contract,
//! report identity (label, sizes, `epsilon` — set *before* the engine runs) and
//! the sink lifecycle ([`crate::PairSink::finish`] after the join).

use crate::control::{CancelToken, ExecControl, JoinError};
use crate::plan::{AutoJoin, JoinPlan};
use crate::{PairSink, SpatialJoinAlgorithm, TouchConfig, TouchJoin};
use touch_geom::{Dataset, ValidationPolicy};
use touch_metrics::{NoTrace, RunReport, TraceSink};

/// The disabled trace sink a query without `.trace(…)` runs against.
static NO_TRACE: NoTrace = NoTrace;

/// The join predicate of a [`JoinQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Predicate {
    /// Report pairs whose MBRs intersect (the default).
    #[default]
    Intersects,
    /// Report pairs whose MBRs are within distance ε of each other, translated
    /// into an intersection join by extending dataset A's MBRs by ε (Section 4 of
    /// the paper).
    WithinDistance(f64),
}

impl Predicate {
    /// The ε this predicate contributes to [`RunReport::epsilon`] (0 for a plain
    /// intersection join).
    #[inline]
    pub fn epsilon(&self) -> f64 {
        match *self {
            Predicate::Intersects => 0.0,
            Predicate::WithinDistance(eps) => eps,
        }
    }
}

/// Conversion into the boxed engine a [`JoinQuery`] runs on.
///
/// Implemented blanket-wise for everything that implements
/// [`SpatialJoinAlgorithm`] — owned engines (`TouchJoin`, a baseline struct),
/// borrowed ones (`&algo`, `&dyn SpatialJoinAlgorithm`) and boxed ones — plus
/// plain [`TouchConfig`] as shorthand for a [`TouchJoin`] with that
/// configuration. Downstream crates implement it for their own selectors (the
/// `touch` facade's `Engine` enum).
pub trait IntoEngine<'a> {
    /// Boxes `self` as the engine the query will run.
    fn into_engine(self) -> Box<dyn SpatialJoinAlgorithm + 'a>;
}

impl<'a, T: SpatialJoinAlgorithm + 'a> IntoEngine<'a> for T {
    fn into_engine(self) -> Box<dyn SpatialJoinAlgorithm + 'a> {
        Box::new(self)
    }
}

impl<'a> IntoEngine<'a> for TouchConfig {
    fn into_engine(self) -> Box<dyn SpatialJoinAlgorithm + 'a> {
        Box::new(TouchJoin::new(self))
    }
}

/// A configured spatial join over two datasets: the single entrypoint shared by
/// every engine and every result consumer.
///
/// Build with [`JoinQuery::new`], refine with the builder methods, execute with
/// [`JoinQuery::run`] against any [`PairSink`]. A query can be run multiple times
/// (e.g. against different sinks); distance queries reuse an internal scratch
/// buffer for the ε-extended dataset A across runs instead of cloning A per call.
pub struct JoinQuery<'a> {
    a: &'a Dataset,
    b: &'a Dataset,
    predicate: Predicate,
    engine: Box<dyn SpatialJoinAlgorithm + 'a>,
    /// Reused ε-extension buffer: the query layer's replacement for the old
    /// `Dataset::extended` clone inside `distance_join`.
    scratch: Option<Dataset>,
    /// Trace sink the run reports execution spans to (`None` = untraced).
    trace: Option<&'a dyn TraceSink>,
    /// Cancel token [`JoinQuery::try_run`] polls (`None` = never cancelled).
    cancel: Option<&'a CancelToken>,
    /// How [`JoinQuery::try_run`] treats invalid geometry (non-finite or
    /// inverted MBRs) in its inputs.
    validation: ValidationPolicy,
    /// Reused buffers for [`ValidationPolicy::SkipInvalid`]: the compacted
    /// (A, B) datasets, allocated on first use like the ε `scratch`.
    valid_scratch: Option<(Dataset, Dataset)>,
    /// `true` for a [`JoinQuery::self_join`]: dispatch through the engine's
    /// self-join entry points (identity pairs skipped, each unordered pair once).
    self_mode: bool,
}

impl std::fmt::Debug for JoinQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinQuery")
            .field("a_len", &self.a.len())
            .field("b_len", &self.b.len())
            .field("predicate", &self.predicate)
            .field("engine", &self.engine.name())
            .finish()
    }
}

impl<'a> JoinQuery<'a> {
    /// A query joining datasets `a` and `b` with the default predicate
    /// ([`Predicate::Intersects`]) and the default engine: **automatic
    /// planning** ([`AutoJoin`]) — dataset statistics are collected when the
    /// query runs and every TOUCH knob (partitioning, fanout, grid sizing, the
    /// all-pairs cutoff) is derived from them by the
    /// [`JoinPlanner`](crate::JoinPlanner).
    ///
    /// `touch-core`'s auto engine executes its plans sequentially; the facade
    /// crate's `Engine::Auto` additionally dispatches to the parallel and
    /// streaming engines when the plan calls for them. Pass an explicit engine
    /// with [`JoinQuery::engine`] to bypass planning entirely.
    pub fn new(a: &'a Dataset, b: &'a Dataset) -> Self {
        JoinQuery {
            a,
            b,
            predicate: Predicate::Intersects,
            engine: Box::new(AutoJoin::new()),
            scratch: None,
            trace: None,
            cancel: None,
            validation: ValidationPolicy::default(),
            valid_scratch: None,
            self_mode: false,
        }
    }

    /// A **self-join** query over one dataset: reports every unordered pair
    /// `(x, y)` with `x < y` whose members satisfy the predicate, exactly once —
    /// identity pairs are never reported. This is the collision/sensor-detection
    /// form (`A ⋈ A`): `JoinQuery::new(&a, &a)` would instead report identities
    /// and both orientations of every pair.
    ///
    /// All builder methods apply as usual; a distance predicate extends one side
    /// into the query's scratch buffer exactly like a two-dataset query (per-axis
    /// AABB extension is symmetric, so one extended side finds every pair).
    pub fn self_join(a: &'a Dataset) -> Self {
        JoinQuery { self_mode: true, ..JoinQuery::new(a, a) }
    }

    /// Sets the join predicate.
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Shorthand for `.predicate(Predicate::WithinDistance(eps))`.
    pub fn within_distance(self, eps: f64) -> Self {
        self.predicate(Predicate::WithinDistance(eps))
    }

    /// Sets the engine executing the join: a [`TouchConfig`], any
    /// [`SpatialJoinAlgorithm`] (owned, borrowed or boxed), or a facade-level
    /// selector such as the `touch` crate's `Engine` enum.
    pub fn engine(mut self, engine: impl IntoEngine<'a>) -> Self {
        self.engine = engine.into_engine();
        self
    }

    /// Attaches an execution-trace sink: the engine reports spans (per-node
    /// local joins, assignment chunks, steals, epochs) to it while running, and
    /// the returned report carries the sink's [`TraceSummary`] (node-time and
    /// candidate-count percentiles, worker utilization) in [`RunReport::trace`].
    ///
    /// Tracing is observational only: pairs and counters are bit-identical with
    /// and without a trace attached (locked down by the trace-equivalence
    /// suite). Pass a [`touch_metrics::ExecTrace`] to record; a query without
    /// `.trace(…)` runs every hook against [`touch_metrics::NoTrace`], which
    /// costs one predictable branch per hook.
    ///
    /// [`TraceSummary`]: touch_metrics::TraceSummary
    pub fn trace(mut self, trace: &'a dyn TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a [`CancelToken`] the run polls cooperatively (between phases
    /// and at chunk/node granularity inside the TOUCH engines).
    ///
    /// Only [`JoinQuery::try_run`] honours it: a token tripped by
    /// [`CancelToken::cancel`] or by its deadline
    /// ([`CancelToken::with_deadline`]) stops the run in an orderly way and
    /// yields `Ok` with a **partial** report whose
    /// [`completion`](RunReport::completion) says how the run ended. An
    /// untriggered token changes nothing: pairs and counters are bit-identical
    /// to an un-cancellable run (locked down by the cancellation-equivalence
    /// suite and the perfsmoke counter gate).
    pub fn cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Sets how [`JoinQuery::try_run`] treats invalid geometry — objects whose
    /// MBR has a non-finite coordinate or an inverted extent (`min > max`).
    ///
    /// [`ValidationPolicy::Reject`] (the default) fails the run with
    /// [`JoinError::InvalidInput`] naming the first offender;
    /// [`ValidationPolicy::SkipInvalid`] compacts the inputs into internal
    /// scratch datasets (invalid objects dropped, survivors **re-identified
    /// densely** in order) and records the drop count in
    /// [`RunReport::invalid_skipped`]. The policy applies to [`JoinQuery::run`]
    /// too (it is a thin wrapper over `try_run`), where a rejection panics.
    pub fn validation(mut self, policy: ValidationPolicy) -> Self {
        self.validation = policy;
        self
    }

    /// The configured predicate.
    pub fn predicate_ref(&self) -> &Predicate {
        &self.predicate
    }

    /// The [`JoinPlan`] the configured engine would execute for this query, or
    /// `None` for engines without a TOUCH plan (the baselines).
    ///
    /// For a distance query the plan is computed over the ε-extended dataset A —
    /// exactly what the engine will see — reusing the query's extension scratch.
    /// The plan is recomputed per call (planning is a cheap linear pass); note
    /// that an auto engine may still refine the *strategy* at run time from
    /// sink hints ([`PairSink::pair_limit`]) the query cannot know here.
    pub fn plan(&mut self) -> Option<JoinPlan> {
        let eps = self.predicate.epsilon();
        let a_run: &Dataset = if eps > 0.0 {
            let scratch = self.scratch.get_or_insert_with(Dataset::new);
            self.a.extend_into(eps, scratch);
            scratch
        } else {
            self.a
        };
        if self.self_mode {
            self.engine.plan_self_for(a_run)
        } else {
            self.engine.plan_for(a_run, self.b)
        }
    }

    /// The name of the configured engine (the label runs will carry).
    pub fn engine_name(&self) -> String {
        self.engine.name()
    }

    /// Executes the query, pushing every result pair into `sink` and returning
    /// the measurement report.
    ///
    /// Responsibilities handled here, identically for every engine:
    ///
    /// * **ε-translation** — for [`Predicate::WithinDistance`], dataset A's MBRs
    ///   are extended by ε into a scratch buffer that is reused across runs of
    ///   this query (no per-call clone of A), and the intersection join runs over
    ///   the extended boxes.
    /// * **Report identity** — the report is created with the engine's label and
    ///   the *original* dataset sizes, and [`RunReport::epsilon`] is set **before**
    ///   the engine runs, so partial records the engine emits mid-run (cumulative
    ///   streaming reports, progress rows) already carry it.
    /// * **Orientation** — pairs always arrive as `(id_in_A, id_in_B)`, no matter
    ///   which side the engine indexed.
    /// * **Sink lifecycle** — [`PairSink::finish`] is invoked exactly once after
    ///   the engine returns (also after an early termination).
    pub fn run(&mut self, sink: &mut dyn PairSink) -> RunReport {
        let eps = self.predicate.epsilon();
        debug_assert!(eps >= 0.0, "distance-join ε must be non-negative, got {eps}");
        self.try_run(sink).unwrap_or_else(|e| panic!("join failed: {e}"))
    }

    /// Fallible form of [`JoinQuery::run`]: the identical join (`run` is this
    /// plus a panic on `Err`), with input validation, cooperative cancellation
    /// and panic containment.
    ///
    /// On top of `run`'s responsibilities (ε-translation, report identity,
    /// orientation, sink lifecycle) this entry point:
    ///
    /// * **validates the inputs** per [`JoinQuery::validation`] — a non-finite
    ///   or negative ε, or (under [`ValidationPolicy::Reject`]) an invalid MBR,
    ///   yields [`JoinError::InvalidInput`] before any phase runs; under
    ///   [`ValidationPolicy::SkipInvalid`] offenders are dropped and counted in
    ///   [`RunReport::invalid_skipped`],
    /// * **polls the attached [`CancelToken`]** ([`JoinQuery::cancel`]): a
    ///   tripped token ends the run in an orderly way with `Ok` and a partial
    ///   report stamped via [`RunReport::completion`] — cancellation is not an
    ///   error when there is a report to return,
    /// * **contains engine panics**, surfacing them as
    ///   [`JoinError::WorkerPanicked`] with the phase and worker attributed.
    ///
    /// [`PairSink::finish`] runs exactly once on every orderly exit (complete
    /// or cancelled); after `Err` the sink's contents are unspecified and
    /// `finish` is **not** invoked.
    pub fn try_run(&mut self, sink: &mut dyn PairSink) -> Result<RunReport, JoinError> {
        let eps = self.predicate.epsilon();
        if !eps.is_finite() || eps < 0.0 {
            return Err(JoinError::InvalidInput {
                detail: format!("distance-join ε must be finite and non-negative, got {eps}"),
            });
        }
        let mut report = RunReport::new(self.engine.name(), self.a.len(), self.b.len());
        report.epsilon = eps;

        // Validation resolves the (possibly compacted) base datasets first; the
        // ε extension then runs over the compacted A so dropped objects never
        // reach the engine.
        let same_input = std::ptr::eq(self.a, self.b);
        let (a_base, b_run): (&Dataset, &Dataset) = match self.validation {
            ValidationPolicy::Reject => {
                self.a
                    .validate()
                    .map_err(|e| JoinError::InvalidInput { detail: format!("dataset A: {e}") })?;
                if !same_input {
                    self.b.validate().map_err(|e| JoinError::InvalidInput {
                        detail: format!("dataset B: {e}"),
                    })?;
                }
                (self.a, self.b)
            }
            ValidationPolicy::SkipInvalid => {
                let (fa, fb) = self.valid_scratch.get_or_insert_with(Default::default);
                let mut skipped = self.a.retain_valid_into(fa);
                if same_input {
                    fb.clone_from(fa);
                } else {
                    skipped += self.b.retain_valid_into(fb);
                }
                report.invalid_skipped = skipped;
                report.dataset_a = fa.len();
                report.dataset_b = fb.len();
                (fa, fb)
            }
        };

        let a_run: &Dataset = if eps > 0.0 {
            let scratch = self.scratch.get_or_insert_with(Dataset::new);
            a_base.extend_into(eps, scratch);
            scratch
        } else {
            a_base
        };

        let ctl = ExecControl {
            cancel: self.cancel.unwrap_or_else(|| CancelToken::never()),
            trace: self.trace.unwrap_or(&NO_TRACE),
        };
        if self.self_mode {
            self.engine.try_join_self_into(a_run, b_run, sink, &mut report, ctl)?;
        } else {
            self.engine.try_join_into(a_run, b_run, sink, &mut report, ctl)?;
        }
        if let Some(trace) = self.trace {
            report.trace = trace.summary();
        }
        sink.finish();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CallbackSink, CollectingSink, CountingSink, FirstKSink};
    use touch_geom::{Aabb, Point3};

    fn row(n: usize, offset: f64) -> Dataset {
        Dataset::from_mbrs((0..n).map(|i| {
            let min = Point3::new(i as f64 * 3.0 + offset, 0.0, 0.0);
            Aabb::new(min, min + Point3::splat(1.0))
        }))
    }

    #[test]
    fn default_query_plans_automatically_with_intersects() {
        let a = row(10, 0.0);
        let b = row(10, 0.5);
        let mut sink = CollectingSink::new();
        let mut query = JoinQuery::new(&a, &b);
        assert_eq!(query.engine_name(), "TOUCH-AUTO");
        assert_eq!(*query.predicate_ref(), Predicate::Intersects);
        let plan = query.plan().expect("the auto engine always has a plan");
        assert!(plan.partitions >= 1);
        let report = query.run(&mut sink);
        assert_eq!(report.algorithm, "TOUCH-AUTO");
        assert_eq!(report.epsilon, 0.0);
        assert_eq!(report.result_pairs(), 10);
        assert_eq!(sink.count(), 10);
        let executed = report.plan.expect("auto runs record their plan");
        assert_eq!(executed.strategy, "sequential");
        assert_eq!(executed.partitions, plan.partitions);
    }

    #[test]
    fn explicit_engines_report_their_plan_too() {
        let a = row(12, 0.0);
        let b = row(12, 0.5);
        let mut query = JoinQuery::new(&a, &b).engine(TouchConfig::default());
        let plan = query.plan().expect("TouchJoin translates its config into a plan");
        assert_eq!(plan.partitions, TouchConfig::default().partitions);
        let report = query.run(&mut CountingSink::new());
        assert_eq!(report.plan.unwrap().partitions, TouchConfig::default().partitions);
    }

    #[test]
    fn distance_predicate_extends_a_on_the_fly() {
        let a = row(10, 0.0); // boxes at 3i..3i+1
        let b = row(10, 1.5); // gap of 0.5 to each neighbour
        let mut miss = CountingSink::new();
        let miss_report = JoinQuery::new(&a, &b).within_distance(0.2).run(&mut miss);
        assert_eq!(miss_report.result_pairs(), 0);
        assert_eq!(miss_report.epsilon, 0.2);

        let mut hit = CountingSink::new();
        let hit_report = JoinQuery::new(&a, &b).within_distance(0.6).run(&mut hit);
        assert!(hit_report.result_pairs() > 0);
        assert_eq!(hit_report.epsilon, 0.6);
        // The original dataset is untouched by the scratch extension.
        assert_eq!(a.get(0).mbr.max.x, 1.0);
    }

    #[test]
    fn rerunning_a_query_reuses_the_scratch_and_agrees() {
        let a = row(20, 0.0);
        let b = row(20, 1.2);
        let mut query = JoinQuery::new(&a, &b).within_distance(0.8);
        let mut first = CollectingSink::new();
        let r1 = query.run(&mut first);
        let mut second = CollectingSink::new();
        let r2 = query.run(&mut second);
        assert_eq!(first.sorted_pairs(), second.sorted_pairs());
        assert_eq!(r1.result_pairs(), r2.result_pairs());
    }

    #[test]
    fn engine_accepts_configs_and_references() {
        let a = row(8, 0.0);
        let b = row(8, 0.5);
        let mut via_cfg = CollectingSink::new();
        let _ = JoinQuery::new(&a, &b).engine(TouchConfig::default()).run(&mut via_cfg);
        let touch = TouchJoin::default();
        let mut via_ref = CollectingSink::new();
        let _ = JoinQuery::new(&a, &b).engine(&touch).run(&mut via_ref);
        let dynamic: &dyn SpatialJoinAlgorithm = &touch;
        let mut via_dyn = CollectingSink::new();
        let _ = JoinQuery::new(&a, &b).engine(dynamic).run(&mut via_dyn);
        assert_eq!(via_cfg.sorted_pairs(), via_ref.sorted_pairs());
        assert_eq!(via_cfg.sorted_pairs(), via_dyn.sorted_pairs());
    }

    #[test]
    fn callback_sink_streams_without_materialising() {
        let a = row(10, 0.0);
        let b = row(10, 0.5);
        let mut seen = 0u64;
        let mut sink = CallbackSink::new(|_, _| seen += 1);
        let report = JoinQuery::new(&a, &b).run(&mut sink);
        assert_eq!(sink.count(), report.result_pairs());
        assert_eq!(seen, report.result_pairs());
    }

    #[test]
    fn traced_query_attaches_a_summary_and_changes_nothing() {
        let a = row(32, 0.0);
        let b = row(32, 0.5);
        let mut plain_sink = CollectingSink::new();
        let plain = JoinQuery::new(&a, &b).engine(TouchConfig::default()).run(&mut plain_sink);

        let trace = touch_metrics::ExecTrace::new();
        let mut traced_sink = CollectingSink::new();
        let traced = JoinQuery::new(&a, &b)
            .engine(TouchConfig::default())
            .trace(&trace)
            .run(&mut traced_sink);

        assert_eq!(plain_sink.sorted_pairs(), traced_sink.sorted_pairs());
        assert_eq!(plain.counters, traced.counters, "tracing must not perturb counters");
        assert!(plain.trace.is_none());
        let summary = traced.trace.as_ref().expect("traced runs carry a summary");
        assert!(summary.node_time_us.count > 0, "per-node spans were recorded");
        assert_eq!(summary.pairs_per_node.sum, traced.result_pairs());
        assert!(!trace.is_empty());
    }

    #[test]
    fn self_join_skips_identities_and_mirrors() {
        // Boxes at 3i..3i+1: no two distinct boxes intersect, so a plain
        // intersection self-join is empty while new(&a, &a) reports identities.
        let a = row(10, 0.0);
        let mut self_sink = CollectingSink::new();
        let self_report = JoinQuery::self_join(&a).run(&mut self_sink);
        assert_eq!(self_report.result_pairs(), 0);
        let mut pair_sink = CollectingSink::new();
        let pair_report = JoinQuery::new(&a, &a).run(&mut pair_sink);
        assert_eq!(pair_report.result_pairs(), 10, "the two-dataset form keeps identities");

        // With ε = 2.5 each box reaches its neighbours (gap 2.0): 9 unordered pairs.
        let mut eps_sink = CollectingSink::new();
        let eps_report = JoinQuery::self_join(&a).within_distance(2.5).run(&mut eps_sink);
        assert_eq!(eps_report.result_pairs(), 9);
        assert!(eps_sink.sorted_pairs().iter().all(|&(x, y)| x < y));
        assert_eq!(eps_report.epsilon, 2.5);
        assert_eq!((eps_report.dataset_a, eps_report.dataset_b), (10, 10));
    }

    #[test]
    fn self_join_plans_through_the_self_planner() {
        let a = row(32, 0.0);
        let mut query = JoinQuery::self_join(&a);
        let plan = query.plan().expect("the auto engine plans self-joins");
        assert!(plan.build_on_a);
        assert_eq!(plan.estimated_work, 32, "half the naive a ⋈ a estimate");
    }

    #[test]
    fn first_k_terminates_the_default_engine_early() {
        let a = row(64, 0.0);
        let b = row(64, 0.5);
        let mut sink = FirstKSink::new(3);
        let report = JoinQuery::new(&a, &b).run(&mut sink);
        assert_eq!(sink.count(), 3);
        assert_eq!(report.result_pairs(), 3, "results counter reflects the early stop");
    }
}

//! Runtime-dispatched SIMD primitives for the join kernels: the batched MBR
//! overlap filter and a portable software-prefetch hint.
//!
//! The join phase of TOUCH is bounded by one operation: testing a probe MBR
//! against a run of candidate MBRs. [`overlap_window`] (contiguous candidates)
//! and [`overlap_run`] (gathered CSR candidate runs) perform that test for
//! [`LANES`] candidates per call with `core::arch` intrinsics — AVX2 or SSE2
//! on `x86_64`, NEON on `aarch64` — selected **at runtime** by feature
//! detection, with a scalar fallback everywhere else. Both are *zero-copy*:
//! candidate corners are vector-loaded straight out of the `repr(C)` [`Aabb`]s
//! against precomputed probe vectors, with no transpose into SoA form.
//! [`overlap_batch`] over an explicit [`BoxBatch`] is the equivalent SoA-form
//! API for callers that stage candidates themselves.
//!
//! ## The bit-identity contract
//!
//! The SIMD pass produces a *candidate bitmask*, never a decision. Every lane
//! the mask keeps is re-confirmed by the exact scalar [`Aabb::intersects`]
//! before a pair is emitted, and the mask itself is exact by construction: all
//! six comparisons are IEEE-754 `<=` on `f64`, which every backend (vector or
//! scalar) evaluates identically, including the all-false behaviour on NaN.
//! Padded lanes of a partial batch hold NaN boxes, so they can never set a
//! mask bit. Consequently pairs, emission order and every [`Counters`] field
//! are bit-identical across AVX2, SSE2, NEON and the scalar fallback — the
//! invariant `tests/simd_equivalence.rs` locks down.
//!
//! ## Forcing the fallback
//!
//! * `TOUCH_NO_SIMD=1` (any non-empty value other than `0`) in the environment
//!   disables the vector backends at startup;
//! * building `touch-core` with the `scalar-only` feature compiles them out
//!   entirely;
//! * [`force_backend`] overrides the dispatch at runtime (test harnesses use
//!   this to run every backend inside one process).
//!
//! [`Counters`]: touch_metrics::Counters
//! [`Aabb::intersects`]: touch_geom::Aabb::intersects

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use touch_geom::{Aabb, SpatialObject};

/// Candidate boxes tested per [`overlap_batch`] call. This is the *logical*
/// batch width on every backend — the scalar fallback processes the same
/// 4-lane batches, so batch-level counters are machine-independent.
pub const LANES: usize = 4;

/// The instruction set a batch runs on. Obtain the detected one with
/// [`backend`]; pass a specific one to [`overlap_batch`] to pin it (kernels
/// read [`backend`] once per call and pass it down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// 256-bit AVX2 path: all four lanes in one register per coordinate
    /// (`x86_64` only).
    Avx2,
    /// 128-bit SSE2 path: two lanes per register, two halves per batch
    /// (`x86_64` only; SSE2 is part of the baseline ISA).
    Sse2,
    /// 128-bit NEON path: two lanes per register (`aarch64` only; NEON is part
    /// of the baseline ISA).
    Neon,
    /// Scalar-unrolled fallback; also the only backend under the `scalar-only`
    /// feature or `TOUCH_NO_SIMD=1`.
    Scalar,
}

impl Backend {
    /// Every backend, preferred first. Useful for equivalence harnesses:
    /// filter with [`Backend::is_supported`] and run each.
    pub const ALL: [Backend; 4] = [Backend::Avx2, Backend::Sse2, Backend::Neon, Backend::Scalar];

    /// Stable lowercase name (documentation, traces, bench output).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Sse2 => "sse2",
            Backend::Neon => "neon",
            Backend::Scalar => "scalar",
        }
    }

    /// `true` if this backend can execute on the running machine (and was not
    /// compiled out by the `scalar-only` feature). [`Backend::Scalar`] is
    /// always supported.
    pub fn is_supported(self) -> bool {
        match self {
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
            Backend::Sse2 => true,
            #[cfg(all(target_arch = "aarch64", not(feature = "scalar-only")))]
            Backend::Neon => true,
            Backend::Scalar => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

/// The backend [`detect`]ion chose at startup, honouring `TOUCH_NO_SIMD`.
fn detected() -> Backend {
    static DETECTED: OnceLock<Backend> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let disabled = std::env::var("TOUCH_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0");
        if disabled {
            return Backend::Scalar;
        }
        [Backend::Avx2, Backend::Sse2, Backend::Neon]
            .into_iter()
            .find(|b| b.is_supported())
            .unwrap_or(Backend::Scalar)
    })
}

/// Runtime override slot: 0 = none, otherwise `backend as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The backend the kernels dispatch to: the [`force_backend`] override if one
/// is set, else the feature-detected best. One relaxed atomic load — kernels
/// call this once per invocation and thread the value through their batches.
pub fn backend() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        1 => Backend::Avx2,
        2 => Backend::Sse2,
        3 => Backend::Neon,
        4 => Backend::Scalar,
        _ => detected(),
    }
}

/// Overrides (or, with `None`, restores) the dispatched backend at runtime.
///
/// Returns `false` — leaving the dispatch unchanged — if the requested backend
/// is not [supported](Backend::is_supported) on this machine, so a forced
/// backend can never reach an illegal instruction. Intended for equivalence
/// tests and benchmarks that exercise every path in one process; the override
/// is global, so concurrent joins all see it.
pub fn force_backend(backend: Option<Backend>) -> bool {
    match backend {
        None => {
            FORCED.store(0, Ordering::Relaxed);
            true
        }
        Some(b) if b.is_supported() => {
            let code = match b {
                Backend::Avx2 => 1,
                Backend::Sse2 => 2,
                Backend::Neon => 3,
                Backend::Scalar => 4,
            };
            FORCED.store(code, Ordering::Relaxed);
            true
        }
        Some(_) => false,
    }
}

/// [`LANES`] candidate boxes in structure-of-arrays layout, ready for one
/// [`overlap_batch`] call. Unused lanes of a partial batch are padded with NaN,
/// which fails every `<=` on every backend — a padded lane cannot set a mask
/// bit, scalar fallback included.
#[derive(Debug, Clone)]
pub struct BoxBatch {
    min_x: [f64; LANES],
    min_y: [f64; LANES],
    min_z: [f64; LANES],
    max_x: [f64; LANES],
    max_y: [f64; LANES],
    max_z: [f64; LANES],
    len: usize,
}

impl Default for BoxBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl BoxBatch {
    /// An empty batch (all lanes padded).
    pub fn new() -> Self {
        BoxBatch {
            min_x: [f64::NAN; LANES],
            min_y: [f64::NAN; LANES],
            min_z: [f64::NAN; LANES],
            max_x: [f64::NAN; LANES],
            max_y: [f64::NAN; LANES],
            max_z: [f64::NAN; LANES],
            len: 0,
        }
    }

    /// Number of valid lanes (the rest are NaN padding).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no lane is valid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_lane(&mut self, lane: usize, mbr: &Aabb) {
        self.min_x[lane] = mbr.min.x;
        self.min_y[lane] = mbr.min.y;
        self.min_z[lane] = mbr.min.z;
        self.max_x[lane] = mbr.max.x;
        self.max_y[lane] = mbr.max.y;
        self.max_z[lane] = mbr.max.z;
    }

    #[inline]
    fn pad_from(&mut self, lane: usize) {
        for l in lane..LANES {
            self.min_x[l] = f64::NAN;
            self.min_y[l] = f64::NAN;
            self.min_z[l] = f64::NAN;
            self.max_x[l] = f64::NAN;
            self.max_y[l] = f64::NAN;
            self.max_z[l] = f64::NAN;
        }
    }

    /// Loads the batch from a run of contiguous objects (at most [`LANES`];
    /// the all-pairs and plane-sweep kernels feed AoS windows this way).
    #[inline]
    pub fn fill_from_objects(&mut self, objs: &[SpatialObject]) {
        debug_assert!(objs.len() <= LANES);
        for (lane, o) in objs.iter().enumerate() {
            self.set_lane(lane, &o.mbr);
        }
        self.pad_from(objs.len());
        self.len = objs.len();
    }

    /// Gathers the batch from an MBR array by candidate index (at most
    /// [`LANES`] indices; the grid probe feeds CSR candidate runs this way).
    #[inline]
    pub fn fill_gather(&mut self, mbrs: &[Aabb], indices: &[u32]) {
        debug_assert!(indices.len() <= LANES);
        for (lane, &at) in indices.iter().enumerate() {
            self.set_lane(lane, &mbrs[at as usize]);
        }
        self.pad_from(indices.len());
        self.len = indices.len();
    }
}

/// Tests one probe box against every lane of `batch` and returns the overlap
/// bitmask (bit `i` set ⇔ lane `i` overlaps). The mask is **exact** — the same
/// six `<=` comparisons as [`Aabb::intersects`](touch_geom::Aabb::intersects)
/// — but callers must still confirm survivors with the scalar test: the SIMD
/// pass filters candidates, it never decides a pair.
///
/// An unsupported `backend` (possible only by constructing one directly
/// instead of via [`backend`]/[`force_backend`]) falls back to the scalar
/// path rather than executing illegal instructions.
#[inline]
pub fn overlap_batch(backend: Backend, probe: &Aabb, batch: &BoxBatch) -> u8 {
    let mask = match backend {
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        Backend::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
            // SAFETY: AVX2 availability was just confirmed (cached detection).
            unsafe { overlap_mask_avx2(probe, batch) }
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        Backend::Sse2 => overlap_mask_sse2(probe, batch),
        #[cfg(all(target_arch = "aarch64", not(feature = "scalar-only")))]
        Backend::Neon => overlap_mask_neon(probe, batch),
        _ => overlap_mask_scalar(probe, batch),
    };
    mask & lane_mask(batch.len)
}

/// Bitmask with the low `len` bits set (valid lanes of a batch).
#[inline]
fn lane_mask(len: usize) -> u8 {
    debug_assert!(len <= LANES);
    ((1u16 << len) - 1) as u8
}

/// Zero-copy batch test over a contiguous window of objects (at most
/// [`LANES`]): bit `i` set ⇔ `window[i].mbr` overlaps `probe`. Same exact mask
/// as [`overlap_batch`], but the candidate corners are vector-loaded straight
/// out of the objects (`Aabb` is `repr(C)`: six consecutive `f64`s) instead of
/// being transposed through a [`BoxBatch`] — this is what the hot kernels call.
#[inline]
pub fn overlap_window(backend: Backend, probe: &Aabb, window: &[SpatialObject]) -> u8 {
    debug_assert!(window.len() <= LANES);
    match backend {
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        Backend::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
            // SAFETY: AVX2 availability was just confirmed (cached detection).
            unsafe { window_avx2(probe, window) }
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        Backend::Sse2 => mask_sse2(probe, window.iter().map(|o| &o.mbr)),
        #[cfg(all(target_arch = "aarch64", not(feature = "scalar-only")))]
        Backend::Neon => mask_neon(probe, window.iter().map(|o| &o.mbr)),
        _ => mask_scalar(probe, window.iter().map(|o| &o.mbr)),
    }
}

/// Zero-copy batch test over a gathered candidate run (at most [`LANES`]
/// indices into `mbrs`): bit `i` set ⇔ `mbrs[indices[i]]` overlaps `probe`.
/// Same exact mask as [`overlap_batch`] after a
/// [`fill_gather`](BoxBatch::fill_gather), without the transpose — this is
/// what the grid probe calls on its CSR runs.
#[inline]
pub fn overlap_run(backend: Backend, probe: &Aabb, mbrs: &[Aabb], indices: &[u32]) -> u8 {
    debug_assert!(indices.len() <= LANES);
    match backend {
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        Backend::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
            // SAFETY: AVX2 availability was just confirmed (cached detection).
            unsafe { run_avx2(probe, mbrs, indices) }
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        Backend::Sse2 => mask_sse2(probe, indices.iter().map(|&i| &mbrs[i as usize])),
        #[cfg(all(target_arch = "aarch64", not(feature = "scalar-only")))]
        Backend::Neon => mask_neon(probe, indices.iter().map(|&i| &mbrs[i as usize])),
        _ => mask_scalar(probe, indices.iter().map(|&i| &mbrs[i as usize])),
    }
}

/// Scalar reference for the zero-copy forms: the exact `Aabb::intersects`
/// predicate, one lane per candidate.
#[inline]
fn mask_scalar<'a>(probe: &Aabb, boxes: impl Iterator<Item = &'a Aabb>) -> u8 {
    let mut mask = 0u8;
    for (lane, b) in boxes.enumerate() {
        mask |= (probe.intersects(b) as u8) << lane;
    }
    mask
}

/// AVX2 zero-copy candidate test: two overlapping 256-bit loads cover all six
/// corners of a candidate (`[min.x, min.y, min.z, max.x]` and
/// `[min.z, max.x, max.y, max.z]`), compared against probe vectors padded with
/// `±inf` in the overlap lanes — `x <= +inf` and `-inf <= x` hold for every
/// finite (and infinite) coordinate and fail for NaN exactly like the scalar
/// predicate, so the mask stays exact. 2 loads + 2 ordered compares + 1 AND
/// per candidate, no stores.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[target_feature(enable = "avx2")]
unsafe fn window_avx2(probe: &Aabb, window: &[SpatialObject]) -> u8 {
    unsafe {
        let (p_hi, p_lo) = avx2_probe(probe);
        let mut mask = 0u8;
        for (lane, o) in window.iter().enumerate() {
            mask |= (avx2_one(p_hi, p_lo, &o.mbr) as u8) << lane;
        }
        mask
    }
}

/// Gathered-index AVX2 loop of [`window_avx2`]; same candidate test.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[target_feature(enable = "avx2")]
unsafe fn run_avx2(probe: &Aabb, mbrs: &[Aabb], indices: &[u32]) -> u8 {
    unsafe {
        let (p_hi, p_lo) = avx2_probe(probe);
        let mut mask = 0u8;
        for (lane, &at) in indices.iter().enumerate() {
            mask |= (avx2_one(p_hi, p_lo, &mbrs[at as usize]) as u8) << lane;
        }
        mask
    }
}

/// Probe vectors for [`avx2_one`]: upper corners (with `+inf` in the lane the
/// candidate's `max.x` lands in) and lower corners (with `-inf` opposite the
/// candidate's `min.z`).
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[target_feature(enable = "avx2")]
unsafe fn avx2_probe(probe: &Aabb) -> (core::arch::x86_64::__m256d, core::arch::x86_64::__m256d) {
    use core::arch::x86_64::*;
    (
        _mm256_set_pd(f64::INFINITY, probe.max.z, probe.max.y, probe.max.x),
        _mm256_set_pd(probe.min.z, probe.min.y, probe.min.x, f64::NEG_INFINITY),
    )
}

/// One candidate against the prepared probe vectors; see [`window_avx2`].
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn avx2_one(
    p_hi: core::arch::x86_64::__m256d,
    p_lo: core::arch::x86_64::__m256d,
    b: &Aabb,
) -> bool {
    use core::arch::x86_64::*;
    // SAFETY: `Aabb` is repr(C) — six consecutive f64 — so the 32-byte loads at
    // offsets 0 and 16 both stay inside the 48-byte struct.
    unsafe {
        let lo = _mm256_loadu_pd(&b.min.x as *const f64); // [min.x, min.y, min.z, max.x]
        let hi = _mm256_loadu_pd(&b.min.z as *const f64); // [min.z, max.x, max.y, max.z]
        let m = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LE_OQ>(lo, p_hi),
            _mm256_cmp_pd::<_CMP_LE_OQ>(p_lo, hi),
        );
        _mm256_movemask_pd(m) == 0xF
    }
}

/// SSE2 zero-copy candidate test: the x/y axes as one 128-bit compare pair,
/// the z axis scalar (`f64::le` everywhere — exact). SSE2 is baseline on
/// `x86_64`, so this is a safe function over an index/window iterator.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[inline]
fn mask_sse2<'a>(probe: &Aabb, boxes: impl Iterator<Item = &'a Aabb>) -> u8 {
    use core::arch::x86_64::*;
    // SAFETY: SSE2 is part of the x86_64 baseline ISA; the 16-byte loads read
    // the first two f64s of repr(C) corner pairs, inside the struct.
    unsafe {
        let p_min_xy = _mm_loadu_pd(&probe.min.x as *const f64);
        let p_max_xy = _mm_loadu_pd(&probe.max.x as *const f64);
        let mut mask = 0u8;
        for (lane, b) in boxes.enumerate() {
            let b_min_xy = _mm_loadu_pd(&b.min.x as *const f64);
            let b_max_xy = _mm_loadu_pd(&b.max.x as *const f64);
            let xy = _mm_and_pd(_mm_cmple_pd(p_min_xy, b_max_xy), _mm_cmple_pd(b_min_xy, p_max_xy));
            let hit =
                _mm_movemask_pd(xy) == 0x3 && probe.min.z <= b.max.z && b.min.z <= probe.max.z;
            mask |= (hit as u8) << lane;
        }
        mask
    }
}

/// NEON zero-copy candidate test: x/y as one 128-bit compare pair, z scalar.
/// NEON is baseline on `aarch64`, so this is a safe function.
#[cfg(all(target_arch = "aarch64", not(feature = "scalar-only")))]
#[inline]
fn mask_neon<'a>(probe: &Aabb, boxes: impl Iterator<Item = &'a Aabb>) -> u8 {
    use core::arch::aarch64::*;
    // SAFETY: NEON is part of the aarch64 baseline ISA; the 16-byte loads read
    // the first two f64s of repr(C) corner pairs, inside the struct.
    unsafe {
        let p_min_xy = vld1q_f64(&probe.min.x as *const f64);
        let p_max_xy = vld1q_f64(&probe.max.x as *const f64);
        let mut mask = 0u8;
        for (lane, b) in boxes.enumerate() {
            let b_min_xy = vld1q_f64(&b.min.x as *const f64);
            let b_max_xy = vld1q_f64(&b.max.x as *const f64);
            let m = vandq_u64(vcleq_f64(p_min_xy, b_max_xy), vcleq_f64(b_min_xy, p_max_xy));
            let hit = vgetq_lane_u64::<0>(m) & vgetq_lane_u64::<1>(m) != 0
                && probe.min.z <= b.max.z
                && b.min.z <= probe.max.z;
            mask |= (hit as u8) << lane;
        }
        mask
    }
}

/// Scalar-unrolled reference: the exact predicate of `Aabb::intersects`,
/// one lane at a time. NaN padding fails the first comparison.
#[inline]
fn overlap_mask_scalar(probe: &Aabb, batch: &BoxBatch) -> u8 {
    let mut mask = 0u8;
    for lane in 0..LANES {
        let hit = probe.min.x <= batch.max_x[lane]
            && batch.min_x[lane] <= probe.max.x
            && probe.min.y <= batch.max_y[lane]
            && batch.min_y[lane] <= probe.max.y
            && probe.min.z <= batch.max_z[lane]
            && batch.min_z[lane] <= probe.max.z;
        mask |= (hit as u8) << lane;
    }
    mask
}

/// AVX2: all four lanes per coordinate in one 256-bit register; six ordered
/// (`_CMP_LE_OQ`, false on NaN — the scalar `<=` semantics) comparisons ANDed
/// into one sign mask.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[target_feature(enable = "avx2")]
unsafe fn overlap_mask_avx2(probe: &Aabb, batch: &BoxBatch) -> u8 {
    use core::arch::x86_64::*;
    unsafe {
        let b_min_x = _mm256_loadu_pd(batch.min_x.as_ptr());
        let b_min_y = _mm256_loadu_pd(batch.min_y.as_ptr());
        let b_min_z = _mm256_loadu_pd(batch.min_z.as_ptr());
        let b_max_x = _mm256_loadu_pd(batch.max_x.as_ptr());
        let b_max_y = _mm256_loadu_pd(batch.max_y.as_ptr());
        let b_max_z = _mm256_loadu_pd(batch.max_z.as_ptr());
        let m = _mm256_and_pd(
            _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_set1_pd(probe.min.x), b_max_x),
                _mm256_cmp_pd::<_CMP_LE_OQ>(b_min_x, _mm256_set1_pd(probe.max.x)),
            ),
            _mm256_and_pd(
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_set1_pd(probe.min.y), b_max_y),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(b_min_y, _mm256_set1_pd(probe.max.y)),
                ),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_set1_pd(probe.min.z), b_max_z),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(b_min_z, _mm256_set1_pd(probe.max.z)),
                ),
            ),
        );
        _mm256_movemask_pd(m) as u8
    }
}

/// SSE2 (baseline on `x86_64`): the four lanes as two 128-bit halves.
/// `_mm_cmple_pd` is false on NaN, matching the scalar `<=`.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
#[inline]
fn overlap_mask_sse2(probe: &Aabb, batch: &BoxBatch) -> u8 {
    use core::arch::x86_64::*;
    // SAFETY: SSE2 is part of the x86_64 baseline ISA.
    unsafe {
        let mut mask = 0u8;
        for half in 0..2 {
            let at = half * 2;
            let b_min_x = _mm_loadu_pd(batch.min_x.as_ptr().add(at));
            let b_min_y = _mm_loadu_pd(batch.min_y.as_ptr().add(at));
            let b_min_z = _mm_loadu_pd(batch.min_z.as_ptr().add(at));
            let b_max_x = _mm_loadu_pd(batch.max_x.as_ptr().add(at));
            let b_max_y = _mm_loadu_pd(batch.max_y.as_ptr().add(at));
            let b_max_z = _mm_loadu_pd(batch.max_z.as_ptr().add(at));
            let m = _mm_and_pd(
                _mm_and_pd(
                    _mm_and_pd(
                        _mm_cmple_pd(_mm_set1_pd(probe.min.x), b_max_x),
                        _mm_cmple_pd(b_min_x, _mm_set1_pd(probe.max.x)),
                    ),
                    _mm_and_pd(
                        _mm_cmple_pd(_mm_set1_pd(probe.min.y), b_max_y),
                        _mm_cmple_pd(b_min_y, _mm_set1_pd(probe.max.y)),
                    ),
                ),
                _mm_and_pd(
                    _mm_cmple_pd(_mm_set1_pd(probe.min.z), b_max_z),
                    _mm_cmple_pd(b_min_z, _mm_set1_pd(probe.max.z)),
                ),
            );
            mask |= (_mm_movemask_pd(m) as u8) << at;
        }
        mask
    }
}

/// NEON (baseline on `aarch64`): the four lanes as two 128-bit halves.
/// `vcleq_f64` is false on NaN, matching the scalar `<=`.
#[cfg(all(target_arch = "aarch64", not(feature = "scalar-only")))]
#[inline]
fn overlap_mask_neon(probe: &Aabb, batch: &BoxBatch) -> u8 {
    use core::arch::aarch64::*;
    // SAFETY: NEON is part of the aarch64 baseline ISA.
    unsafe {
        let mut mask = 0u8;
        for half in 0..2 {
            let at = half * 2;
            let b_min_x = vld1q_f64(batch.min_x.as_ptr().add(at));
            let b_min_y = vld1q_f64(batch.min_y.as_ptr().add(at));
            let b_min_z = vld1q_f64(batch.min_z.as_ptr().add(at));
            let b_max_x = vld1q_f64(batch.max_x.as_ptr().add(at));
            let b_max_y = vld1q_f64(batch.max_y.as_ptr().add(at));
            let b_max_z = vld1q_f64(batch.max_z.as_ptr().add(at));
            let m = vandq_u64(
                vandq_u64(
                    vandq_u64(
                        vcleq_f64(vdupq_n_f64(probe.min.x), b_max_x),
                        vcleq_f64(b_min_x, vdupq_n_f64(probe.max.x)),
                    ),
                    vandq_u64(
                        vcleq_f64(vdupq_n_f64(probe.min.y), b_max_y),
                        vcleq_f64(b_min_y, vdupq_n_f64(probe.max.y)),
                    ),
                ),
                vandq_u64(
                    vcleq_f64(vdupq_n_f64(probe.min.z), b_max_z),
                    vcleq_f64(b_min_z, vdupq_n_f64(probe.max.z)),
                ),
            );
            mask |= ((vgetq_lane_u64::<0>(m) & 1) as u8) << at;
            mask |= ((vgetq_lane_u64::<1>(m) & 1) as u8) << (at + 1);
        }
        mask
    }
}

/// Hints the hardware to pull the element at `data[index]` towards L1 ahead of
/// use (`_mm_prefetch(T0)` on `x86_64`; a no-op on targets without a portable
/// hint). Out-of-range indices are ignored — a prefetch must never fault, and
/// the hint can never change results: it touches no architectural state.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
    if index < data.len() {
        // SAFETY: the index is in bounds and prefetch has no architectural
        // effect; _mm_prefetch is available on every x86_64.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(index) as *const i8);
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
    {
        let _ = (data, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::Point3;

    fn aabb(min: (f64, f64, f64), max: (f64, f64, f64)) -> Aabb {
        Aabb::new(Point3::new(min.0, min.1, min.2), Point3::new(max.0, max.1, max.2))
    }

    fn obj(id: u32, min: (f64, f64, f64), max: (f64, f64, f64)) -> SpatialObject {
        SpatialObject { id, mbr: aabb(min, max) }
    }

    fn supported() -> Vec<Backend> {
        Backend::ALL.into_iter().filter(|b| b.is_supported()).collect()
    }

    #[test]
    fn every_supported_backend_matches_the_scalar_reference() {
        // A probe against lanes that hit/miss on each axis, touch on boundaries
        // and include a degenerate (point) box.
        let probe = aabb((0.0, 0.0, 0.0), (2.0, 2.0, 2.0));
        let candidates = [
            obj(0, (1.0, 1.0, 1.0), (3.0, 3.0, 3.0)),       // overlap
            obj(1, (2.0, 2.0, 2.0), (4.0, 4.0, 4.0)),       // boundary touch: inclusive
            obj(2, (2.1, 0.0, 0.0), (3.0, 1.0, 1.0)),       // x-separated
            obj(3, (0.5, 0.5, 0.5), (0.5, 0.5, 0.5)),       // degenerate point inside
            obj(4, (0.0, 3.0, 0.0), (1.0, 4.0, 1.0)),       // y-separated
            obj(5, (-5.0, -5.0, -5.0), (-4.0, -4.0, -4.0)), // fully outside
            obj(6, (0.0, 0.0, 2.0), (1.0, 1.0, 5.0)),       // z boundary touch
        ];
        let mut batch = BoxBatch::new();
        for window in candidates.chunks(LANES) {
            batch.fill_from_objects(window);
            let reference = overlap_mask_scalar(&probe, &batch) & lane_mask(window.len());
            // The scalar mask must itself agree with Aabb::intersects…
            for (lane, o) in window.iter().enumerate() {
                assert_eq!(
                    reference >> lane & 1 == 1,
                    probe.intersects(&o.mbr),
                    "scalar mask disagrees with intersects for candidate {}",
                    o.id
                );
            }
            // …and every supported backend must reproduce it bit-for-bit.
            for b in supported() {
                assert_eq!(
                    overlap_batch(b, &probe, &batch),
                    reference,
                    "backend {} diverged from scalar",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn nan_lanes_never_set_a_mask_bit() {
        let probe = aabb((0.0, 0.0, 0.0), (10.0, 10.0, 10.0));
        let mut batch = BoxBatch::new();
        // One valid overlapping lane; the other three are NaN padding.
        batch.fill_from_objects(&[obj(0, (1.0, 1.0, 1.0), (2.0, 2.0, 2.0))]);
        for b in supported() {
            assert_eq!(overlap_batch(b, &probe, &batch), 0b0001, "{}", b.name());
        }
        // A NaN-coordinate probe misses everything on every backend.
        let mut nan_probe = probe;
        nan_probe.min.x = f64::NAN;
        for b in supported() {
            assert_eq!(overlap_batch(b, &nan_probe, &batch), 0, "{}", b.name());
        }
    }

    #[test]
    fn gather_fill_equals_contiguous_fill() {
        let mbrs: Vec<Aabb> =
            (0..6).map(|i| aabb((i as f64, 0.0, 0.0), (i as f64 + 1.5, 1.0, 1.0))).collect();
        let objs: Vec<SpatialObject> =
            mbrs.iter().enumerate().map(|(i, &mbr)| SpatialObject { id: i as u32, mbr }).collect();
        let probe = aabb((2.0, 0.0, 0.0), (4.0, 1.0, 1.0));
        let mut gathered = BoxBatch::new();
        gathered.fill_gather(&mbrs, &[1, 3, 5]);
        let mut contiguous = BoxBatch::new();
        contiguous.fill_from_objects(&[objs[1], objs[3], objs[5]]);
        for b in supported() {
            assert_eq!(
                overlap_batch(b, &probe, &gathered),
                overlap_batch(b, &probe, &contiguous),
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn zero_copy_forms_match_the_batch_form_on_every_backend() {
        // Tricky corners: hits, axis-separated misses, boundary touches, a
        // degenerate box and a NaN-poisoned candidate (must never match).
        let probe = aabb((0.0, 0.0, 0.0), (2.0, 2.0, 2.0));
        let mut objs = vec![
            obj(0, (1.0, 1.0, 1.0), (3.0, 3.0, 3.0)),
            obj(1, (2.0, 2.0, 2.0), (4.0, 4.0, 4.0)),
            obj(2, (2.1, 0.0, 0.0), (3.0, 1.0, 1.0)),
            obj(3, (0.5, 0.5, 0.5), (0.5, 0.5, 0.5)),
            obj(4, (0.0, 3.0, 0.0), (1.0, 4.0, 1.0)),
            obj(5, (0.0, 0.0, 2.0), (1.0, 1.0, 5.0)),
            obj(6, (-1.0, -1.0, -1.0), (0.0, 0.0, 0.0)),
        ];
        objs.push(obj(7, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)));
        objs[7].mbr.max.y = f64::NAN;
        let mbrs: Vec<Aabb> = objs.iter().map(|o| o.mbr).collect();
        let mut batch = BoxBatch::new();
        for window in objs.chunks(LANES) {
            batch.fill_from_objects(window);
            let indices: Vec<u32> = window.iter().map(|o| o.id).collect();
            for b in supported() {
                let expect = overlap_batch(b, &probe, &batch);
                assert_eq!(overlap_window(b, &probe, window), expect, "window {}", b.name());
                assert_eq!(overlap_run(b, &probe, &mbrs, &indices), expect, "run {}", b.name());
            }
            // And against the ground truth predicate, lane by lane.
            for (lane, o) in window.iter().enumerate() {
                for b in supported() {
                    assert_eq!(
                        overlap_window(b, &probe, window) >> lane & 1 == 1,
                        probe.intersects(&o.mbr),
                        "candidate {} on {}",
                        o.id,
                        b.name()
                    );
                }
            }
        }
        // A NaN probe misses every candidate on every backend and both forms.
        let mut nan_probe = probe;
        nan_probe.min.z = f64::NAN;
        let indices: Vec<u32> = (0..LANES as u32).collect();
        for b in supported() {
            assert_eq!(overlap_window(b, &nan_probe, &objs[..LANES]), 0, "{}", b.name());
            assert_eq!(overlap_run(b, &nan_probe, &mbrs, &indices), 0, "{}", b.name());
        }
    }

    #[test]
    fn force_backend_round_trips_and_rejects_unsupported() {
        let original = backend();
        assert!(force_backend(Some(Backend::Scalar)));
        assert_eq!(backend(), Backend::Scalar);
        assert!(force_backend(None));
        assert_eq!(backend(), original);
        // At least one of the vector backends is absent on any given target
        // triple; forcing an absent one must be refused and change nothing.
        let absent = if cfg!(target_arch = "x86_64") { Backend::Neon } else { Backend::Sse2 };
        assert!(!absent.is_supported());
        assert!(!force_backend(Some(absent)));
        assert_eq!(backend(), original);
    }

    #[test]
    fn prefetch_is_inert() {
        let data = [1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 17); // out of range: ignored
        assert_eq!(data, [1, 2, 3]);
    }
}

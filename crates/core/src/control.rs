//! Execution control: the fallible-join vocabulary ([`JoinError`]), cooperative
//! cancellation with deadlines ([`CancelToken`]) and panic isolation helpers.
//!
//! The design mirrors the trace layer's "one code path, zero cost when off"
//! contract: every engine's innards take an [`ExecControl`] — a cancel token
//! plus a trace sink — and the infallible entry points pass
//! [`CancelToken::never`], whose check compiles down to one relaxed atomic
//! load that is never taken. A run with an untriggered token is bit-identical
//! (pairs *and* counters) to a run without any token at all, which the
//! perfsmoke counter gate locks down.
//!
//! Cancellation is **cooperative**: engines poll the token at chunk granularity
//! (per tree node in the join phase, per assignment chunk, per epoch/tick) and
//! wind down in an orderly way, returning the partial
//! [`RunReport`](touch_metrics::RunReport) stamped with a
//! [`Completion`](touch_metrics::Completion) status. Hard failures — a panicked
//! worker, invalid geometry, an exhausted resource budget — surface as
//! [`JoinError`]s instead.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};
use touch_metrics::{Completion, NoTrace, Phase, TraceSink};

/// Why a fallible join entry point failed.
///
/// Cooperative cut-offs (cancellation, deadlines) normally do **not** produce
/// an error from report-returning entry points — `JoinQuery::try_run` returns
/// the partial report with [`Completion`](touch_metrics::Completion) stamped.
/// The `Cancelled` / `DeadlineExceeded` variants are returned by operations
/// with nothing partial to hand back (a serving-layer publish, a simulation
/// tick) when they are cut off mid-flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// An input dataset failed validation (NaN coordinates, inverted MBR).
    InvalidInput {
        /// What was wrong, including the offending object id.
        detail: String,
    },
    /// The operation observed a cancelled [`CancelToken`] and has no partial
    /// result to return.
    Cancelled,
    /// The operation observed an elapsed deadline and has no partial result to
    /// return.
    DeadlineExceeded,
    /// A worker panicked mid-run; the panic was contained and the process kept
    /// running. The sink and report may reflect partial work.
    WorkerPanicked {
        /// Phase the worker was executing.
        phase: Phase,
        /// Logical worker index (0 for the coordinator / sequential engines).
        worker: usize,
        /// The panic payload's message.
        detail: String,
    },
    /// A resource budget (e.g. a bounded sink's memory cap) was exhausted.
    ResourceExhausted {
        /// Which budget, and at what size.
        detail: String,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            JoinError::Cancelled => write!(f, "cancelled"),
            JoinError::DeadlineExceeded => write!(f, "deadline exceeded"),
            JoinError::WorkerPanicked { phase, worker, detail } => {
                write!(f, "{} worker {worker} panicked: {detail}", phase.name())
            }
            JoinError::ResourceExhausted { detail } => write!(f, "resource exhausted: {detail}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Which trigger cut a run short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline elapsed.
    DeadlineExceeded,
}

impl CancelCause {
    /// The [`Completion`] status a report cut short by this cause carries.
    pub fn completion(self) -> Completion {
        match self {
            CancelCause::Cancelled => Completion::Cancelled,
            CancelCause::DeadlineExceeded => Completion::DeadlineExceeded,
        }
    }

    /// The [`JoinError`] for operations with no partial result to return.
    pub fn into_error(self) -> JoinError {
        match self {
            CancelCause::Cancelled => JoinError::Cancelled,
            CancelCause::DeadlineExceeded => JoinError::DeadlineExceeded,
        }
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// A shared cancellation flag with an optional deadline.
///
/// Engines poll [`triggered`](CancelToken::triggered) at chunk granularity;
/// any thread (or the token's own deadline) can trip it. The first cause to
/// trip wins and is sticky — later checks keep reporting it. Share a token
/// across threads by reference (the engines run on scoped threads) or wrap it
/// in an `Arc` for detached callers.
///
/// ```
/// use touch_core::CancelToken;
/// let token = CancelToken::new();
/// assert!(token.triggered().is_none());
/// token.cancel();
/// assert!(token.triggered().is_some());
/// ```
#[derive(Debug)]
pub struct CancelToken {
    /// `LIVE` / `CANCELLED` / `DEADLINE`. Relaxed ordering everywhere: the
    /// flag carries no associated data, cooperative checks only need eventual
    /// visibility.
    state: AtomicU8,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared never-triggering token behind [`CancelToken::never`].
static NEVER: CancelToken = CancelToken::new();

impl CancelToken {
    /// A live token with no deadline.
    pub const fn new() -> Self {
        CancelToken { state: AtomicU8::new(LIVE), deadline: None }
    }

    /// A live token that trips `DeadlineExceeded` once `budget` has elapsed
    /// (measured from now).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken { state: AtomicU8::new(LIVE), deadline: Some(Instant::now() + budget) }
    }

    /// The token the infallible entry points run with: never cancelled, no
    /// deadline, so every check is one relaxed load of an always-`LIVE` flag.
    /// [`cancel`](CancelToken::cancel) on this token is a no-op.
    pub fn never() -> &'static CancelToken {
        &NEVER
    }

    /// Trips the token with [`CancelCause::Cancelled`]. Idempotent; loses
    /// against a cause that already tripped. No-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if std::ptr::eq(self, &NEVER) {
            return;
        }
        let _ = self.state.compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The cause that tripped this token, or `None` while it is live. Checks
    /// the deadline lazily: a token past its deadline trips on first poll.
    #[inline]
    pub fn triggered(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Relaxed) {
            LIVE => {
                let deadline = self.deadline?;
                if Instant::now() < deadline {
                    return None;
                }
                // Trip the sticky cause; lose gracefully against a concurrent
                // cancel() and report whatever won.
                let _ = self.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                match self.state.load(Ordering::Relaxed) {
                    CANCELLED => Some(CancelCause::Cancelled),
                    _ => Some(CancelCause::DeadlineExceeded),
                }
            }
            CANCELLED => Some(CancelCause::Cancelled),
            _ => Some(CancelCause::DeadlineExceeded),
        }
    }

    /// `Err` with the tripped cause's [`JoinError`], `Ok(())` while live.
    #[inline]
    pub fn check(&self) -> Result<(), JoinError> {
        match self.triggered() {
            None => Ok(()),
            Some(cause) => Err(cause.into_error()),
        }
    }

    /// The [`Completion`] status a run observing this token right now carries.
    pub fn completion(&self) -> Completion {
        self.triggered().map_or(Completion::Complete, CancelCause::completion)
    }
}

/// The trace sink the infallible entry points run with.
static NO_TRACE: NoTrace = NoTrace;

/// Everything an engine's inner loops need to cooperate with the outside
/// world: a cancellation token and a trace sink. `Copy`, two pointers wide —
/// threading it through call chains costs nothing.
///
/// The infallible / untraced entry points use [`ExecControl::infallible`],
/// whose token never trips and whose sink is disabled, keeping one shared code
/// path per engine (the PR-6 tracing pattern).
#[derive(Clone, Copy)]
pub struct ExecControl<'a> {
    /// Cancellation token polled at chunk granularity.
    pub cancel: &'a CancelToken,
    /// Trace sink execution spans are reported to.
    pub trace: &'a dyn TraceSink,
}

impl fmt::Debug for ExecControl<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecControl")
            .field("cancel", &self.cancel)
            .field("trace_enabled", &self.trace.is_enabled())
            .finish()
    }
}

impl<'a> ExecControl<'a> {
    /// A control block with the given token and a disabled trace sink.
    pub fn with_cancel(cancel: &'a CancelToken) -> Self {
        ExecControl { cancel, trace: &NO_TRACE }
    }

    /// A control block with the given trace sink and a never-triggering token.
    pub fn with_trace(trace: &'a dyn TraceSink) -> Self {
        ExecControl { cancel: CancelToken::never(), trace }
    }

    /// The control block of the infallible, untraced entry points: a token
    /// that never trips and a disabled sink.
    pub fn infallible() -> ExecControl<'static> {
        ExecControl { cancel: CancelToken::never(), trace: &NO_TRACE }
    }
}

/// Runs `f`, converting a panic into [`JoinError::WorkerPanicked`] attributed
/// to `phase` / `worker`. This is the containment boundary the engines wrap
/// around coordinator phases and parallel worker jobs.
pub fn catch_phase<R>(phase: Phase, worker: usize, f: impl FnOnce() -> R) -> Result<R, JoinError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| JoinError::WorkerPanicked {
        phase,
        worker,
        detail: panic_message(payload.as_ref()),
    })
}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` payloads cover `panic!`/`expect`/`assert!`; anything else renders
/// as an opaque marker).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_stays_live_and_ignores_cancel() {
        let never = CancelToken::never();
        assert!(never.triggered().is_none());
        never.cancel();
        assert!(never.triggered().is_none(), "the shared never token cannot be tripped");
        assert!(never.check().is_ok());
        assert_eq!(never.completion(), Completion::Complete);
    }

    #[test]
    fn cancel_is_sticky_and_idempotent() {
        let token = CancelToken::new();
        assert_eq!(token.completion(), Completion::Complete);
        token.cancel();
        token.cancel();
        assert_eq!(token.triggered(), Some(CancelCause::Cancelled));
        assert_eq!(token.check(), Err(JoinError::Cancelled));
        assert_eq!(token.completion(), Completion::Cancelled);
    }

    #[test]
    fn deadline_trips_lazily_and_sticks() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(token.triggered(), Some(CancelCause::DeadlineExceeded));
        // An explicit cancel after the deadline tripped does not flip the cause.
        token.cancel();
        assert_eq!(token.triggered(), Some(CancelCause::DeadlineExceeded));
        assert_eq!(token.completion(), Completion::DeadlineExceeded);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(token.triggered().is_none());
        assert!(token.check().is_ok());
    }

    #[test]
    fn cancel_wins_over_an_untripped_deadline() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        token.cancel();
        assert_eq!(token.triggered(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn token_is_shareable_across_scoped_threads() {
        let token = CancelToken::new();
        std::thread::scope(|scope| {
            scope.spawn(|| token.cancel());
        });
        assert_eq!(token.triggered(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn catch_phase_attributes_the_panic() {
        let err = catch_phase(Phase::Assignment, 3, || -> () { panic!("boom {}", 7) })
            .expect_err("must catch");
        match &err {
            JoinError::WorkerPanicked { phase, worker, detail } => {
                assert_eq!(*phase, Phase::Assignment);
                assert_eq!(*worker, 3);
                assert_eq!(detail, "boom 7");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("assignment worker 3 panicked"), "{rendered}");
        assert!(rendered.contains("boom 7"), "display must embed the original detail");
    }

    #[test]
    fn catch_phase_passes_values_through() {
        let ok = catch_phase(Phase::Join, 0, || 42).expect("no panic");
        assert_eq!(ok, 42);
    }

    #[test]
    fn panic_message_handles_static_and_owned_strings() {
        let static_payload = catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(static_payload.as_ref()), "static message");
        let owned_payload = catch_unwind(|| panic!("{}", String::from("owned"))).unwrap_err();
        assert_eq!(panic_message(owned_payload.as_ref()), "owned");
        let opaque = catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(opaque.as_ref()), "<non-string panic payload>");
    }

    #[test]
    fn join_error_display_covers_every_variant() {
        assert_eq!(
            JoinError::InvalidInput { detail: "object 3: NaN".into() }.to_string(),
            "invalid input: object 3: NaN"
        );
        assert_eq!(JoinError::Cancelled.to_string(), "cancelled");
        assert_eq!(JoinError::DeadlineExceeded.to_string(), "deadline exceeded");
        assert_eq!(
            JoinError::ResourceExhausted { detail: "pair budget 10".into() }.to_string(),
            "resource exhausted: pair budget 10"
        );
    }

    #[test]
    fn exec_control_constructors_wire_the_expected_parts() {
        let ctl = ExecControl::infallible();
        assert!(ctl.cancel.triggered().is_none());
        assert!(!ctl.trace.is_enabled());
        let token = CancelToken::new();
        let with_cancel = ExecControl::with_cancel(&token);
        assert!(std::ptr::eq(with_cancel.cancel, &token));
        let trace = touch_metrics::ExecTrace::new();
        let with_trace = ExecControl::with_trace(&trace);
        assert!(with_trace.trace.is_enabled());
        let copied = with_trace;
        assert!(copied.trace.is_enabled(), "ExecControl is Copy");
    }
}

//! The TOUCH hierarchy: data-oriented tree over dataset A, hierarchical assignment of
//! dataset B, and the per-node local joins.
//!
//! This module implements Algorithms 2 (tree building), 3 (assignment) and 4 (join
//! phase) of the paper. The tree is stored as a flat arena of nodes built bottom-up:
//! dataset A is STR-partitioned into `p` buckets which become the leaves, and each
//! higher level groups `fanout` consecutive nodes (the leaves are already in STR tile
//! order, so consecutive runs are spatially coherent — the in-memory analogue of the
//! paper's per-level STR grouping). Because grouping is consecutive, the A-objects of
//! any subtree form one contiguous range of the object array, which is what the join
//! phase iterates.

use crate::control::{CancelCause, CancelToken, ExecControl};
use crate::kernels;
use crate::scratch::LocalJoinScratch;
use std::ops::Range;
use touch_geom::{Aabb, ObjectId, SpatialObject};
use touch_index::{str_sort, UniformGrid};
use touch_metrics::{vec_bytes, Counters, MemoryUsage, NoTrace, TraceEvent, TraceSink};

/// Objects between two cancellation polls in [`TouchTree::assign_ctl`]: large
/// enough that the poll (one relaxed atomic load) vanishes next to the
/// per-object descent, small enough that cancellation lands within
/// microseconds on any realistic dataset.
pub const ASSIGN_CANCEL_CHUNK: usize = 1024;

/// Strategy used by the join phase to join one node's B-objects against the
/// A-objects of its descendant leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalJoinKind {
    /// Algorithm 4 of the paper: a uniform grid over the node's extent with multiple
    /// assignment of the B-objects and reference-point de-duplication.
    Grid,
    /// Plane-sweep over the two object lists (the local join the paper's baselines
    /// use); no replication, no de-duplication needed.
    PlaneSweep,
    /// Exhaustive pairwise comparison; the simplest correct local join, used as the
    /// ablation baseline.
    AllPairs,
}

impl LocalJoinKind {
    /// Stable lowercase name, used by the trace layer to label per-node spans.
    pub fn name(self) -> &'static str {
        match self {
            LocalJoinKind::Grid => "grid",
            LocalJoinKind::PlaneSweep => "plane-sweep",
            LocalJoinKind::AllPairs => "all-pairs",
        }
    }
}

/// The complete parameterisation of one local join ([`TouchTree::local_join_node`]).
///
/// Bundling the knobs keeps every execution path — sequential, parallel and
/// streaming — on the same decisions. All fields are **independent of the assigned
/// B-objects**, which is what makes the join phase *decomposable*: joining a node's
/// B-objects in one pass or split across any number of epochs performs exactly the
/// same grid construction, comparisons and de-duplication, so results *and counters*
/// add up identically (the invariant `touch-streaming` relies on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalJoinParams {
    /// Local-join strategy.
    pub kind: LocalJoinKind,
    /// Target grid cells per dimension for [`LocalJoinKind::Grid`].
    pub cells_per_dim: usize,
    /// Minimum grid cell size (Section 5.2.2: cells stay larger than the average
    /// object).
    pub min_cell_size: f64,
    /// Nodes whose subtree holds at most this many A-objects skip the grid and use
    /// an all-pairs scan — building a grid for a handful of A-objects costs more
    /// than it prunes. The cutoff deliberately looks only at the A side (fixed at
    /// build time), never at the B count, so the decision is identical no matter
    /// how the B stream is batched.
    pub allpairs_max_a: usize,
    /// Per-node adaptive strategy selection (`None` — the default of every
    /// explicit configuration — keeps the single global cutoff above, exactly
    /// the historical behaviour). The planner derives `Some` from the probe
    /// dataset's statistics; see [`AdaptiveParams`].
    pub adapt: Option<AdaptiveParams>,
}

/// Per-node adaptive local-join strategy selection (the planner's replacement
/// for the single global `allpairs_max_a` cutoff, after Kipf et al.,
/// *Adaptive Geospatial Joins for Modern Hardware*).
///
/// [`LocalJoinParams::effective_kind`] consults, per node: the subtree's
/// **A-count** (known at build time), the node MBR's **mean extent**, and the
/// **expected B-objects** inside the node — its MBR volume times the probe
/// dataset's *global* density, pinned here at plan time. Using the plan-time
/// density rather than the node's actual B-list keeps the decision independent
/// of how the B stream is batched: a node picks the same strategy for every
/// epoch split, so pairs and counters stay exactly additive (the
/// decomposability invariant of [`LocalJoinParams`]).
///
/// The rules, in order:
/// 1. `a_count ≤ allpairs_max_a` → all-pairs (the legacy floor, unchanged);
/// 2. `a_count × expected_b ≤ allpairs_max_work` → all-pairs: the node is too
///    small for any candidate pruning to beat a raw batched scan;
/// 3. node mean side `< sweep_min_side_cells × min_cell_size` → plane-sweep:
///    the grid would degenerate to a handful of cells, replicating heavily
///    while pruning little — sorting once beats building it;
/// 4. otherwise → grid (Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// Global density of the probe (B) dataset: objects per unit volume of its
    /// bounding MBR, from [`DatasetStats::density`](crate::DatasetStats::density).
    pub b_density: f64,
    /// Rule 2 threshold on `a_count × expected_b`. Default:
    /// [`AdaptiveParams::DEFAULT_ALLPAIRS_MAX_WORK`].
    pub allpairs_max_work: f64,
    /// Rule 3 threshold on the node's mean side, in units of the grid cell
    /// floor. Default: [`AdaptiveParams::DEFAULT_SWEEP_MIN_SIDE_CELLS`].
    pub sweep_min_side_cells: f64,
}

impl AdaptiveParams {
    /// Default all-pairs work ceiling: an `a_count × expected_b` at or below
    /// this is cheaper to scan than to index (≈ one L2 of candidate tests).
    pub const DEFAULT_ALLPAIRS_MAX_WORK: f64 = 4096.0;
    /// Default sweep threshold: a node whose mean side spans fewer than this
    /// many minimum-size cells gets a degenerate grid, so it sweeps instead.
    pub const DEFAULT_SWEEP_MIN_SIDE_CELLS: f64 = 4.0;

    /// Adaptive parameters with the default thresholds for a probe dataset of
    /// the given global density.
    pub fn with_density(b_density: f64) -> Self {
        AdaptiveParams {
            b_density,
            allpairs_max_work: Self::DEFAULT_ALLPAIRS_MAX_WORK,
            sweep_min_side_cells: Self::DEFAULT_SWEEP_MIN_SIDE_CELLS,
        }
    }

    /// Rules 2–4 (rule 1 lives in [`LocalJoinParams::effective_kind`], which is
    /// the only caller).
    fn pick(&self, a_count: usize, node_mbr: &Aabb, min_cell_size: f64) -> LocalJoinKind {
        let expected_b = self.b_density * node_mbr.volume();
        if (a_count as f64) * expected_b <= self.allpairs_max_work {
            return LocalJoinKind::AllPairs;
        }
        let extent = node_mbr.extent();
        let mean_side = (extent.x + extent.y + extent.z) / 3.0;
        if mean_side < self.sweep_min_side_cells * min_cell_size {
            return LocalJoinKind::PlaneSweep;
        }
        LocalJoinKind::Grid
    }
}

impl LocalJoinParams {
    /// The strategy a node with `a_count` subtree A-objects and MBR `node_mbr`
    /// actually runs. Without [`adapt`](LocalJoinParams::adapt),
    /// [`LocalJoinKind::Grid`] degrades to [`LocalJoinKind::AllPairs`] below the
    /// `allpairs_max_a` cutoff (building a grid for a handful of A-objects costs
    /// more than it prunes) and the MBR is ignored; with it, the node-local
    /// rules of [`AdaptiveParams`] pick between all three kinds. This is the
    /// **single** place the decision is made — [`TouchTree::local_join_node`]
    /// executes it and the trace layer labels spans with it, so the two can
    /// never diverge. The decision deliberately never consults the B count
    /// (see the field docs above); non-grid base kinds are always taken as-is.
    #[inline]
    pub fn effective_kind(&self, a_count: usize, node_mbr: &Aabb) -> LocalJoinKind {
        match self.kind {
            LocalJoinKind::Grid if a_count <= self.allpairs_max_a => LocalJoinKind::AllPairs,
            LocalJoinKind::Grid => match &self.adapt {
                Some(adapt) => adapt.pick(a_count, node_mbr, self.min_cell_size),
                None => LocalJoinKind::Grid,
            },
            kind => kind,
        }
    }
}

/// One node of the TOUCH hierarchy.
#[derive(Debug, Clone)]
pub struct TouchNode {
    /// MBR enclosing all A-objects below this node (leaf MBRs are the union of their
    /// bucket, inner MBRs the union of their children — Algorithm 2).
    pub mbr: Aabb,
    /// Level of the node: 0 for leaves, increasing towards the root.
    pub level: u32,
    /// Child node indices (empty range for leaves).
    children: Range<u32>,
    /// Range into the tree's A-object array covered by this subtree.
    a_range: Range<u32>,
    /// Objects of dataset B assigned to this node (Algorithm 3).
    b_items: Vec<SpatialObject>,
    is_leaf: bool,
}

impl TouchNode {
    /// `true` if this node is a leaf (holds a bucket of A-objects).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.is_leaf
    }

    /// Indices of the child nodes (empty for leaves).
    #[inline]
    pub fn child_indices(&self) -> Range<usize> {
        self.children.start as usize..self.children.end as usize
    }

    /// Number of A-objects in this subtree.
    #[inline]
    pub fn a_count(&self) -> usize {
        (self.a_range.end - self.a_range.start) as usize
    }

    /// The B-objects assigned to this node.
    #[inline]
    pub fn assigned_b(&self) -> &[SpatialObject] {
        &self.b_items
    }
}

/// Memoised per-node local-join grid geometry (see [`TouchTree::memoise_grids`]).
///
/// The cache is valid for exactly one `(cells_per_dim, min_cell_size)` pair — the
/// two [`LocalJoinParams`] fields grid geometry depends on besides the node MBR,
/// which is immutable. A lookup under different parameters misses, so a stale
/// cache can never change a join; it only stops accelerating it.
#[derive(Debug, Clone)]
struct GridCache {
    cells_per_dim: usize,
    min_cell_size: f64,
    /// One entry per node; `None` for nodes whose effective strategy is not
    /// [`LocalJoinKind::Grid`] (all-pairs fallback, adaptive pick) or that hold
    /// no A-objects.
    grids: Vec<Option<UniformGrid>>,
}

/// The TOUCH support structure: a data-oriented hierarchy over dataset A whose inner
/// (and, degenerately, leaf) nodes additionally hold the assigned objects of
/// dataset B.
#[derive(Debug)]
pub struct TouchTree {
    a_items: Vec<SpatialObject>,
    nodes: Vec<TouchNode>,
    /// Flat `[min; max]` cache of every node's MBR, indexed by node id. The
    /// assignment descent tests a parent's children — contiguous ids — against the
    /// probe object; scanning this 48-byte-stride array instead of hopping across
    /// the much larger [`TouchNode`] structs keeps the hot loop inside one or two
    /// cache lines per child run.
    node_mbrs: Vec<Aabb>,
    /// Node-index ranges per level, leaves first.
    levels: Vec<Range<usize>>,
    partitions: usize,
    fanout: usize,
    /// Indices of nodes holding at least one assigned B-object, in first-assignment
    /// order. Lets [`TouchTree::clear_assignment`] and
    /// [`TouchTree::nodes_with_assignments`] run in O(touched nodes) instead of
    /// O(all nodes) — the difference matters when a persistent tree serves many
    /// small epochs (`touch-streaming`).
    touched: Vec<u32>,
    /// Number of B-objects assigned since the last [`TouchTree::clear_assignment`]
    /// (the O(1) form of [`TouchTree::assigned_b_count`]).
    assigned_b: u64,
    /// Heap bytes currently reserved by the per-node B-lists, maintained
    /// incrementally on every assignment so [`MemoryUsage::memory_bytes`] is O(1)
    /// instead of an O(all nodes) scan per epoch. `clear_assignment` keeps the
    /// capacities (deliberately — reuse stops allocating), so this figure survives
    /// clears, exactly like the memory itself does.
    b_items_bytes: usize,
    /// Memoised per-node grid geometry for persistent trees (`touch-streaming`):
    /// epoch re-joins of the same node stop recomputing
    /// [`UniformGrid::with_min_cell_size`] from scratch. `None` until
    /// [`TouchTree::memoise_grids`] is called; read-only during joins.
    grid_cache: Option<GridCache>,
}

impl Clone for TouchTree {
    fn clone(&self) -> Self {
        let nodes = self.nodes.clone();
        // Cloning a Vec does not preserve its capacity, so the clone's reserved
        // B-list bytes are recomputed from what the clone actually holds.
        let b_items_bytes = nodes.iter().map(|n| vec_bytes(&n.b_items)).sum();
        TouchTree {
            a_items: self.a_items.clone(),
            nodes,
            node_mbrs: self.node_mbrs.clone(),
            levels: self.levels.clone(),
            partitions: self.partitions,
            fanout: self.fanout,
            touched: self.touched.clone(),
            assigned_b: self.assigned_b,
            b_items_bytes,
            grid_cache: self.grid_cache.clone(),
        }
    }
}

impl TouchTree {
    /// The STR bucket (leaf) capacity for `len` objects split into `partitions`
    /// buckets. The single source of the chunking that [`TouchTree::build`],
    /// [`TouchTree::from_tiled`] and the parallel sort in `touch-parallel` must all
    /// agree on.
    ///
    /// # Panics
    /// Panics if `partitions` is zero.
    #[inline]
    pub fn leaf_capacity(len: usize, partitions: usize) -> usize {
        assert!(partitions > 0, "partitions must be positive");
        len.div_ceil(partitions).max(1)
    }

    /// Builds the hierarchy over dataset A (Algorithm 2).
    ///
    /// * `partitions` — the number of STR buckets (leaves); the paper uses 1024.
    /// * `fanout` — children per inner node; the paper uses 2.
    ///
    /// # Panics
    /// Panics if `partitions` is zero or `fanout < 2`.
    pub fn build(a_objects: &[SpatialObject], partitions: usize, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2"); // fail before the O(n log n) sort
        let mut a_items = a_objects.to_vec();
        if !a_items.is_empty() {
            let cap = Self::leaf_capacity(a_items.len(), partitions);
            str_sort(&mut a_items, |o| o.mbr.center(), cap);
        }
        Self::from_tiled(a_items, partitions, fanout)
    }

    /// Builds the hierarchy from objects that are **already in STR tile order**.
    ///
    /// `a_items` must be ordered so that consecutive chunks of
    /// [`TouchTree::leaf_capacity`] objects form spatially coherent buckets —
    /// exactly what [`touch_index::str_sort`] with that capacity produces. This is
    /// the entry point for `touch-parallel`, which runs the STR sort on multiple
    /// threads and then hands the tiled objects over; [`TouchTree::build`] is the
    /// single-threaded sort + this constructor.
    ///
    /// Correctness does not depend on *how good* the tiling is (any permutation
    /// yields a correct join — Theorem 1 only needs the leaves to partition A); the
    /// tiling quality only affects how much work the assignment and join phases can
    /// prune.
    ///
    /// # Panics
    /// Panics if `partitions` is zero or `fanout < 2`.
    // Packing invariants, not fallible paths: every grouped range is non-empty
    // by loop construction and `levels` is pushed before it is read.
    #[allow(clippy::expect_used, clippy::unwrap_used)]
    pub fn from_tiled(a_items: Vec<SpatialObject>, partitions: usize, fanout: usize) -> Self {
        assert!(partitions > 0, "partitions must be positive");
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut nodes = Vec::new();
        let mut levels = Vec::new();

        if a_items.is_empty() {
            return TouchTree {
                a_items,
                nodes,
                node_mbrs: Vec::new(),
                levels,
                partitions,
                fanout,
                touched: Vec::new(),
                assigned_b: 0,
                b_items_bytes: 0,
                grid_cache: None,
            };
        }

        // Leaf level: one node per STR bucket.
        let leaf_capacity = Self::leaf_capacity(a_items.len(), partitions);
        let mut start = 0;
        while start < a_items.len() {
            let end = (start + leaf_capacity).min(a_items.len());
            let mbr = Aabb::union_all(a_items[start..end].iter().map(|o| o.mbr))
                .expect("non-empty leaf bucket");
            nodes.push(TouchNode {
                mbr,
                level: 0,
                children: 0..0,
                a_range: start as u32..end as u32,
                b_items: Vec::new(),
                is_leaf: true,
            });
            start = end;
        }
        levels.push(0..nodes.len());

        // Upper levels: group `fanout` consecutive nodes of the previous level.
        let mut level = 1u32;
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap().clone();
            let this_start = nodes.len();
            let mut child = prev.start;
            while child < prev.end {
                let child_end = (child + fanout).min(prev.end);
                let mbr = Aabb::union_all(nodes[child..child_end].iter().map(|n| n.mbr))
                    .expect("non-empty inner node");
                let a_range = nodes[child].a_range.start..nodes[child_end - 1].a_range.end;
                nodes.push(TouchNode {
                    mbr,
                    level,
                    children: child as u32..child_end as u32,
                    a_range,
                    b_items: Vec::new(),
                    is_leaf: false,
                });
                child = child_end;
            }
            levels.push(this_start..nodes.len());
            level += 1;
        }

        let node_mbrs = nodes.iter().map(|n| n.mbr).collect();
        TouchTree {
            a_items,
            nodes,
            node_mbrs,
            levels,
            partitions,
            fanout,
            touched: Vec::new(),
            assigned_b: 0,
            b_items_bytes: 0,
            grid_cache: None,
        }
    }

    /// Consumes the tree and returns its A-item buffer, capacity intact.
    ///
    /// This is the tick-loop reuse primitive: a simulation that rebuilds the
    /// hierarchy every tick reclaims the sorted item buffer here, refills it
    /// from the new positions and hands it back to [`TouchTree::from_tiled`],
    /// so the dominant tree allocation is paid once, not once per tick.
    #[inline]
    pub fn into_items(self) -> Vec<SpatialObject> {
        self.a_items
    }

    /// Number of A-objects indexed by the tree.
    #[inline]
    pub fn a_len(&self) -> usize {
        self.a_items.len()
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of levels (0 for an empty tree).
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The number of partitions (leaf buckets) requested at build time.
    #[inline]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The fanout requested at build time.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Index of the root node, or `None` for an empty tree.
    #[inline]
    pub fn root_index(&self) -> Option<usize> {
        self.levels.last().map(|r| r.start)
    }

    /// The node at `index`.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    #[inline]
    pub fn node(&self, index: usize) -> &TouchNode {
        &self.nodes[index]
    }

    /// Iterator over all node indices.
    pub fn node_indices(&self) -> Range<usize> {
        0..self.nodes.len()
    }

    /// The A-objects of the subtree rooted at `node` (its descendant leaves' buckets).
    #[inline]
    pub fn subtree_a_objects(&self, node: &TouchNode) -> &[SpatialObject] {
        &self.a_items[node.a_range.start as usize..node.a_range.end as usize]
    }

    /// All A-objects in STR (leaf bucket) order.
    #[inline]
    pub fn a_objects(&self) -> &[SpatialObject] {
        &self.a_items
    }

    /// Total number of B-objects currently assigned to nodes. O(1): the tree keeps
    /// a running count alongside the per-node lists.
    pub fn assigned_b_count(&self) -> usize {
        self.assigned_b as usize
    }

    /// The nodes currently holding at least one assigned B-object, in
    /// first-assignment order (the raw touched-node bookkeeping;
    /// [`TouchTree::nodes_with_assignments`] is the join-ready, sorted and
    /// A-filtered view). Lets incremental callers — the sliding-window engine —
    /// diff per-node list lengths in O(touched) instead of O(all nodes).
    #[inline]
    pub fn touched_nodes(&self) -> &[u32] {
        &self.touched
    }

    /// Stores one B-object at `node`, maintaining the assignment bookkeeping (the
    /// touched-node list and the running count). Every assignment path —
    /// [`TouchTree::assign`] and [`TouchTree::extend_assigned`] — funnels through
    /// here so the bookkeeping can never drift from the per-node lists.
    #[inline]
    fn push_assignment(&mut self, node: usize, obj: SpatialObject) {
        let items = &mut self.nodes[node].b_items;
        if items.is_empty() {
            self.touched.push(node as u32);
        }
        let capacity_before = items.capacity();
        items.push(obj);
        self.b_items_bytes +=
            (items.capacity() - capacity_before) * std::mem::size_of::<SpatialObject>();
        self.assigned_b += 1;
    }

    /// Determines the node an object of dataset B would be assigned to (Algorithm 3),
    /// or `None` if the object can be filtered.
    ///
    /// Starting from the root, the object descends as long as it overlaps exactly one
    /// child MBR; it is assigned to the current node as soon as it overlaps more than
    /// one child, filtered as soon as it overlaps none, and assigned to a leaf if it
    /// reaches one.
    pub fn assignment_target(&self, mbr: &Aabb, counters: &mut Counters) -> Option<usize> {
        let mut current = self.root_index()?;
        // A root that is itself a leaf still filters objects outside its MBR
        // (Section 4.4: objects outside every leaf MBR cannot intersect anything).
        if self.nodes[current].is_leaf {
            counters.record_node_test();
            return if self.node_mbrs[current].intersects(mbr) { Some(current) } else { None };
        }
        loop {
            let node = &self.nodes[current];
            if node.is_leaf {
                return Some(current);
            }
            // The descent scans the children's MBRs from the flat cache: child ids
            // are contiguous, so this is a linear walk over packed `[min; max]`
            // boxes, not a hop across full node structs.
            let mut overlapping: Option<usize> = None;
            let mut multiple = false;
            let children = node.child_indices();
            for (child, child_mbr) in children.clone().zip(&self.node_mbrs[children]) {
                counters.record_node_test();
                if child_mbr.intersects(mbr) {
                    if overlapping.is_some() {
                        multiple = true;
                        break;
                    }
                    overlapping = Some(child);
                }
            }
            match (overlapping, multiple) {
                (None, _) => return None,                // overlaps no child: filtered
                (Some(_), true) => return Some(current), // overlaps several: stay here
                (Some(child), false) => current = child, // overlaps exactly one: descend
            }
        }
    }

    /// Assigns every object of dataset B to the tree (Algorithm 3), recording filtered
    /// objects in `counters`.
    pub fn assign(&mut self, b_objects: &[SpatialObject], counters: &mut Counters) {
        let complete = self.assign_ctl(b_objects, counters, CancelToken::never());
        debug_assert!(complete.is_none(), "the never token cannot trip");
    }

    /// Cancellable form of [`TouchTree::assign`]: polls `cancel` once per
    /// [`ASSIGN_CANCEL_CHUNK`]-object chunk and stops assigning when it trips,
    /// returning the cause (`None` = ran to completion). Objects are visited in
    /// exactly the order of [`TouchTree::assign`] — with an untriggered token
    /// the assignments and counters are bit-identical, the poll being one
    /// relaxed atomic load per chunk.
    pub fn assign_ctl(
        &mut self,
        b_objects: &[SpatialObject],
        counters: &mut Counters,
        cancel: &CancelToken,
    ) -> Option<CancelCause> {
        for chunk in b_objects.chunks(ASSIGN_CANCEL_CHUNK) {
            if let Some(cause) = cancel.triggered() {
                return Some(cause);
            }
            for obj in chunk {
                match self.assignment_target(&obj.mbr, counters) {
                    Some(node) => self.push_assignment(node, *obj),
                    None => counters.record_filtered(),
                }
            }
        }
        None
    }

    /// Attaches pre-computed assignments to the tree: every `(node_index, object)`
    /// pair is stored at that node, in iteration order.
    ///
    /// This is the write half of the two-step parallel assignment used by
    /// `touch-parallel`: worker threads compute targets concurrently with the
    /// read-only [`TouchTree::assignment_target`], and the coordinator applies the
    /// collected batches with this method. It is equivalent to what
    /// [`TouchTree::assign`] does for the non-filtered objects.
    ///
    /// # Panics
    /// Panics if a node index is out of range.
    pub fn extend_assigned(
        &mut self,
        assignments: impl IntoIterator<Item = (usize, SpatialObject)>,
    ) {
        for (node, obj) in assignments {
            self.push_assignment(node, obj);
        }
    }

    /// Removes all assigned B-objects and resets every piece of per-epoch assignment
    /// state — the touched-node list and the running assignment count — so the tree
    /// can serve another probe epoch with nothing left over from the previous one.
    ///
    /// Only the nodes that actually received assignments are visited (O(touched)
    /// rather than O(all nodes)), and the per-node `Vec` capacities are kept so a
    /// long-lived tree stops allocating once it has seen a typical epoch. The node
    /// structure — MBRs, levels, A-ranges — is untouched.
    pub fn clear_assignment(&mut self) {
        for &node in &self.touched {
            self.nodes[node as usize].b_items.clear();
        }
        self.touched.clear();
        self.assigned_b = 0;
    }

    /// Retracts assigned B-objects from the **front** of the listed nodes'
    /// per-node lists: each `(node, count)` entry drops that node's `count`
    /// oldest assignments. Assignments are stored in arrival order and epochs
    /// arrive in order, so the front of every list is exactly what the oldest
    /// epoch put there — this is the sliding-window eviction primitive: instead
    /// of [`TouchTree::clear_assignment`] (drop *everything*), a windowed
    /// stream retracts one expired epoch and keeps the rest.
    ///
    /// All assignment bookkeeping is maintained: the running count shrinks, and
    /// nodes whose list becomes empty leave the touched list (a later
    /// assignment re-adds them; a stale entry would otherwise be double-listed
    /// and double-joined). Capacities are kept, like `clear_assignment`.
    ///
    /// # Panics
    /// Panics if a node index is out of range or `count` exceeds what the node
    /// currently holds — both indicate corrupted eviction records.
    pub fn retract_assigned(&mut self, retractions: impl IntoIterator<Item = (usize, usize)>) {
        let mut removed = 0u64;
        let mut emptied = false;
        for (node, count) in retractions {
            let items = &mut self.nodes[node].b_items;
            assert!(
                count <= items.len(),
                "retracting {count} B-objects from node {node} holding {}",
                items.len()
            );
            items.drain(..count);
            emptied |= items.is_empty();
            removed += count as u64;
        }
        self.assigned_b -= removed;
        if emptied {
            let nodes = &self.nodes;
            self.touched.retain(|&n| !nodes[n as usize].b_items.is_empty());
        }
    }

    /// Indices of the nodes the join phase has to visit: nodes holding at least one
    /// B-object over a non-empty A-subtree. These are the independent work units a
    /// parallel scheduler distributes; joining them in any order, each exactly once,
    /// produces the same result set as [`TouchTree::join_assigned`].
    ///
    /// Returned in ascending node-index order (derived from the touched-node list,
    /// so the scan is O(touched log touched), not O(all nodes)).
    pub fn nodes_with_assignments(&self) -> Vec<usize> {
        let mut work = Vec::new();
        self.nodes_with_assignments_into(&mut work);
        work
    }

    /// The allocation-free form of [`TouchTree::nodes_with_assignments`]: clears
    /// `work` and refills it in ascending node-index order, retaining the buffer's
    /// capacity. A persistent engine serving many epochs passes the same buffer
    /// every time (see [`crate::ScratchPool::take_work`]) so the per-epoch work
    /// list stops allocating after the first typical epoch.
    pub fn nodes_with_assignments_into(&self, work: &mut Vec<usize>) {
        work.clear();
        work.extend(
            self.touched
                .iter()
                .map(|&idx| idx as usize)
                .filter(|&idx| self.nodes[idx].a_count() > 0),
        );
        work.sort_unstable();
    }

    /// Runs the join phase (Algorithm 4) over every node holding B-objects, emitting
    /// each intersecting pair `(a_id, b_id)` exactly once.
    ///
    /// `params` configures the per-node grid of the [`LocalJoinKind::Grid`] strategy
    /// (Section 5.2.2: cells should stay larger than the average object). `scratch`
    /// provides the reusable join-phase memory — the CSR grid directory, the
    /// plane-sweep buffers and the work-list buffer all live there, so a caller
    /// that passes the same scratch across epochs allocates nothing per epoch once
    /// the buffers have warmed up. `emit` follows the early-termination convention
    /// of [`crate::kernels`]: returning `false` stops the join phase — the current
    /// local join and the remaining nodes are abandoned. Returns the bytes the
    /// scratch has reserved, which the caller folds into the reported memory
    /// footprint.
    pub fn join_assigned(
        &self,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) -> usize {
        self.join_assigned_traced(params, scratch, counters, emit, &NoTrace, 0)
    }

    /// Traced form of [`TouchTree::join_assigned`]: identical join, but each
    /// node's local join runs through [`TouchTree::local_join_node_traced`]
    /// attributed to `worker`. [`TouchTree::join_assigned`] is this with a
    /// [`NoTrace`] sink.
    pub fn join_assigned_traced(
        &self,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
        trace: &dyn TraceSink,
        worker: usize,
    ) -> usize {
        let (aux, complete) = self.join_assigned_ctl(
            params,
            scratch,
            counters,
            emit,
            ExecControl::with_trace(trace),
            worker,
        );
        debug_assert!(complete.is_none(), "the never token cannot trip");
        aux
    }

    /// Cancellable form of [`TouchTree::join_assigned_traced`]: polls the
    /// control block's token once per node and abandons the remaining nodes
    /// when it trips, additionally returning the cause (`None` = ran to
    /// completion). Node order and per-node work are identical — with an
    /// untriggered token pairs and counters are bit-identical, the poll being
    /// one relaxed atomic load per node.
    pub fn join_assigned_ctl(
        &self,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
        ctl: ExecControl<'_>,
        worker: usize,
    ) -> (usize, Option<CancelCause>) {
        let mut work = std::mem::take(&mut scratch.work);
        self.nodes_with_assignments_into(&mut work);
        let mut stopped = false;
        let mut cause = None;
        for &idx in &work {
            if let Some(c) = ctl.cancel.triggered() {
                cause = Some(c);
                break;
            }
            let mut watched = |a: ObjectId, b: ObjectId| {
                let go_on = emit(a, b);
                stopped = !go_on;
                go_on
            };
            self.local_join_node_traced(
                idx,
                params,
                scratch,
                counters,
                &mut watched,
                ctl.trace,
                worker,
            );
            if stopped {
                break;
            }
        }
        scratch.work = work;
        (scratch.memory_bytes(), cause)
    }

    /// Joins the B-objects assigned to the node at `index` against the A-objects of
    /// its descendant leaves, using the requested local-join strategy over the
    /// reusable buffers of `scratch`. `emit` returning `false` abandons the rest of
    /// this node's local join. Returns the bytes the scratch has reserved after
    /// this join (its high-water mark so far — the figure a caller folds into the
    /// join phase's auxiliary memory).
    pub fn local_join_node(
        &self,
        index: usize,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) -> usize {
        self.local_join_node_ext(
            index,
            self.nodes[index].assigned_b(),
            params,
            scratch,
            counters,
            emit,
        )
    }

    /// The form of [`TouchTree::local_join_node`] that takes the node's
    /// B-objects **externally** instead of reading the tree's own assignment
    /// lists. This is the read-only join path of the serving layer: a frozen
    /// `Arc`-held tree can be joined concurrently by many readers, each holding
    /// its per-node B-lists in its own [`crate::AssignmentBuffer`]. With
    /// `b_objs == node.assigned_b()` it is exactly `local_join_node` — the
    /// strategy cutoff consults only the A side, so where the B-list lives
    /// cannot change the computation.
    pub fn local_join_node_ext(
        &self,
        index: usize,
        b_objs: &[SpatialObject],
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) -> usize {
        let node = &self.nodes[index];
        let a_objs = self.subtree_a_objects(node);
        // The grid→all-pairs degradation for small nodes lives in
        // `LocalJoinParams::effective_kind`, shared with the trace labelling.
        // The cutoff must not consult the B count: the B side of a node may
        // arrive split across epochs, and the per-node strategy has to be the
        // same for every split so that counters stay exactly additive (see
        // [`LocalJoinParams`]).
        match params.effective_kind(a_objs.len(), &node.mbr) {
            LocalJoinKind::AllPairs => {
                kernels::all_pairs(a_objs, b_objs, counters, emit);
            }
            LocalJoinKind::PlaneSweep => {
                let (a_scratch, b_scratch) = scratch.load_sweep(a_objs, b_objs);
                kernels::plane_sweep(a_scratch, b_scratch, counters, emit);
            }
            LocalJoinKind::Grid => {
                let grid = self.node_grid(index, params);
                scratch.grid_join(&grid, a_objs, b_objs, counters, emit);
            }
        }
        scratch.memory_bytes()
    }

    /// Traced form of [`TouchTree::local_join_node`]: when `trace` is enabled,
    /// wraps the local join in a [`TraceEvent::NodeJoin`] span carrying the
    /// node's A/B counts, the effective strategy, the candidate comparisons
    /// performed (counter delta) and the pairs emitted. With a disabled sink
    /// this is one branch and then exactly `local_join_node` — recording can
    /// never change pairs or counters.
    #[allow(clippy::too_many_arguments)]
    pub fn local_join_node_traced(
        &self,
        index: usize,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
        trace: &dyn TraceSink,
        worker: usize,
    ) -> usize {
        self.local_join_node_ext_traced(
            index,
            self.nodes[index].assigned_b(),
            params,
            scratch,
            counters,
            emit,
            trace,
            worker,
        )
    }

    /// Traced form of [`TouchTree::local_join_node_ext`] (see
    /// [`TouchTree::local_join_node_traced`] for the span contents).
    #[allow(clippy::too_many_arguments)]
    pub fn local_join_node_ext_traced(
        &self,
        index: usize,
        b_objs: &[SpatialObject],
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
        trace: &dyn TraceSink,
        worker: usize,
    ) -> usize {
        if !trace.is_enabled() {
            return self.local_join_node_ext(index, b_objs, params, scratch, counters, emit);
        }
        let a_count = self.nodes[index].a_count();
        let b_count = b_objs.len();
        let strategy = params.effective_kind(a_count, &self.nodes[index].mbr).name();
        let comparisons_before = counters.comparisons;
        let mut pairs = 0u64;
        let start_us = trace.now_us();
        let aux =
            self.local_join_node_ext(index, b_objs, params, scratch, counters, &mut |a, b| {
                pairs += 1;
                emit(a, b)
            });
        trace.record(TraceEvent::NodeJoin {
            node: index,
            worker,
            a_count,
            b_count,
            strategy,
            candidates: counters.comparisons - comparisons_before,
            pairs,
            start_us,
            duration_us: trace.now_us().saturating_sub(start_us),
        });
        aux
    }

    /// The local-join grid geometry of the node at `index` (Algorithm 4): the
    /// memoised copy when [`TouchTree::memoise_grids`] pre-computed it for these
    /// parameters, otherwise freshly derived. The two are identical by
    /// construction — [`UniformGrid::with_min_cell_size`] is a pure function of
    /// the node MBR and the parameters — so memoisation can never change a join.
    #[inline]
    fn node_grid(&self, index: usize, params: &LocalJoinParams) -> UniformGrid {
        if let Some(cache) = &self.grid_cache {
            if cache.cells_per_dim == params.cells_per_dim
                && cache.min_cell_size == params.min_cell_size
            {
                if let Some(grid) = cache.grids[index] {
                    return grid;
                }
            }
        }
        UniformGrid::with_min_cell_size(
            self.nodes[index].mbr,
            params.cells_per_dim.max(1),
            params.min_cell_size,
        )
    }

    /// Pre-computes the local-join grid geometry of every node that can need one
    /// (those whose [`LocalJoinParams::effective_kind`] resolves to
    /// [`LocalJoinKind::Grid`]), replacing any previously memoised set.
    ///
    /// This is the persistent-tree optimisation of `touch-streaming`: a one-shot
    /// join uses each node's grid exactly once, but a tree serving many epochs
    /// re-derives identical geometry every time a node is re-joined. The cache is
    /// keyed by the `(cells_per_dim, min_cell_size)` it was built for — a join
    /// under different parameters simply bypasses it — and is invisible to
    /// results: grids are pure geometry, so cached and freshly computed joins are
    /// bit-identical (locked down by the streaming equivalence suites).
    pub fn memoise_grids(&mut self, params: &LocalJoinParams) {
        let grids = self
            .nodes
            .iter()
            .map(|node| {
                if params.effective_kind(node.a_count(), &node.mbr) == LocalJoinKind::Grid {
                    Some(UniformGrid::with_min_cell_size(
                        node.mbr,
                        params.cells_per_dim.max(1),
                        params.min_cell_size,
                    ))
                } else {
                    None
                }
            })
            .collect();
        self.grid_cache = Some(GridCache {
            cells_per_dim: params.cells_per_dim,
            min_cell_size: params.min_cell_size,
            grids,
        });
    }

    /// Number of node grids currently memoised (0 without a cache). Exposed for
    /// the reuse test suites and the streaming engine's memory accounting.
    pub fn memoised_grid_count(&self) -> usize {
        self.grid_cache
            .as_ref()
            .map(|c| c.grids.iter().filter(|g| g.is_some()).count())
            .unwrap_or(0)
    }
}

impl MemoryUsage for TouchTree {
    /// O(1): the per-node B-list bytes are tracked incrementally by the assignment
    /// paths, so a streaming engine can report memory every epoch without scanning
    /// the node array.
    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.a_items)
            + self.nodes.capacity() * std::mem::size_of::<TouchNode>()
            + self.b_items_bytes
            + vec_bytes(&self.node_mbrs)
            + vec_bytes(&self.levels)
            + vec_bytes(&self.touched)
            + self.grid_cache.as_ref().map(|c| vec_bytes(&c.grids)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Dataset, Point3};

    fn lattice(side: usize, spacing: f64, box_side: f64) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min =
                        Point3::new(x as f64 * spacing, y as f64 * spacing, z as f64 * spacing);
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
                }
            }
        }
        ds
    }

    fn brute_pairs(a: &Dataset, b: &Dataset) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    out.push((oa.id, ob.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn build_produces_a_binary_hierarchy_over_buckets() {
        let a = lattice(4, 2.0, 1.0); // 64 objects
        let tree = TouchTree::build(a.objects(), 8, 2);
        assert_eq!(tree.a_len(), 64);
        assert_eq!(tree.partitions(), 8);
        assert_eq!(tree.fanout(), 2);
        // 8 leaves -> 4 -> 2 -> 1
        assert_eq!(tree.height(), 4);
        assert_eq!(tree.node_count(), 15);
        let root = tree.node(tree.root_index().unwrap());
        assert!(!root.is_leaf());
        assert_eq!(root.a_count(), 64);
    }

    #[test]
    fn node_mbrs_enclose_their_subtrees() {
        let a = lattice(5, 3.0, 1.5);
        let tree = TouchTree::build(a.objects(), 16, 3);
        for idx in tree.node_indices() {
            let node = tree.node(idx);
            for obj in tree.subtree_a_objects(node) {
                assert!(node.mbr.contains(&obj.mbr));
            }
            for child in node.child_indices() {
                assert!(node.mbr.contains(&tree.node(child).mbr));
            }
        }
    }

    #[test]
    fn every_a_object_is_in_exactly_one_leaf() {
        let a = lattice(4, 2.0, 1.0);
        let tree = TouchTree::build(a.objects(), 10, 2);
        let mut seen = vec![0u32; a.len()];
        for idx in tree.node_indices() {
            let node = tree.node(idx);
            if node.is_leaf() {
                for obj in tree.subtree_a_objects(node) {
                    seen[obj.id as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_dataset_a() {
        let tree = TouchTree::build(&[], 1024, 2);
        assert_eq!(tree.a_len(), 0);
        assert_eq!(tree.height(), 0);
        assert!(tree.root_index().is_none());
        let mut counters = Counters::new();
        let b = lattice(2, 2.0, 1.0);
        let mut t = tree.clone();
        t.assign(b.objects(), &mut counters);
        assert_eq!(
            counters.filtered,
            b.len() as u64,
            "with no A objects every B object is filtered"
        );
        assert_eq!(t.assigned_b_count(), 0);
    }

    #[test]
    fn assignment_filters_objects_outside_every_leaf() {
        // Dataset A occupies [0, 8]³; B objects far away must be filtered.
        let a = lattice(4, 2.0, 1.0);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut b = Dataset::new();
        b.push_mbr(Aabb::new(Point3::splat(100.0), Point3::splat(101.0))); // far away
        b.push_mbr(Aabb::new(Point3::splat(1.0), Point3::splat(2.0))); // inside
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        assert_eq!(counters.filtered, 1);
        assert_eq!(tree.assigned_b_count(), 1);
    }

    #[test]
    fn assignment_prefers_the_lowest_single_overlapping_node() {
        let a = lattice(4, 2.0, 1.0);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        // A tiny B object deep inside the data: it should land far from the root.
        let mut b = Dataset::new();
        b.push_mbr(Aabb::new(Point3::splat(0.1), Point3::splat(0.2)));
        // A huge B object spanning everything: it must land at the root.
        b.push_mbr(Aabb::new(Point3::splat(-1.0), Point3::splat(9.0)));
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        let root_idx = tree.root_index().unwrap();
        let root_level = tree.node(root_idx).level;
        let mut levels_of_assignment = Vec::new();
        for idx in tree.node_indices() {
            for ob in tree.node(idx).assigned_b() {
                levels_of_assignment.push((ob.id, tree.node(idx).level));
            }
        }
        levels_of_assignment.sort_unstable();
        assert_eq!(levels_of_assignment.len(), 2);
        let (_, tiny_level) = levels_of_assignment[0];
        let (_, huge_level) = levels_of_assignment[1];
        assert!(tiny_level < root_level, "tiny object must be pushed towards the leaves");
        assert_eq!(huge_level, root_level, "all-covering object must stay at the root");
    }

    /// Test parameterisation of the local join: small grid, tiny min cell, and an
    /// A-cutoff of 4 so both the all-pairs fallback and the grid path are exercised
    /// by the lattice workloads (leaf buckets of 8 objects sit above the cutoff).
    fn test_params(kind: LocalJoinKind) -> LocalJoinParams {
        LocalJoinParams {
            kind,
            cells_per_dim: 10,
            min_cell_size: 0.5,
            allpairs_max_a: 4,
            adapt: None,
        }
    }

    /// A structural fingerprint of the tree: everything `clear_assignment` must
    /// leave intact.
    fn structure_snapshot(tree: &TouchTree) -> Vec<(Aabb, u32, Range<usize>, usize, bool)> {
        tree.node_indices()
            .map(|idx| {
                let n = tree.node(idx);
                (n.mbr, n.level, n.child_indices(), n.a_count(), n.is_leaf())
            })
            .collect()
    }

    #[test]
    fn clear_assignment_resets_b_items() {
        let a = lattice(3, 2.0, 1.0);
        let mut tree = TouchTree::build(a.objects(), 4, 2);
        let b = lattice(3, 2.0, 1.0);
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        assert!(tree.assigned_b_count() > 0);
        tree.clear_assignment();
        assert_eq!(tree.assigned_b_count(), 0);
        assert!(tree.nodes_with_assignments().is_empty(), "no join work after a clear");
        for idx in tree.node_indices() {
            assert!(tree.node(idx).assigned_b().is_empty(), "node {idx} kept B-objects");
        }
    }

    #[test]
    fn clear_assignment_preserves_structure_of_multi_level_trees() {
        // 125 objects into 16 partitions at fanout 2: a 5-level hierarchy.
        let a = lattice(5, 2.0, 1.0);
        let mut tree = TouchTree::build(a.objects(), 16, 2);
        assert!(tree.height() >= 4, "test needs a multi-level tree, got {}", tree.height());
        let before = structure_snapshot(&tree);
        let b = lattice(5, 1.8, 1.2);
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        assert!(tree.assigned_b_count() > 0);
        tree.clear_assignment();
        assert_eq!(structure_snapshot(&tree), before, "clear_assignment altered the hierarchy");
        assert_eq!(tree.a_len(), a.len());
    }

    #[test]
    fn repeated_reuse_is_indistinguishable_from_a_fresh_tree() {
        let a = lattice(4, 2.0, 1.0);
        let b = lattice(4, 1.7, 0.9);
        // Reference: one fresh tree, assigned once.
        let mut fresh = TouchTree::build(a.objects(), 8, 2);
        let mut fresh_counters = Counters::new();
        fresh.assign(b.objects(), &mut fresh_counters);
        let mut fresh_pairs = Vec::new();
        let params = test_params(LocalJoinKind::Grid);
        fresh.join_assigned(
            &params,
            &mut LocalJoinScratch::new(),
            &mut fresh_counters,
            &mut |x, y| {
                fresh_pairs.push((x, y));
                true
            },
        );
        fresh_pairs.sort_unstable();

        // Reused tree: three assign → join → clear cycles must each reproduce the
        // fresh run exactly — same per-node distribution, counters and pairs.
        let mut reused = TouchTree::build(a.objects(), 8, 2);
        for round in 0..3 {
            let mut counters = Counters::new();
            reused.assign(b.objects(), &mut counters);
            assert_eq!(
                reused.assigned_b_count(),
                fresh.assigned_b_count(),
                "round {round}: assignment count drifted"
            );
            for idx in reused.node_indices() {
                assert_eq!(
                    reused.node(idx).assigned_b().len(),
                    fresh.node(idx).assigned_b().len(),
                    "round {round}: node {idx} distribution drifted"
                );
            }
            let mut pairs = Vec::new();
            reused.join_assigned(
                &params,
                &mut LocalJoinScratch::new(),
                &mut counters,
                &mut |x, y| {
                    pairs.push((x, y));
                    true
                },
            );
            pairs.sort_unstable();
            assert_eq!(pairs, fresh_pairs, "round {round}: pairs drifted");
            assert_eq!(counters, fresh_counters, "round {round}: counters polluted by reuse");
            reused.clear_assignment();
            assert_eq!(reused.assigned_b_count(), 0);
        }
    }

    #[test]
    fn clear_assignment_resets_the_touched_node_bookkeeping() {
        // Epoch 1 populates one corner of the tree, epoch 2 a different one: stale
        // touched-node state from epoch 1 must not leak into epoch 2's work list.
        let a = lattice(4, 2.0, 1.0); // occupies [0, 7]³
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut near = Dataset::new();
        near.push_mbr(Aabb::new(Point3::splat(0.1), Point3::splat(0.4)));
        let mut counters = Counters::new();
        tree.assign(near.objects(), &mut counters);
        let epoch1_work = tree.nodes_with_assignments();
        assert!(!epoch1_work.is_empty());
        tree.clear_assignment();

        let mut far = Dataset::new();
        far.push_mbr(Aabb::new(Point3::splat(6.2), Point3::splat(6.6)));
        tree.assign(far.objects(), &mut counters);
        let epoch2_work = tree.nodes_with_assignments();
        // Every listed node must actually hold epoch-2 objects; a stale list would
        // resurface epoch-1 nodes with empty B-lists.
        for &idx in &epoch2_work {
            assert!(!tree.node(idx).assigned_b().is_empty(), "stale touched node {idx}");
        }
        let epoch2_fresh: Vec<usize> = {
            let mut t = TouchTree::build(a.objects(), 8, 2);
            t.assign(far.objects(), &mut Counters::new());
            t.nodes_with_assignments()
        };
        assert_eq!(epoch2_work, epoch2_fresh, "epoch 2 work list polluted by epoch 1");
    }

    fn run_join(a: &Dataset, b: &Dataset, kind: LocalJoinKind) -> (Vec<(u32, u32)>, Counters) {
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        let mut pairs = Vec::new();
        tree.join_assigned(
            &test_params(kind),
            &mut LocalJoinScratch::new(),
            &mut counters,
            &mut |x, y| {
                pairs.push((x, y));
                true
            },
        );
        pairs.sort_unstable();
        (pairs, counters)
    }

    #[test]
    fn join_matches_brute_force_for_all_local_join_kinds() {
        let a = lattice(4, 1.5, 1.0); // overlapping-ish lattice
        let b = lattice(5, 1.2, 0.8);
        let expected = brute_pairs(&a, &b);
        assert!(!expected.is_empty());
        for kind in [LocalJoinKind::Grid, LocalJoinKind::PlaneSweep, LocalJoinKind::AllPairs] {
            let (pairs, _) = run_join(&a, &b, kind);
            assert_eq!(pairs, expected, "local join {kind:?} must match brute force");
        }
    }

    #[test]
    fn join_produces_no_duplicates() {
        let a = lattice(4, 1.0, 1.0); // heavily overlapping
        let b = lattice(4, 1.0, 1.0);
        let (pairs, counters) = run_join(&a, &b, LocalJoinKind::Grid);
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(pairs.len(), dedup.len(), "grid local join must not emit duplicates");
        // The reference-point rule must actually have suppressed something in this
        // dense configuration (objects span multiple cells).
        assert!(counters.duplicates_suppressed > 0 || counters.replicas == 0);
    }

    #[test]
    fn fewer_comparisons_than_nested_loop() {
        let a = lattice(6, 3.0, 1.0); // 216 objects, sparse
        let b = lattice(6, 3.0, 1.0);
        let (pairs, counters) = run_join(&a, &b, LocalJoinKind::Grid);
        assert_eq!(pairs, brute_pairs(&a, &b));
        let nested_loop = (a.len() * b.len()) as u64;
        assert!(
            counters.comparisons < nested_loop / 2,
            "TOUCH should do far fewer comparisons than the nested loop ({} vs {})",
            counters.comparisons,
            nested_loop
        );
    }

    #[test]
    fn memoised_grids_do_not_change_the_join() {
        let a = lattice(4, 1.5, 1.0);
        let b = lattice(5, 1.2, 0.8);
        let params = test_params(LocalJoinKind::Grid);

        let run = |tree: &mut TouchTree| {
            let mut counters = Counters::new();
            tree.assign(b.objects(), &mut counters);
            let mut pairs = Vec::new();
            tree.join_assigned(
                &params,
                &mut LocalJoinScratch::new(),
                &mut counters,
                &mut |x, y| {
                    pairs.push((x, y));
                    true
                },
            );
            (pairs, counters)
        };

        let mut plain = TouchTree::build(a.objects(), 8, 2);
        let expected = run(&mut plain);
        assert_eq!(plain.memoised_grid_count(), 0, "no cache unless requested");

        let mut memoised = TouchTree::build(a.objects(), 8, 2);
        memoised.memoise_grids(&params);
        assert!(memoised.memoised_grid_count() > 0, "lattice leaves exceed the cutoff");
        // Emission order, pairs and counters are identical with the cache in place,
        // over repeated epochs.
        for round in 0..3 {
            let got = run(&mut memoised);
            assert_eq!(got, expected, "round {round} diverged with memoised grids");
            memoised.clear_assignment();
        }

        // A join under *different* parameters bypasses the cache instead of using
        // stale geometry: it must agree with a fresh tree run under those params.
        let other = LocalJoinParams { cells_per_dim: 7, ..params };
        let mut fresh = TouchTree::build(a.objects(), 8, 2);
        let mut fresh_counters = Counters::new();
        fresh.assign(b.objects(), &mut fresh_counters);
        let mut fresh_pairs = Vec::new();
        fresh.join_assigned(
            &other,
            &mut LocalJoinScratch::new(),
            &mut fresh_counters,
            &mut |x, y| {
                fresh_pairs.push((x, y));
                true
            },
        );
        let mut stale_counters = Counters::new();
        memoised.assign(b.objects(), &mut stale_counters);
        let mut stale_pairs = Vec::new();
        memoised.join_assigned(
            &other,
            &mut LocalJoinScratch::new(),
            &mut stale_counters,
            &mut |x, y| {
                stale_pairs.push((x, y));
                true
            },
        );
        assert_eq!(stale_pairs, fresh_pairs);
        assert_eq!(stale_counters, fresh_counters);
    }

    #[test]
    fn memoising_grows_the_memory_accounting() {
        let a = lattice(4, 1.5, 1.0);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let before = tree.memory_bytes();
        tree.memoise_grids(&test_params(LocalJoinKind::Grid));
        assert!(tree.memory_bytes() > before, "the grid cache must be charged");
    }

    #[test]
    fn smaller_fanout_gives_taller_tree() {
        let a = lattice(6, 2.0, 1.0);
        let t2 = TouchTree::build(a.objects(), 32, 2);
        let t8 = TouchTree::build(a.objects(), 32, 8);
        assert!(t2.height() > t8.height());
    }

    #[test]
    fn memory_accounting_grows_with_assignment() {
        let a = lattice(4, 2.0, 1.0);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let before = tree.memory_bytes();
        let b = lattice(4, 2.0, 1.0);
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        assert!(tree.memory_bytes() > before);
    }

    /// Ground truth for the incrementally tracked B-list bytes: the full scan.
    fn scanned_b_bytes(tree: &TouchTree) -> usize {
        tree.nodes.iter().map(|n| vec_bytes(&n.b_items)).sum()
    }

    #[test]
    fn incremental_memory_accounting_matches_a_full_scan() {
        let a = lattice(4, 2.0, 1.0);
        let b = lattice(4, 1.7, 0.9);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut counters = Counters::new();
        assert_eq!(tree.b_items_bytes, scanned_b_bytes(&tree));
        tree.assign(b.objects(), &mut counters);
        assert_eq!(tree.b_items_bytes, scanned_b_bytes(&tree), "after assignment");
        // clear keeps the capacities, and the tracked figure must agree.
        tree.clear_assignment();
        assert_eq!(tree.b_items_bytes, scanned_b_bytes(&tree), "after clear");
        tree.assign(b.objects(), &mut counters);
        assert_eq!(tree.b_items_bytes, scanned_b_bytes(&tree), "after reuse");
        // A clone does not inherit capacities; its tracking must match *its* vecs.
        let cloned = tree.clone();
        assert_eq!(cloned.b_items_bytes, scanned_b_bytes(&cloned), "after clone");
        assert_eq!(cloned.assigned_b_count(), tree.assigned_b_count());
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn fanout_one_rejected() {
        let a = lattice(2, 2.0, 1.0);
        let _ = TouchTree::build(a.objects(), 4, 1);
    }

    #[test]
    fn from_tiled_matches_build_when_given_sorted_input() {
        let a = lattice(4, 2.0, 1.0);
        let built = TouchTree::build(a.objects(), 8, 2);
        // Feed build's own tile order back through from_tiled: identical structure.
        let tiled = TouchTree::from_tiled(built.a_objects().to_vec(), 8, 2);
        assert_eq!(built.node_count(), tiled.node_count());
        assert_eq!(built.height(), tiled.height());
        for idx in built.node_indices() {
            assert_eq!(built.node(idx).mbr, tiled.node(idx).mbr);
            assert_eq!(built.node(idx).a_count(), tiled.node(idx).a_count());
        }
    }

    #[test]
    fn from_tiled_is_correct_even_for_unsorted_input() {
        // Tiling quality affects pruning, never correctness: a deliberately
        // scrambled object order must still produce the full result set.
        let a = lattice(4, 1.5, 1.0);
        let b = lattice(5, 1.2, 0.8);
        let mut scrambled = a.objects().to_vec();
        scrambled.sort_by_key(|o| (o.id as usize).wrapping_mul(2654435761) % 1024);
        let mut tree = TouchTree::from_tiled(scrambled, 8, 2);
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        let mut pairs = Vec::new();
        tree.join_assigned(
            &test_params(LocalJoinKind::Grid),
            &mut LocalJoinScratch::new(),
            &mut counters,
            &mut |x, y| {
                pairs.push((x, y));
                true
            },
        );
        pairs.sort_unstable();
        assert_eq!(pairs, brute_pairs(&a, &b));
    }

    #[test]
    fn extend_assigned_matches_assign() {
        let a = lattice(4, 2.0, 1.0);
        let b = lattice(4, 1.7, 0.9);
        let mut counters = Counters::new();

        let mut direct = TouchTree::build(a.objects(), 8, 2);
        direct.assign(b.objects(), &mut counters);

        // Two-step form: compute targets read-only, then apply in one batch.
        let mut two_step = TouchTree::build(a.objects(), 8, 2);
        let mut batch = Vec::new();
        let mut c2 = Counters::new();
        for obj in b.iter() {
            if let Some(node) = two_step.assignment_target(&obj.mbr, &mut c2) {
                batch.push((node, *obj));
            }
        }
        two_step.extend_assigned(batch);

        assert_eq!(direct.assigned_b_count(), two_step.assigned_b_count());
        for idx in direct.node_indices() {
            assert_eq!(
                direct.node(idx).assigned_b().len(),
                two_step.node(idx).assigned_b().len(),
                "node {idx} differs between assign and extend_assigned"
            );
        }
    }

    #[test]
    fn nodes_with_assignments_lists_exactly_the_join_work() {
        let a = lattice(4, 2.0, 1.0);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut counters = Counters::new();
        assert!(tree.nodes_with_assignments().is_empty(), "no work before assignment");
        let b = lattice(4, 1.7, 0.9);
        tree.assign(b.objects(), &mut counters);
        let work = tree.nodes_with_assignments();
        assert!(!work.is_empty());
        for idx in tree.node_indices() {
            let node = tree.node(idx);
            let expected = !node.assigned_b().is_empty() && node.a_count() > 0;
            assert_eq!(work.contains(&idx), expected, "node {idx}");
        }
        // Joining exactly these nodes gives the same pairs as join_assigned.
        let params = test_params(LocalJoinKind::Grid);
        let mut scratch = LocalJoinScratch::new();
        let mut via_list = Vec::new();
        for idx in &work {
            tree.local_join_node(*idx, &params, &mut scratch, &mut counters, &mut |x, y| {
                via_list.push((x, y));
                true
            });
        }
        let mut via_all = Vec::new();
        tree.join_assigned(&params, &mut scratch, &mut counters, &mut |x, y| {
            via_all.push((x, y));
            true
        });
        via_list.sort_unstable();
        via_all.sort_unstable();
        assert_eq!(via_list, via_all);
    }
}

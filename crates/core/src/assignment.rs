//! Reader-owned assignment storage: joining a **frozen, shared** tree.
//!
//! The tree's own assignment paths ([`TouchTree::assign`],
//! [`TouchTree::extend_assigned`]) store the probe objects inside the node
//! structs, which requires `&mut TouchTree` — fine for a single-owner engine,
//! impossible for the serving layer, where many reader threads join against one
//! `Arc`-held generation concurrently. An [`AssignmentBuffer`] moves the
//! per-node B-lists *out of the tree and into the reader*: the descent uses the
//! read-only [`TouchTree::assignment_target`], the lists live in the buffer,
//! and the join phase feeds them back through
//! [`TouchTree::local_join_node_ext`].
//!
//! The buffer reproduces the tree-resident path exactly — same descent, same
//! per-node arrival order, same work-list ordering, same local-join kernels —
//! so pairs *and counters* are bit-identical to [`TouchTree::assign`] +
//! [`TouchTree::join_assigned`] over the same batch (pinned by the tests
//! below and by the serving equivalence suite).

use crate::control::{CancelCause, CancelToken, ExecControl};
use crate::scratch::LocalJoinScratch;
use crate::tree::{LocalJoinParams, TouchTree, ASSIGN_CANCEL_CHUNK};
use touch_geom::{ObjectId, SpatialObject};
use touch_metrics::{vec_bytes, Counters, MemoryUsage, NoTrace, TraceSink};

/// Per-reader B-side assignment over a frozen [`TouchTree`] (see the module
/// docs). Reusable across queries: [`AssignmentBuffer::clear`] keeps the
/// per-node capacities, so a long-lived reader stops allocating once it has
/// seen a typical batch.
#[derive(Debug, Default)]
pub struct AssignmentBuffer {
    /// One B-list per tree node, indexed by node id (lazily sized to the tree).
    lists: Vec<Vec<SpatialObject>>,
    /// Nodes holding at least one assigned object, in first-assignment order —
    /// the same bookkeeping the tree itself keeps, so clearing and work-list
    /// construction are O(touched).
    touched: Vec<u32>,
    assigned: u64,
}

impl AssignmentBuffer {
    /// An empty buffer (binds to a tree on first [`AssignmentBuffer::assign`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects currently assigned.
    #[inline]
    pub fn assigned_count(&self) -> usize {
        self.assigned as usize
    }

    /// The objects assigned to `node`, in arrival order.
    #[inline]
    pub fn node_objects(&self, node: usize) -> &[SpatialObject] {
        self.lists.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Assigns every object of `batch` against `tree` (Algorithm 3), storing
    /// the results in this buffer instead of the tree. Counter-for-counter
    /// identical to [`TouchTree::assign`]: the descent is the same read-only
    /// [`TouchTree::assignment_target`], and filtered objects are recorded the
    /// same way.
    pub fn assign(&mut self, tree: &TouchTree, batch: &[SpatialObject], counters: &mut Counters) {
        if self.lists.len() < tree.node_count() {
            self.lists.resize_with(tree.node_count(), Vec::new);
        }
        for obj in batch {
            match tree.assignment_target(&obj.mbr, counters) {
                Some(node) => {
                    let list = &mut self.lists[node];
                    if list.is_empty() {
                        self.touched.push(node as u32);
                    }
                    list.push(*obj);
                    self.assigned += 1;
                }
                None => counters.record_filtered(),
            }
        }
    }

    /// Cancellable [`AssignmentBuffer::assign`]: polls `cancel` once per
    /// [`ASSIGN_CANCEL_CHUNK`]-object chunk and stops assigning when it trips,
    /// returning the cause. Everything assigned before the trip stays in the
    /// buffer and is counted, so a cancelled query's partial counters are an
    /// honest account; an untriggered token is bit-identical to `assign`.
    pub fn assign_ctl(
        &mut self,
        tree: &TouchTree,
        batch: &[SpatialObject],
        counters: &mut Counters,
        cancel: &CancelToken,
    ) -> Option<CancelCause> {
        for chunk in batch.chunks(ASSIGN_CANCEL_CHUNK) {
            if let Some(cause) = cancel.triggered() {
                return Some(cause);
            }
            self.assign(tree, chunk, counters);
        }
        None
    }

    /// Drops every assignment, keeping the per-node capacities (O(touched)).
    pub fn clear(&mut self) {
        for &node in &self.touched {
            self.lists[node as usize].clear();
        }
        self.touched.clear();
        self.assigned = 0;
    }

    /// Runs the join phase (Algorithm 4) of this buffer's assignments against
    /// `tree` — the external-B mirror of [`TouchTree::join_assigned`], with the
    /// identical work-list ordering and early-termination protocol. Returns the
    /// bytes the scratch has reserved.
    pub fn join(
        &self,
        tree: &TouchTree,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
    ) -> usize {
        self.join_traced(tree, params, scratch, counters, emit, &NoTrace, 0)
    }

    /// Traced form of [`AssignmentBuffer::join`]: per-node spans attributed to
    /// `worker`, exactly like [`TouchTree::join_assigned_traced`].
    #[allow(clippy::too_many_arguments)]
    pub fn join_traced(
        &self,
        tree: &TouchTree,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
        trace: &dyn TraceSink,
        worker: usize,
    ) -> usize {
        let (bytes, cause) = self.join_ctl(
            tree,
            params,
            scratch,
            counters,
            emit,
            ExecControl::with_trace(trace),
            worker,
        );
        debug_assert!(cause.is_none(), "never-triggering token cannot cancel");
        bytes
    }

    /// Cancellable [`AssignmentBuffer::join_traced`]: polls `ctl.cancel` before
    /// every per-node local join and abandons the remaining work list when it
    /// trips, returning the cause alongside the scratch bytes. Pairs already
    /// emitted and their counters stand; an untriggered token is bit-identical
    /// to the traced path (which is this, with a never-triggering token).
    #[allow(clippy::too_many_arguments)]
    pub fn join_ctl(
        &self,
        tree: &TouchTree,
        params: &LocalJoinParams,
        scratch: &mut LocalJoinScratch,
        counters: &mut Counters,
        emit: &mut impl FnMut(ObjectId, ObjectId) -> bool,
        ctl: ExecControl<'_>,
        worker: usize,
    ) -> (usize, Option<CancelCause>) {
        let mut work = std::mem::take(&mut scratch.work);
        self.work_into(tree, &mut work);
        let mut stopped = false;
        let mut cause = None;
        for &idx in &work {
            if let Some(c) = ctl.cancel.triggered() {
                cause = Some(c);
                break;
            }
            let mut watched = |a: ObjectId, b: ObjectId| {
                let go_on = emit(a, b);
                stopped = !go_on;
                go_on
            };
            tree.local_join_node_ext_traced(
                idx,
                &self.lists[idx],
                params,
                scratch,
                counters,
                &mut watched,
                ctl.trace,
                worker,
            );
            if stopped {
                break;
            }
        }
        scratch.work = work;
        (scratch.memory_bytes(), cause)
    }

    /// Refills `work` with the nodes the join phase has to visit — assigned
    /// objects over a non-empty A-subtree, ascending node-index order — the
    /// buffer-side mirror of [`TouchTree::nodes_with_assignments_into`].
    pub fn work_into(&self, tree: &TouchTree, work: &mut Vec<usize>) {
        work.clear();
        work.extend(
            self.touched
                .iter()
                .map(|&idx| idx as usize)
                .filter(|&idx| tree.node(idx).a_count() > 0),
        );
        work.sort_unstable();
    }
}

impl MemoryUsage for AssignmentBuffer {
    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.lists)
            + self.lists.iter().map(vec_bytes).sum::<usize>()
            + vec_bytes(&self.touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Dataset, Point3};

    fn lattice(side: usize, spacing: f64, box_side: f64, offset: f64) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(
                        x as f64 * spacing + offset,
                        y as f64 * spacing + offset,
                        z as f64 * spacing + offset,
                    );
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
                }
            }
        }
        ds
    }

    fn params() -> LocalJoinParams {
        LocalJoinParams {
            kind: crate::LocalJoinKind::Grid,
            cells_per_dim: 10,
            min_cell_size: 0.5,
            allpairs_max_a: 4,
            adapt: None,
        }
    }

    /// The buffer path over a frozen tree must be bit-identical — pairs in
    /// emission order AND counters — to the tree-resident assign + join.
    #[test]
    fn external_assignment_matches_the_tree_resident_path() {
        let a = lattice(4, 1.5, 1.0, 0.0);
        let b = lattice(5, 1.2, 0.8, 0.3);

        let mut resident = TouchTree::build(a.objects(), 8, 2);
        let mut resident_counters = Counters::new();
        resident.assign(b.objects(), &mut resident_counters);
        let mut resident_pairs = Vec::new();
        resident.join_assigned(
            &params(),
            &mut LocalJoinScratch::new(),
            &mut resident_counters,
            &mut |x, y| {
                resident_pairs.push((x, y));
                true
            },
        );

        let frozen = TouchTree::build(a.objects(), 8, 2);
        let mut buffer = AssignmentBuffer::new();
        let mut counters = Counters::new();
        buffer.assign(&frozen, b.objects(), &mut counters);
        assert_eq!(buffer.assigned_count(), resident.assigned_b_count());
        let mut pairs = Vec::new();
        buffer.join(
            &frozen,
            &params(),
            &mut LocalJoinScratch::new(),
            &mut counters,
            &mut |x, y| {
                pairs.push((x, y));
                true
            },
        );

        assert_eq!(pairs, resident_pairs, "emission order must match the resident path");
        assert_eq!(counters, resident_counters, "counters must match the resident path");
    }

    /// Clearing must leave the buffer indistinguishable from a fresh one, and
    /// the frozen tree must stay untouched throughout.
    #[test]
    fn clear_resets_for_the_next_query_and_never_touches_the_tree() {
        let a = lattice(3, 2.0, 1.0, 0.0);
        let b = lattice(3, 1.8, 1.1, 0.4);
        let frozen = TouchTree::build(a.objects(), 4, 2);

        let mut buffer = AssignmentBuffer::new();
        let mut reference: Option<(Vec<(u32, u32)>, Counters)> = None;
        for round in 0..3 {
            let mut counters = Counters::new();
            buffer.assign(&frozen, b.objects(), &mut counters);
            let mut pairs = Vec::new();
            buffer.join(
                &frozen,
                &params(),
                &mut LocalJoinScratch::new(),
                &mut counters,
                &mut |x, y| {
                    pairs.push((x, y));
                    true
                },
            );
            match &reference {
                None => reference = Some((pairs, counters)),
                Some(expected) => {
                    assert_eq!(&(pairs, counters), expected, "round {round} drifted");
                }
            }
            buffer.clear();
            assert_eq!(buffer.assigned_count(), 0);
            let mut work = Vec::new();
            buffer.work_into(&frozen, &mut work);
            assert!(work.is_empty(), "no join work after a clear");
        }
        assert_eq!(frozen.assigned_b_count(), 0, "the frozen tree must never hold assignments");
    }

    /// Early termination follows the same protocol as the tree path: `false`
    /// from the emit closure abandons the remaining nodes.
    #[test]
    fn join_honours_early_termination() {
        let a = lattice(4, 1.5, 1.0, 0.0);
        let b = lattice(4, 1.5, 1.0, 0.2);
        let frozen = TouchTree::build(a.objects(), 8, 2);
        let mut buffer = AssignmentBuffer::new();
        let mut counters = Counters::new();
        buffer.assign(&frozen, b.objects(), &mut counters);
        let mut taken = 0u64;
        buffer.join(
            &frozen,
            &params(),
            &mut LocalJoinScratch::new(),
            &mut counters,
            &mut |_, _| {
                taken += 1;
                taken < 5
            },
        );
        assert_eq!(taken, 5, "the join must stop at the fifth pair");
    }

    #[test]
    fn memory_accounting_grows_with_assignment() {
        let a = lattice(3, 2.0, 1.0, 0.0);
        let frozen = TouchTree::build(a.objects(), 4, 2);
        let mut buffer = AssignmentBuffer::new();
        let before = buffer.memory_bytes();
        let mut counters = Counters::new();
        buffer.assign(&frozen, lattice(3, 2.0, 1.0, 0.1).objects(), &mut counters);
        assert!(buffer.memory_bytes() > before);
    }
}

//! `perfsmoke` — the repo's recorded performance trajectory and regression gate.
//!
//! Runs the three TOUCH engines (sequential, parallel, streaming) **plus the
//! auto-planner** (`Engine::Auto` at a pinned 4-thread budget) **plus the
//! serving layer** (`JoinServer` snapshot queries under a per-rep
//! mutate/publish cycle) **plus the tick loop** (`touch-sim` kernel mode, a
//! pinned moving world self-joined for a fixed tick count) over pinned
//! synthetic workloads and writes
//! `BENCH_core.json` with **wall-time derived
//! throughput** (pairs/sec, join-phase pairs/sec), the **machine-independent
//! work counters** (comparisons, node tests, replicas) and — for planned runs —
//! the **chosen plan** for every engine × workload cell. The counters are
//! deterministic — they let a single-core CI sandbox record a meaningful trend
//! even when its wall-clock numbers are noisy; the throughput columns are what a
//! quiet multicore box compares across commits.
//!
//! Usage:
//!
//! ```text
//! cargo run -p touch-bench --release --bin perfsmoke -- [--smoke] \
//!     [--scale <f>] [--reps <n>] [--out <path>] [--gate <baseline.json>] \
//!     [--trace <trace.json>]
//! ```
//!
//! `--smoke` is the quick mode: a tiny scale and few repetitions, enough to
//! prove the harness runs. `--gate <baseline>` is the CI mode: the run replays
//! the committed baseline's scale and then **fails (exit 3) if any
//! machine-independent counter regressed** — pairs must match exactly,
//! comparisons / node tests / replicas must not exceed the baseline, and every
//! violation names the counter plus its absolute and relative delta. Wall-clock
//! throughput stays advisory (CI boxes are noisy); updating the committed
//! `BENCH_core.json` is the deliberate act that moves the bar.
//!
//! Every cell additionally runs **one dedicated traced repetition** (outside
//! the timed reps, so the recorded wall numbers stay untraced): the per-node
//! candidate-count skew percentiles it yields are machine-independent and are
//! recorded as `cand_p50`/`cand_p90`/`cand_p99` per cell and echoed in the
//! advisory output. `--trace <path>` additionally writes the traced parallel
//! run of the first (grid-heavy) workload as a Chrome `trace_events` JSON file
//! (load it at `chrome://tracing` or <https://ui.perfetto.dev>).

use std::time::Instant;
use touch::{AutoEngine, TickConfig, TickEngine, World};
use touch_core::{CountingSink, JoinOrder, SpatialJoinAlgorithm, TouchConfig, TouchJoin};
use touch_datagen::SyntheticDistribution;
use touch_experiments::{workload, Context};
use touch_geom::Dataset;
use touch_geom::{Aabb, Point3};
use touch_metrics::{ExecTrace, Phase, RunReport, TraceSink, TraceSummary};
use touch_parallel::{ParallelConfig, ParallelTouchJoin};
use touch_serve::{JoinServer, ServeConfig};
use touch_streaming::{StreamingConfig, StreamingTouchJoin};

/// One pinned workload: its datasets plus the TOUCH configuration every engine runs
/// with (pinned so the numbers stay comparable across commits).
struct Workload {
    name: &'static str,
    a: Dataset,
    b: Dataset,
    eps: f64,
    cfg: TouchConfig,
}

/// The measurement of one engine on one workload.
struct Cell {
    engine: String,
    threads: usize,
    epochs: usize,
    pairs: u64,
    comparisons: u64,
    node_tests: u64,
    replicas: u64,
    /// Candidate lanes fed through the batched MBR filter (machine-independent,
    /// like the other work counters: the batch decomposition is pinned by the
    /// plan, not by the host's SIMD width).
    batch_lanes: u64,
    /// Lanes the batched filter passed on to exact confirmation.
    batch_hits: u64,
    /// Best (minimum) wall-clock total over the repetitions, in seconds.
    wall_s: f64,
    /// Best join-phase time over the repetitions, in seconds.
    join_s: f64,
    reps: usize,
    /// The compact plan string of planned runs (what the Auto row chose; the
    /// fixed engines record their translated configuration).
    plan: Option<String>,
    /// The execution-trace summary of the dedicated traced repetition; its
    /// candidate-count percentiles are the machine-independent skew record.
    trace: Option<TraceSummary>,
}

impl Cell {
    fn from_runs(engine: String, reports: &[RunReport], trace: Option<TraceSummary>) -> Cell {
        let best = reports
            .iter()
            .min_by(|p, q| p.total_time().partial_cmp(&q.total_time()).unwrap())
            .expect("at least one rep");
        let join_s =
            reports.iter().map(|r| r.timer.get(Phase::Join).as_secs_f64()).fold(f64::MAX, f64::min);
        Cell {
            engine,
            threads: best.threads,
            epochs: best.epochs,
            pairs: best.result_pairs(),
            comparisons: best.counters.comparisons,
            node_tests: best.counters.node_tests,
            replicas: best.counters.replicas,
            batch_lanes: best.counters.batch_lanes,
            batch_hits: best.counters.batch_hits,
            wall_s: best.total_time().as_secs_f64(),
            join_s,
            reps: reports.len(),
            plan: best.plan.as_ref().map(|p| p.compact()),
            trace,
        }
    }

    /// The per-node candidate-count percentiles of the traced repetition:
    /// `(p50, p90, p99)`. Deterministic for a pinned workload — the traced run
    /// visits the same nodes and counts the same candidates every time.
    fn skew(&self) -> Option<(u64, u64, u64)> {
        self.trace.as_ref().map(|t| {
            (
                t.candidates.percentile(0.50),
                t.candidates.percentile(0.90),
                t.candidates.percentile(0.99),
            )
        })
    }

    fn to_json(&self) -> String {
        let pps = if self.wall_s > 0.0 { self.pairs as f64 / self.wall_s } else { 0.0 };
        let jpps = if self.join_s > 0.0 { self.pairs as f64 / self.join_s } else { 0.0 };
        let plan = match &self.plan {
            Some(p) => format!(",\"plan\":{}", json_str(p)),
            None => String::new(),
        };
        let skew = match self.skew() {
            Some((p50, p90, p99)) => format!(
                ",\"nodes\":{},\"cand_p50\":{p50},\"cand_p90\":{p90},\"cand_p99\":{p99}",
                self.trace.as_ref().map(|t| t.candidates.count).unwrap_or(0),
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"engine\":{},\"threads\":{},\"epochs\":{},\"pairs\":{},",
                "\"comparisons\":{},\"node_tests\":{},\"replicas\":{},",
                "\"batch_lanes\":{},\"batch_hits\":{},",
                "\"wall_s\":{:.6},\"join_s\":{:.6},",
                "\"pairs_per_sec\":{:.1},\"join_pairs_per_sec\":{:.1},\"reps\":{}{}{}}}"
            ),
            json_str(&self.engine),
            self.threads,
            self.epochs,
            self.pairs,
            self.comparisons,
            self.node_tests,
            self.replicas,
            self.batch_lanes,
            self.batch_hits,
            self.wall_s,
            self.join_s,
            pps,
            jpps,
            self.reps,
            skew,
            plan,
        )
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// One baseline counter record parsed back out of a committed trajectory file.
struct BaselineCell {
    workload: String,
    engine: String,
    pairs: u64,
    comparisons: u64,
    node_tests: u64,
    replicas: u64,
}

/// Extracts the raw text of `"key":<value>` from one flat JSON object (our own
/// pinned `touch-bench-core/v1` format — scalar fields, no nested objects
/// inside engine cells).
fn json_field<'j>(obj: &'j str, key: &str) -> Option<&'j str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_u64(obj: &str, key: &str) -> Option<u64> {
    json_field(obj, key)?.parse().ok()
}

/// Parses the counter cells of a `touch-bench-core/v1` baseline file, returning
/// its scale and every (workload, engine) counter record.
fn parse_baseline(json: &str) -> Result<(f64, Vec<BaselineCell>), String> {
    if !json.contains("touch-bench-core/v1") {
        return Err("baseline is not a touch-bench-core/v1 file".into());
    }
    let scale: f64 = json_field(json, "scale")
        .and_then(|v| v.parse().ok())
        .ok_or("baseline has no scale field")?;
    let mut cells = Vec::new();
    // Workload chunks start at `{"name":…`; engine chunks at `{"engine":…`.
    for wl_chunk in json.split("{\"name\":").skip(1) {
        let workload = wl_chunk.trim_start().trim_start_matches('"');
        let workload: String = workload.chars().take_while(|&c| c != '"').collect();
        for engine_chunk in wl_chunk.split("{\"engine\":").skip(1) {
            // The chunk starts right after the split token, i.e. with the quoted
            // engine name itself.
            let engine: String = engine_chunk
                .trim_start()
                .trim_start_matches('"')
                .chars()
                .take_while(|&c| c != '"')
                .collect();
            let parse = |key: &str| {
                json_u64(engine_chunk, key)
                    .ok_or_else(|| format!("baseline cell {workload}/{engine} lacks {key}"))
            };
            let (pairs, comparisons, node_tests, replicas) =
                (parse("pairs")?, parse("comparisons")?, parse("node_tests")?, parse("replicas")?);
            cells.push(BaselineCell {
                workload: workload.clone(),
                engine,
                pairs,
                comparisons,
                node_tests,
                replicas,
            });
        }
    }
    if cells.is_empty() {
        return Err("baseline contains no engine cells".into());
    }
    Ok((scale, cells))
}

/// The regression gate: every baseline cell must be matched by the current run
/// with **equal pairs** and **no higher** comparisons / node tests / replicas —
/// the machine-independent work counters. Returns the list of violations.
fn gate_violations(baseline: &[BaselineCell], current: &[(String, Vec<Cell>)]) -> Vec<String> {
    let mut violations = Vec::new();
    for base in baseline {
        let cell = current
            .iter()
            .find(|(name, _)| *name == base.workload)
            .and_then(|(_, cells)| cells.iter().find(|c| c.engine == base.engine));
        let Some(cell) = cell else {
            violations.push(format!(
                "{}/{}: present in the baseline but missing from this run",
                base.workload, base.engine
            ));
            continue;
        };
        let mut check = |what: &str, now: u64, then: u64, exact: bool| {
            let bad = if exact { now != then } else { now > then };
            if bad {
                let delta = now as i128 - then as i128;
                let pct = if then > 0 {
                    format!(", {:+.2}%", 100.0 * delta as f64 / then as f64)
                } else {
                    String::new()
                };
                violations.push(format!(
                    "{}/{}: {what} regressed: {now} vs baseline {then} ({delta:+}{pct})",
                    base.workload, base.engine
                ));
            }
        };
        check("pairs", cell.pairs, base.pairs, true);
        check("comparisons", cell.comparisons, base.comparisons, false);
        check("node_tests", cell.node_tests, base.node_tests, false);
        check("replicas", cell.replicas, base.replicas, false);
    }
    violations
}

/// The pinned workloads. Two shapes the engines stress differently:
///
/// * `grid_uniform` — uniform data at paper density with a wide ε and coarse
///   partitioning, so the join phase is dominated by **grid local joins** over
///   well-filled nodes (the kernel the CSR directory targets).
/// * `clustered_filter` — clustered data over a sparse uniform probe side: deep
///   assignment descents, heavy filtering, many small nodes (the kernel the flat
///   MBR descent targets).
fn workloads(ctx: &Context) -> Vec<Workload> {
    let grid_cfg =
        TouchConfig { partitions: 64, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() };
    let cluster_cfg = TouchConfig { join_order: JoinOrder::TreeOnA, ..TouchConfig::default() };
    vec![
        Workload {
            name: "grid_uniform",
            a: workload::synthetic(ctx, 160_000, SyntheticDistribution::Uniform, ctx.seed_a),
            b: workload::synthetic(ctx, 160_000, SyntheticDistribution::Uniform, ctx.seed_b),
            eps: 3.0,
            cfg: grid_cfg,
        },
        Workload {
            name: "clustered_filter",
            a: workload::synthetic(
                ctx,
                160_000,
                SyntheticDistribution::paper_clustered(),
                ctx.seed_a,
            ),
            b: workload::synthetic(ctx, 160_000, SyntheticDistribution::Uniform, ctx.seed_b),
            eps: 1.5,
            cfg: cluster_cfg,
        },
    ]
}

fn run_one_shot(algo: &dyn SpatialJoinAlgorithm, w: &Workload, reps: usize) -> Vec<RunReport> {
    (0..reps)
        .map(|_| {
            let mut sink = CountingSink::new();
            touch_core::JoinQuery::new(&w.a, &w.b)
                .within_distance(w.eps)
                .engine(algo)
                .run(&mut sink)
        })
        .collect()
}

/// Streaming: build once per rep, push the probe side in `epochs` batches, report
/// the cumulative record (build charged once + per-epoch work summed).
fn run_streaming(w: &Workload, epochs: usize, reps: usize) -> Vec<RunReport> {
    (0..reps)
        .map(|_| {
            let cfg = StreamingConfig { touch: w.cfg, ..StreamingConfig::default() };
            let mut engine = StreamingTouchJoin::build_extended(&w.a, w.eps, cfg);
            let mut sink = CountingSink::new();
            let chunk = w.b.len().div_ceil(epochs).max(1);
            for batch in w.b.objects().chunks(chunk) {
                let _ = engine.push_batch(batch, &mut sink);
            }
            engine.cumulative_report()
        })
        .collect()
}

/// Serving: one [`JoinServer`] over A, and per rep one full mutation cycle —
/// insert a far-away dummy, publish the folded generation, run the **measured
/// snapshot query** against it, then remove the dummy and publish again to
/// restore the original tiling. The measured path therefore exercises real
/// generation rotation every rep while the queried tree stays geometrically
/// identical (the dummy sits outside the data extent and the fold appends it
/// deterministically), so the recorded counters are machine-independent.
/// Like the streaming engine, the server holds the **ε-extended** A
/// ([`Dataset::extended`]), so its intersection queries answer the same
/// within-distance predicate as the other rows.
fn run_serve(w: &Workload, reps: usize) -> Vec<RunReport> {
    let a = w.a.extended(w.eps);
    let server = JoinServer::new(&a, ServeConfig { touch: w.cfg, ..ServeConfig::default() });
    let mut reader = server.reader();
    (0..reps)
        .map(|_| {
            let id = server.insert(serve_dummy(&a));
            server.publish();
            let mut sink = CountingSink::new();
            let report = reader.query(w.b.objects(), &mut sink);
            assert!(server.remove(id));
            server.publish();
            report
        })
        .collect()
}

/// Ticks per tick-loop repetition: enough to reach the reuse steady state
/// (tree buffer, scratch, plan) while keeping the smoke runtime small.
const TICKS_PER_REP: usize = 8;

/// Tick loop: a moving world of |A| entities (derived from the workload's seed)
/// joined with itself every tick for [`TICKS_PER_REP`] ticks, kernel mode at a
/// pinned 4-thread budget, counting only. The recorded counters are the ticks'
/// cumulative work — deterministic for the pinned world, so the gate covers the
/// simulation path like any one-shot engine; the wall clock is the whole run,
/// making `pairs_per_sec` the loop's sustained pair throughput.
fn run_tick(w: &Workload, ctx: &Context, reps: usize) -> Vec<RunReport> {
    (0..reps)
        .map(|_| {
            let config = TickConfig::default().with_epsilon(w.eps).with_threads(4).counting_only();
            let mut engine = TickEngine::new(World::random(w.a.len(), ctx.seed_a), config);
            let started = Instant::now();
            engine.run(TICKS_PER_REP);
            let mut report = RunReport::new("tick", w.a.len(), w.a.len());
            report.epsilon = w.eps;
            report.threads = engine.plan().threads();
            report.counters = *engine.counters();
            report.timer.add(Phase::Join, started.elapsed());
            report.ticks = Some(engine.summary().clone());
            report
        })
        .collect()
}

/// A unit box strictly outside the dataset extent: folded in and out of the
/// served generation without ever joining with anything.
fn serve_dummy(a: &Dataset) -> Aabb {
    let at = a.extent().expect("non-empty workload").max + Point3::splat(10.0);
    Aabb::new(at, at + Point3::splat(1.0))
}

/// The serving counterpart of [`trace_one_shot`]: one traced mutation cycle
/// (publish spans included) outside the timed reps.
fn trace_serve(w: &Workload) -> (Option<TraceSummary>, ExecTrace) {
    let trace = ExecTrace::new();
    let a = w.a.extended(w.eps);
    let server = JoinServer::new(&a, ServeConfig { touch: w.cfg, ..ServeConfig::default() });
    let mut reader = server.reader();
    let id = server.insert(serve_dummy(&a));
    server.publish_traced(&trace);
    let mut sink = CountingSink::new();
    let _ = reader.query_traced(w.b.objects(), &mut sink, &trace);
    assert!(server.remove(id));
    server.publish_traced(&trace);
    (trace.summary(), trace)
}

/// One dedicated traced repetition of a one-shot engine, outside the timed
/// reps: returns the trace summary for the cell record plus the raw trace (the
/// `--trace` export). Tracing is observational — the traced run produces the
/// same pairs and counters as the timed ones — so only its skew record is kept.
fn trace_one_shot(
    algo: &dyn SpatialJoinAlgorithm,
    w: &Workload,
) -> (Option<TraceSummary>, ExecTrace) {
    let trace = ExecTrace::new();
    let mut sink = CountingSink::new();
    let report = touch_core::JoinQuery::new(&w.a, &w.b)
        .within_distance(w.eps)
        .engine(algo)
        .trace(&trace)
        .run(&mut sink);
    (report.trace, trace)
}

/// The streaming counterpart of [`trace_one_shot`]: one traced pass of the
/// epoch loop that [`run_streaming`] times.
fn trace_streaming(w: &Workload, epochs: usize) -> (Option<TraceSummary>, ExecTrace) {
    let cfg = StreamingConfig { touch: w.cfg, ..StreamingConfig::default() };
    let trace = ExecTrace::new();
    let mut engine = StreamingTouchJoin::build_extended(&w.a, w.eps, cfg);
    let mut sink = CountingSink::new();
    let chunk = w.b.len().div_ceil(epochs).max(1);
    for batch in w.b.objects().chunks(chunk) {
        let _ = engine.push_batch_traced(batch, &mut sink, &trace);
    }
    (trace.summary(), trace)
}

/// Exits with the experiment binaries' bad-argument convention: one line on
/// stderr, status 2.
fn usage_error(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.15f64;
    let mut reps = 5usize;
    // Smoke mode defaults to its own output file so a casual `--smoke` run can
    // never clobber the committed full-mode trajectory record; CI passes
    // `--out` explicitly to name its artifact.
    let mut out: Option<String> = None;
    let mut mode = "full";
    let mut gate: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        match args.get(i) {
            Some(v) => v.clone(),
            None => usage_error(format_args!("missing value after {flag}")),
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                mode = "smoke";
                scale = 0.005;
                reps = 2;
            }
            "--scale" => {
                i += 1;
                scale = value(&args, i, "--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale takes a float"));
            }
            "--reps" => {
                i += 1;
                reps = value(&args, i, "--reps")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--reps takes an integer"));
            }
            "--out" => {
                i += 1;
                out = Some(value(&args, i, "--out"));
            }
            "--gate" => {
                i += 1;
                gate = Some(value(&args, i, "--gate"));
            }
            "--trace" => {
                i += 1;
                trace_out = Some(value(&args, i, "--trace"));
            }
            other => usage_error(format_args!("unknown flag {other}")),
        }
        i += 1;
    }

    // Gate mode replays the baseline's scale: the machine-independent counters
    // are only comparable over identical workloads.
    let baseline = gate.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage_error(format_args!("cannot read {path}: {e}")));
        let (base_scale, cells) =
            parse_baseline(&text).unwrap_or_else(|e| usage_error(format_args!("{path}: {e}")));
        mode = "gate";
        scale = base_scale;
        (path, cells)
    });

    if !(scale > 0.0 && scale <= 1.0) {
        usage_error("--scale must be in (0, 1]");
    }
    if reps == 0 {
        usage_error("--reps must be at least 1");
    }
    let out = out.unwrap_or_else(|| {
        String::from(if mode == "full" { "BENCH_core.json" } else { "BENCH_core.smoke.json" })
    });

    let ctx = Context::new(scale);
    let started = Instant::now();
    let mut results: Vec<(String, Vec<Cell>)> = Vec::new();
    let mut wl_json = Vec::new();
    // The Chrome trace export of the first (grid-heavy) workload's parallel run.
    let mut chrome_json: Option<String> = None;
    for w in workloads(&ctx) {
        eprintln!(
            "[perfsmoke] workload {} (|A|={}, |B|={}, eps={})",
            w.name,
            w.a.len(),
            w.b.len(),
            w.eps
        );
        let mut cells = Vec::new();

        let touch = TouchJoin::new(w.cfg);
        let (summary, _) = trace_one_shot(&touch, &w);
        cells.push(Cell::from_runs("touch".into(), &run_one_shot(&touch, &w, reps), summary));

        let par = ParallelTouchJoin::new(ParallelConfig {
            threads: 4,
            touch: w.cfg,
            ..ParallelConfig::default()
        });
        let (summary, par_trace) = trace_one_shot(&par, &w);
        cells.push(Cell::from_runs("parallel".into(), &run_one_shot(&par, &w, reps), summary));
        if trace_out.is_some() && chrome_json.is_none() {
            chrome_json = Some(par_trace.to_chrome_json());
        }

        let (summary, _) = trace_streaming(&w, 4);
        cells.push(Cell::from_runs("streaming".into(), &run_streaming(&w, 4, reps), summary));

        let (summary, _) = trace_serve(&w);
        cells.push(Cell::from_runs("serve".into(), &run_serve(&w, reps), summary));

        // The auto-planner at a pinned 4-thread budget (Engine::Auto proper would
        // detect the local core count, which would make the recorded plan — and
        // on tiny boxes the strategy — machine-dependent). The recorded plan
        // column shows what the planner chose for this workload.
        let auto = AutoEngine::with_threads(4);
        let (summary, _) = trace_one_shot(&auto, &w);
        cells.push(Cell::from_runs("auto".into(), &run_one_shot(&auto, &w, reps), summary));

        cells.push(Cell::from_runs("tick".into(), &run_tick(&w, &ctx, reps), None));

        for c in &cells {
            let skew = c
                .skew()
                .map(|(p50, p90, p99)| format!("  cand p50/p90/p99={p50}/{p90}/{p99}"))
                .unwrap_or_default();
            eprintln!(
                "[perfsmoke]   {:<10} pairs={} comparisons={} wall={:.4}s join={:.4}s ({:.0} pairs/s){}{}",
                c.engine,
                c.pairs,
                c.comparisons,
                c.wall_s,
                c.join_s,
                if c.wall_s > 0.0 { c.pairs as f64 / c.wall_s } else { 0.0 },
                skew,
                c.plan.as_deref().map(|p| format!("  plan={p}")).unwrap_or_default(),
            );
        }
        wl_json.push(format!(
            "{{\"name\":{},\"a\":{},\"b\":{},\"eps\":{},\"engines\":[{}]}}",
            json_str(w.name),
            w.a.len(),
            w.b.len(),
            w.eps,
            cells.iter().map(Cell::to_json).collect::<Vec<_>>().join(",")
        ));
        results.push((w.name.to_string(), cells));
    }

    let json = format!(
        "{{\"schema\":\"touch-bench-core/v1\",\"mode\":{},\"scale\":{},\"reps\":{},\"workloads\":[{}]}}\n",
        json_str(mode),
        scale,
        reps,
        wl_json.join(",")
    );
    std::fs::write(&out, &json).expect("write BENCH_core.json");
    eprintln!("[perfsmoke] wrote {out} in {:.1}s", started.elapsed().as_secs_f64());

    if let Some(path) = &trace_out {
        let chrome = chrome_json.expect("the first workload always runs the parallel engine");
        std::fs::write(path, &chrome).expect("write Chrome trace");
        eprintln!("[perfsmoke] wrote Chrome trace of grid_uniform/parallel to {path}");
    }

    if let Some((path, baseline_cells)) = baseline {
        let violations = gate_violations(&baseline_cells, &results);
        if violations.is_empty() {
            eprintln!(
                "[perfsmoke] gate vs {path}: OK ({} cells, no counter regressions)",
                baseline_cells.len()
            );
        } else {
            eprintln!("[perfsmoke] gate vs {path}: FAILED");
            for v in &violations {
                eprintln!("[perfsmoke]   {v}");
            }
            eprintln!(
                "[perfsmoke] counters are deterministic: a regression here means the \
                 join does more work than the committed baseline. If the increase is \
                 intentional, regenerate BENCH_core.json (cargo run -p touch-bench \
                 --release --bin perfsmoke) and commit it."
            );
            std::process::exit(3);
        }
    }
}

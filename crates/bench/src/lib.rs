//! Shared helpers for the Criterion benchmarks that regenerate the paper's tables and
//! figures at laptop scale.
//!
//! Each bench target in `benches/` corresponds to one table or figure of the TOUCH
//! evaluation (see DESIGN.md §5) and reuses the experiment harness's constant-density
//! workload scaling so the relative timings it produces have the same shape as the
//! paper's plots. The default benchmark scale is deliberately small
//! ([`BENCH_SCALE`] = 0.2 % of the paper's cardinalities) so `cargo bench` finishes in
//! minutes; the experiment binaries in `touch-experiments` are the tool for larger
//! runs.

use touch_core::{CountingSink, JoinQuery, SpatialJoinAlgorithm};
use touch_experiments::{workload, Context};
use touch_geom::Dataset;

/// Fraction of the paper's dataset cardinalities used by the benchmarks.
pub const BENCH_SCALE: f64 = 0.002;

/// The experiment context all benchmarks share.
pub fn bench_context() -> Context {
    Context::new(BENCH_SCALE)
}

/// Generates the synthetic dataset for `paper_count` objects of `dist`, scaled for
/// the benchmark context.
pub fn synthetic(
    paper_count: usize,
    dist: touch_datagen::SyntheticDistribution,
    seed: u64,
) -> Dataset {
    workload::synthetic(&bench_context(), paper_count, dist, seed)
}

/// Runs one ε-distance join in counting mode and returns the number of result pairs
/// (returned so Criterion cannot optimise the join away).
pub fn run_distance_join(
    algo: &dyn SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
    eps: f64,
) -> u64 {
    let report =
        JoinQuery::new(a, b).within_distance(eps).engine(algo).run(&mut CountingSink::new());
    report.result_pairs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::TouchJoin;
    use touch_datagen::SyntheticDistribution;

    #[test]
    fn helpers_produce_runnable_workloads() {
        let a = synthetic(160_000, SyntheticDistribution::Uniform, 1);
        let b = synthetic(160_000, SyntheticDistribution::Uniform, 2);
        assert!(a.len() >= 64 && b.len() >= 64);
        let pairs = run_distance_join(&TouchJoin::default(), &a, &b, 10.0);
        // At constant density a 10-unit distance join over these sizes finds pairs.
        assert!(pairs > 0);
    }
}

//! Figure 12 — impact of the distance threshold ε: the large-scale suite on
//! 1.6 M × 1.6 M (scaled) uniform data for ε = 5 and ε = 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{bench_context, run_distance_join, synthetic};
use touch_datagen::SyntheticDistribution;
use touch_experiments::scaled_large_suite;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure12_epsilon");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = synthetic(1_600_000, SyntheticDistribution::Uniform, 1);
    let b = synthetic(1_600_000, SyntheticDistribution::Uniform, 2);
    let suite = scaled_large_suite(bench_context().scale);
    for eps in [5.0, 10.0] {
        for algo in &suite {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("eps{eps}")),
                &eps,
                |bencher, &eps| {
                    bencher.iter(|| black_box(run_distance_join(algo.as_ref(), &a, &b, eps)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

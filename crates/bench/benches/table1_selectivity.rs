//! Table 1 — selectivity measurement benchmark: times the TOUCH distance join that
//! computes each selectivity row, one benchmark per (distribution, ε).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{run_distance_join, synthetic};
use touch_core::TouchJoin;
use touch_datagen::SyntheticDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_selectivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let touch = TouchJoin::default();
    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = synthetic(160_000, dist, 1);
        let b = synthetic(1_600_000, dist, 2);
        for eps in [5.0, 10.0] {
            group.bench_with_input(
                BenchmarkId::new(dist.name(), format!("eps{eps}")),
                &eps,
                |bencher, &eps| bencher.iter(|| black_box(run_distance_join(&touch, &a, &b, eps))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation — TOUCH design knobs: local-join strategy, join order and partition
//! count on a fixed uniform workload (complements the paper's §5.2 discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{run_distance_join, synthetic};
use touch_core::{JoinOrder, LocalJoinStrategy, TouchConfig, TouchJoin};
use touch_datagen::SyntheticDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_touch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = synthetic(1_600_000, SyntheticDistribution::Uniform, 1);
    let b = synthetic(3_200_000, SyntheticDistribution::Uniform, 2);

    for strategy in
        [LocalJoinStrategy::Grid, LocalJoinStrategy::PlaneSweep, LocalJoinStrategy::AllPairs]
    {
        let algo = TouchJoin::new(TouchConfig { local_join: strategy, ..TouchConfig::default() });
        group.bench_with_input(
            BenchmarkId::new("local_join", strategy.name()),
            &strategy,
            |bencher, _| bencher.iter(|| black_box(run_distance_join(&algo, &a, &b, 5.0))),
        );
    }
    for (name, order) in
        [("smaller-as-tree", JoinOrder::SmallerAsTree), ("tree-on-B", JoinOrder::TreeOnB)]
    {
        let algo = TouchJoin::new(TouchConfig { join_order: order, ..TouchConfig::default() });
        group.bench_with_input(BenchmarkId::new("join_order", name), &name, |bencher, _| {
            bencher.iter(|| black_box(run_distance_join(&algo, &a, &b, 5.0)))
        });
    }
    for partitions in [256usize, 1024, 4096] {
        let algo = TouchJoin::new(TouchConfig { partitions, ..TouchConfig::default() });
        group.bench_with_input(
            BenchmarkId::new("partitions", partitions),
            &partitions,
            |bencher, _| bencher.iter(|| black_box(run_distance_join(&algo, &a, &b, 5.0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

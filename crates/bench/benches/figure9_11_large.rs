//! Figures 9/10/11 — large uniform/Gaussian/clustered datasets: the six large-scale
//! algorithms on A = 1.6 M (scaled), B = 1.6 M and 9.6 M (scaled), ε = 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{bench_context, run_distance_join, synthetic};
use touch_datagen::SyntheticDistribution;
use touch_experiments::scaled_large_suite;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_11_large");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let suite = scaled_large_suite(bench_context().scale);
    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = synthetic(1_600_000, dist, 1);
        for paper_b in [1_600_000usize, 9_600_000] {
            let b = synthetic(paper_b, dist, 2);
            for algo in &suite {
                group.bench_with_input(
                    BenchmarkId::new(
                        algo.name(),
                        format!("{}_B{}M", dist.name(), paper_b / 1_600_000),
                    ),
                    &b,
                    |bencher, b| {
                        bencher.iter(|| black_box(run_distance_join(algo.as_ref(), &a, b, 5.0)))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

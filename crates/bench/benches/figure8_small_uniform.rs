//! Figure 8 — small uniform datasets: every algorithm of the paper's full suite
//! (including the quadratic NL and PS) on A = 10 K, B = 160–640 K (scaled), ε = 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{bench_context, run_distance_join, synthetic};
use touch_datagen::SyntheticDistribution;
use touch_experiments::scaled_small_suite;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_small_uniform");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = synthetic(10_000, SyntheticDistribution::Uniform, 1);
    let suite = scaled_small_suite(bench_context().scale);
    for paper_b in [160_000usize, 640_000] {
        let b = synthetic(paper_b, SyntheticDistribution::Uniform, 2);
        for algo in &suite {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("B{}k", paper_b / 1000)),
                &b,
                |bencher, b| {
                    bencher.iter(|| black_box(run_distance_join(algo.as_ref(), &a, b, 10.0)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

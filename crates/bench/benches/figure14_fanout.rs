//! Figure 14 — impact of the TOUCH fanout: the TOUCH join on 1.6 M × 9.6 M (scaled)
//! uniform data for fanouts 2–20.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{run_distance_join, synthetic};
use touch_core::TouchJoin;
use touch_datagen::SyntheticDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure14_fanout");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = synthetic(1_600_000, SyntheticDistribution::Uniform, 1);
    let b = synthetic(9_600_000, SyntheticDistribution::Uniform, 2);
    for fanout in [2usize, 4, 8, 12, 16, 20] {
        let touch = TouchJoin::with_fanout(fanout);
        group.bench_with_input(
            BenchmarkId::new("TOUCH", format!("fanout{fanout}")),
            &fanout,
            |bencher, _| bencher.iter(|| black_box(run_distance_join(&touch, &a, &b, 5.0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

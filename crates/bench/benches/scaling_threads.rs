//! Thread scaling — the `touch-parallel` subsystem against the sequential TOUCH on
//! Figure 8's uniform workload (A = 10 K, B = 160 K scaled), ε = 10, at 1/2/4/8
//! worker threads. Speedups saturate at the machine's physical core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{run_distance_join, synthetic};
use touch_core::TouchJoin;
use touch_datagen::SyntheticDistribution;
use touch_parallel::ParallelTouchJoin;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = synthetic(10_000, SyntheticDistribution::Uniform, 1);
    let b = synthetic(160_000, SyntheticDistribution::Uniform, 2);

    let sequential = TouchJoin::default();
    group.bench_with_input(BenchmarkId::new("TOUCH", "sequential"), &b, |bencher, b| {
        bencher.iter(|| black_box(run_distance_join(&sequential, &a, b, 10.0)))
    });

    for threads in [1usize, 2, 4, 8] {
        let parallel = ParallelTouchJoin::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("TOUCH-P", format!("t{threads}")),
            &b,
            |bencher, b| bencher.iter(|| black_box(run_distance_join(&parallel, &a, b, 10.0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Epoch throughput — the `touch-streaming` engine pushing dataset B through a
//! persistent tree in 1/8/64 epochs, against the per-batch-rebuild alternative
//! (a fresh one-shot TOUCH per batch). Figure 8's uniform workload (A = 10 K,
//! B = 160 K scaled), ε folded into the tree via the standard MBR extension.
//! Amortisation shows up as the streaming rows staying flat while the rebuild rows
//! grow with the epoch count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::synthetic;
use touch_core::{CountingSink, JoinOrder, SpatialJoinAlgorithm, TouchConfig, TouchJoin};
use touch_datagen::SyntheticDistribution;
use touch_geom::Dataset;
use touch_streaming::{StreamingConfig, StreamingTouchJoin};

const EPS: f64 = 10.0;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = synthetic(10_000, SyntheticDistribution::Uniform, 1);
    let b = synthetic(160_000, SyntheticDistribution::Uniform, 2);
    let a_ext = a.extended(EPS);
    let cfg = TouchConfig { join_order: JoinOrder::TreeOnA, ..TouchConfig::default() };

    for epochs in [1usize, 8, 64] {
        let batch = b.len().div_ceil(epochs).max(1);

        // Streaming: the build is paid once, outside the measured routine — the
        // steady-state serving cost is what each iteration measures.
        let mut engine =
            StreamingTouchJoin::build(&a_ext, StreamingConfig { touch: cfg, ..Default::default() });
        group.bench_with_input(
            BenchmarkId::new("stream", format!("e{epochs}")),
            &b,
            |bencher, b| {
                bencher.iter(|| {
                    let mut sink = CountingSink::new();
                    for chunk in b.objects().chunks(batch) {
                        let _ = engine.push_batch(chunk, &mut sink);
                    }
                    black_box(sink.count())
                })
            },
        );

        // The alternative: a fresh one-shot TOUCH (tree rebuild included) per batch.
        let rebuild = TouchJoin::new(cfg);
        group.bench_with_input(
            BenchmarkId::new("rebuild", format!("e{epochs}")),
            &b,
            |bencher, b| {
                bencher.iter(|| {
                    let mut total = 0u64;
                    for chunk in b.objects().chunks(batch) {
                        let chunk_ds = Dataset::from_mbrs(chunk.iter().map(|o| o.mbr));
                        let mut sink = CountingSink::new();
                        let _ = rebuild.join(&a_ext, &chunk_ds, &mut sink);
                        total += sink.count();
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 16 — the neuroscience touch-detection workload: the large-scale suite on
//! the full (scaled) axon/dendrite datasets for ε = 5 and ε = 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{bench_context, run_distance_join, BENCH_SCALE};
use touch_datagen::NeuroscienceSpec;
use touch_experiments::scaled_large_suite;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure16_neuroscience");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let data = NeuroscienceSpec::scaled(BENCH_SCALE).generate(42);
    let suite = scaled_large_suite(bench_context().scale);
    for eps in [5.0, 10.0] {
        for algo in &suite {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("eps{eps}")),
                &eps,
                |bencher, &eps| {
                    bencher.iter(|| {
                        black_box(run_distance_join(
                            algo.as_ref(),
                            &data.axons,
                            &data.dendrites,
                            eps,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 15 — increasingly dense neuroscience datasets: the large-scale suite on
//! 20 % / 60 % / 100 % subsets of the synthetic tissue model, ε = 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{bench_context, run_distance_join, BENCH_SCALE};
use touch_datagen::NeuroscienceSpec;
use touch_experiments::scaled_large_suite;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure15_density");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let data = NeuroscienceSpec::scaled(BENCH_SCALE).generate(42);
    let suite = scaled_large_suite(bench_context().scale);
    for pct in [20usize, 60, 100] {
        let a = data.axons.take_prefix(data.axons.len() * pct / 100);
        let b = data.dendrites.take_prefix(data.dendrites.len() * pct / 100);
        for algo in &suite {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{pct}pct")),
                &pct,
                |bencher, _| {
                    bencher.iter(|| black_box(run_distance_join(algo.as_ref(), &a, &b, 5.0)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 13 — TOUCH filtering capability: times the assignment-heavy TOUCH join for
//! each distribution (the filtering counts themselves are reported by the
//! `figure13` experiment binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use touch_bench::{run_distance_join, synthetic};
use touch_core::TouchJoin;
use touch_datagen::SyntheticDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure13_filtering");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let touch = TouchJoin::default();
    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = synthetic(1_600_000, dist, 1);
        let b = synthetic(9_600_000, dist, 2);
        group.bench_with_input(BenchmarkId::new("TOUCH", dist.name()), &b, |bencher, b| {
            bencher.iter(|| black_box(run_distance_join(&touch, &a, b, 5.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

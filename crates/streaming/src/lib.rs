//! # touch-streaming — the batched/streaming TOUCH join engine
//!
//! The one-shot joins in `touch-core` / `touch-parallel` rebuild the hierarchy for
//! every query. In a serving scenario the roles are asymmetric: dataset A (the
//! indexed side) is long-lived, while dataset B arrives continuously — sensor
//! batches, query windows, simulation timesteps. This crate exploits that shape:
//!
//! * [`StreamingTouchJoin::build`] constructs the TOUCH hierarchy over A **once**
//!   (parallel stable STR sort at `threads > 1`),
//! * [`StreamingTouchJoin::push_batch`] runs assignment + local joins for one epoch
//!   of B against the persistent tree and returns an [`EpochReport`],
//! * [`StreamingTouchJoin::reset`] starts a new B stream over the same tree.
//!
//! The build cost is thereby amortised over every epoch of every stream the tree
//! serves, instead of being paid per query.
//!
//! ## Epoch equivalence
//!
//! The engine's headline guarantee mirrors `touch-parallel`'s determinism: for a
//! tree built on A, streaming B through [`StreamingTouchJoin::push_batch`] in **any
//! epoch split** produces exactly the union of pairs — and exactly the additive
//! counters — of the one-shot [`touch_core::TouchJoin`] over (A, B) with the same
//! [`touch_core::TouchConfig`] (tree on A; see [`StreamingConfig::touch`] for the two knobs the
//! engine pins). This holds for the sequential path and for every worker count,
//! and is enforced by the workspace's `streaming_equivalence` property suite and
//! the streaming cases of `parallel_determinism`.
//!
//! Three design decisions make the guarantee possible:
//!
//! 1. assignment is per-object and read-only, so it decomposes over any batching,
//! 2. the per-node local-join strategy choice consults only the A side
//!    ([`touch_core::LocalJoinParams::allpairs_max_a`]), never the epoch's B count,
//! 3. grid cells are sized from the tree dataset at build time
//!    ([`touch_core::TouchConfig::min_local_cell_size_of`]), not from the unknown-at-build B
//!    stream.
//!
//! For cross-engine comparisons the crate also ships [`OneShotStreaming`], which
//! wraps the engine as a regular [`touch_core::SpatialJoinAlgorithm`] (build +
//! one epoch) so it can run through the unified [`touch_core::JoinQuery`] facade
//! like every other engine.
//!
//! ## Quick example
//!
//! ```
//! use touch_core::CollectingSink;
//! use touch_geom::{Aabb, Dataset, Point3};
//! use touch_streaming::{StreamingConfig, StreamingTouchJoin};
//!
//! let a = Dataset::from_mbrs((0..200).map(|i| {
//!     let min = Point3::new((i % 20) as f64 * 2.0, (i / 20) as f64 * 2.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.5))
//! }));
//! let b = Dataset::from_mbrs((0..300).map(|i| {
//!     let min = Point3::new((i % 20) as f64 * 2.0 + 0.7, (i / 20) as f64 * 0.9, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//!
//! // Build the tree once, then stream B through it in three epochs.
//! let mut engine = StreamingTouchJoin::build(&a, StreamingConfig::default());
//! let mut sink = CollectingSink::new();
//! let mut total = 0;
//! for batch in b.objects().chunks(100) {
//!     let epoch = engine.push_batch(batch, &mut sink);
//!     total += epoch.results();
//! }
//! assert_eq!(total, sink.count());
//! assert_eq!(engine.epochs(), 3);
//! assert_eq!(engine.cumulative_report().epochs, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod report;

pub use engine::{OneShotStreaming, StreamingConfig, StreamingTouchJoin};
pub use report::{EpochReport, EpochSummary};

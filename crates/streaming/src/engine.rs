//! The streaming engine: a persistent TOUCH tree serving batched probe epochs.

use crate::EpochReport;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use touch_core::{
    catch_phase, deliver, DatasetStats, ExecControl, JoinError, JoinPlan, JoinPlanner, PairSink,
    PlanEnv, ScratchPool, SpatialJoinAlgorithm, TouchConfig, TouchTree,
};
use touch_geom::{Dataset, SpatialObject};
use touch_metrics::{Counters, MemoryUsage, NoTrace, Phase, RunReport, TraceEvent, TraceSink};
use touch_parallel::phases::{
    par_assign_ctl, par_assign_traced, par_build_tree, par_join_into_ctl, par_join_into_traced,
    resolve_threads,
};

/// Configuration of [`StreamingTouchJoin`].
///
/// Wraps the algorithmic knobs of [`TouchConfig`] with the execution knobs of the
/// parallel subsystem. Two `TouchConfig` fields behave differently in streaming
/// mode, both pinned so that epoch splits cannot change the computation:
///
/// * `join_order` is ignored — the hierarchy is always built on the dataset handed
///   to [`StreamingTouchJoin::build`]; the B side streams in and is never indexed.
/// * `min_cell_factor` is applied to the **tree dataset only**
///   ([`TouchConfig::min_local_cell_size_of`]): the stream's global average object
///   size is unknowable at build time, and sizing cells per epoch would make grid
///   decisions depend on how the stream happens to be batched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// The algorithmic configuration shared with the one-shot joins.
    pub touch: TouchConfig,
    /// Worker threads: `1` (the default) runs the strictly sequential path, `0`
    /// auto-detects ([`std::thread::available_parallelism`]), anything else runs
    /// the work-stealing parallel path of `touch-parallel` at that width.
    pub threads: usize,
    /// Probe objects per parallel-assignment work unit (as in
    /// [`touch_parallel::ParallelConfig::chunk_size`]).
    pub chunk_size: usize,
    /// Inputs smaller than this are STR-sorted sequentially at build (as in
    /// [`touch_parallel::ParallelConfig::sort_threshold`]).
    pub sort_threshold: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        // Execution knobs share the planner's constants (see `ParallelConfig`).
        StreamingConfig {
            touch: TouchConfig::default(),
            threads: 1,
            chunk_size: JoinPlanner::DEFAULT_CHUNK_SIZE,
            sort_threshold: JoinPlanner::DEFAULT_SORT_THRESHOLD,
        }
    }
}

impl StreamingConfig {
    /// The default configuration pinned to an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        StreamingConfig { threads, ..StreamingConfig::default() }
    }

    /// Resolves the configured thread count (`0` → available parallelism), via the
    /// same [`resolve_threads`] rule [`touch_parallel::ParallelConfig`] uses.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// The batched/streaming TOUCH join: build the hierarchy over dataset A once, then
/// join epoch after epoch of dataset B against it.
///
/// Lifecycle: [`build`](StreamingTouchJoin::build) → N ×
/// [`push_batch`](StreamingTouchJoin::push_batch) →
/// [`reset`](StreamingTouchJoin::reset) → N × `push_batch` → … — one tree, many
/// B streams. Every epoch starts from a clean assignment
/// ([`TouchTree::clear_assignment`]), so epochs are independent; the engine's
/// [`cumulative_report`](StreamingTouchJoin::cumulative_report) merges them into the
/// one-shot-comparable record (build charged once, per-epoch work summed).
///
/// See the [crate docs](crate) for the epoch-equivalence guarantee.
#[derive(Debug, Clone)]
pub struct StreamingTouchJoin {
    config: StreamingConfig,
    threads: usize,
    tree: TouchTree,
    /// The resolved plan the current stream executes: partitioning pinned at
    /// build, local-join parameters pinned per stream (never mid-stream, so
    /// epoch splits stay equivalence-exact).
    plan: JoinPlan,
    /// `Some` when the engine was built through the planning layer
    /// ([`StreamingTouchJoin::build_planned`]): [`StreamingTouchJoin::reset`]
    /// then re-plans the next stream's local-join parameters from the statistics
    /// accumulated over the previous stream's epochs.
    planner: Option<JoinPlanner>,
    /// Statistics of the tree dataset, collected once at build.
    tree_stats: DatasetStats,
    /// Statistics of the current stream's probe side, accumulated batch by batch
    /// ([`DatasetStats::merge`] — exact, see `touch-core`'s stats module).
    stream_stats: DatasetStats,
    /// Snapshot of the cumulative report right after the build: what `reset`
    /// rewinds to.
    base: RunReport,
    cumulative: RunReport,
    epochs: usize,
    streams: usize,
    /// Reusable join-phase memory — per-worker grid directories, sweep buffers and
    /// the work list — retained across epochs *and* streams, so a warmed-up engine
    /// allocates nothing in its join phase.
    scratch: ScratchPool,
    /// Sliding-window bookkeeping ([`StreamingTouchJoin::push_windowed`]): one
    /// record per live epoch, oldest first, each listing `(node, count)` — how
    /// many of that epoch's objects every node received. Eviction replays the
    /// oldest record through [`TouchTree::retract_assigned`] instead of
    /// clearing, so the rest of the window stays assigned. Empty outside
    /// window mode.
    window_records: VecDeque<Vec<(u32, u32)>>,
    /// Per-node assigned count over the current window (lazily sized to the
    /// tree): the baseline the next epoch's record is diffed against.
    window_len: Vec<u32>,
}

impl StreamingTouchJoin {
    /// Builds the persistent hierarchy over dataset `a` (Algorithm 2; the parallel
    /// stable STR sort at `threads > 1`, bit-identical to the sequential sort).
    /// This is the amortised cost: every epoch of every stream reuses the tree.
    pub fn build(a: &Dataset, config: StreamingConfig) -> Self {
        let plan = JoinPlan::from_streaming_tree(
            &config.touch,
            a,
            config.effective_threads(),
            config.chunk_size,
            config.sort_threshold,
        );
        Self::build_with_plan_inner(a, config, plan, None)
    }

    /// Builds the persistent hierarchy with **statistics-driven planning**: the
    /// tree knobs (partitions, fanout, grid sizing, all-pairs cutoff) come from
    /// `planner` over the tree dataset's statistics, and every
    /// [`reset`](StreamingTouchJoin::reset) **re-plans the next stream** from the
    /// probe statistics accumulated over the finished stream's epochs — a stream
    /// of tiny objects shrinks the next stream's grid cells, a stream of large
    /// ones grows them. Within a stream the parameters never change, so the
    /// epoch-split equivalence guarantee is untouched.
    ///
    /// `config.touch` is ignored except as the source of execution knobs
    /// (threads, chunk size, sort threshold); the algorithmic knobs are planned.
    pub fn build_planned(a: &Dataset, config: StreamingConfig, planner: JoinPlanner) -> Self {
        let tree_stats = DatasetStats::from_dataset(a);
        let threads = config.effective_threads();
        let env = PlanEnv::sequential().with_threads(threads);
        // The configured worker count is an execution knob the caller owns, not
        // a planning decision: pin the recorded strategy to it so the plan on
        // every report matches the workers that actually run the epochs.
        let plan = planner
            .plan_streaming(&tree_stats, &DatasetStats::new(), &env)
            .with_execution(config.chunk_size, config.sort_threshold)
            .with_strategy(touch_core::ExecutionStrategy::Streaming { threads });
        let mut engine = Self::build_with_plan_inner(a, config, plan, Some(planner));
        engine.tree_stats = tree_stats;
        engine
    }

    /// Builds the persistent hierarchy executing a pre-computed, fully resolved
    /// [`JoinPlan`] — the constructor the planning layer's one-shot dispatch
    /// uses. The plan's partitioning and local-join parameters are pinned; its
    /// strategy supplies the worker count.
    pub fn build_with_plan(a: &Dataset, plan: JoinPlan) -> Self {
        let config = StreamingConfig {
            touch: plan.as_touch_config(),
            threads: plan.threads(),
            chunk_size: plan.chunk_size,
            sort_threshold: plan.sort_threshold,
        };
        Self::build_with_plan_inner(a, config, plan, None)
    }

    fn build_with_plan_inner(
        a: &Dataset,
        config: StreamingConfig,
        plan: JoinPlan,
        planner: Option<JoinPlanner>,
    ) -> Self {
        let threads = config.effective_threads();
        let mut base = RunReport::new(format!("TOUCH-S{threads}"), a.len(), 0);
        base.threads = threads;
        base.epochs = 0;
        base.plan = Some(plan.summary());
        let (mut tree, sort_aux) = base.timer.time(Phase::Build, || {
            par_build_tree(a.objects(), plan.partitions, plan.fanout, threads, plan.sort_threshold)
        });
        // A persistent tree re-joins the same nodes every epoch: memoise their
        // grid geometry once so epochs stop re-deriving it (pure geometry — the
        // cached and recomputed grids are identical).
        tree.memoise_grids(&plan.params);
        base.memory_bytes = tree.memory_bytes() + sort_aux;
        let cumulative = base.clone();
        StreamingTouchJoin {
            config,
            threads,
            tree,
            plan,
            planner,
            tree_stats: DatasetStats::new(),
            stream_stats: DatasetStats::new(),
            base,
            cumulative,
            epochs: 0,
            streams: 1,
            scratch: ScratchPool::new(),
            window_records: VecDeque::new(),
            window_len: Vec::new(),
        }
    }

    /// Builds a persistent **distance-join** tree: dataset `a` is ε-extended once,
    /// the hierarchy is built over the extended boxes, and every epoch pushed
    /// through [`StreamingTouchJoin::push_batch`] therefore answers the
    /// within-distance-ε predicate (Section 4's translation, paid once per tree
    /// instead of once per query).
    ///
    /// `RunReport::epsilon` is stamped on the engine's base record **before** any
    /// epoch runs, so every partial [`cumulative_report`] — including one taken
    /// mid-stream — already carries the threshold.
    ///
    /// [`cumulative_report`]: StreamingTouchJoin::cumulative_report
    pub fn build_extended(a: &Dataset, eps: f64, config: StreamingConfig) -> Self {
        let extended = a.extended(eps);
        let mut engine = Self::build(&extended, config);
        engine.base.epsilon = eps;
        engine.cumulative.epsilon = eps;
        engine
    }

    /// Joins one epoch of the B stream against the persistent tree: clears the
    /// previous epoch's assignments, assigns `batch` (Algorithm 3), runs the local
    /// joins (Algorithm 4) into `sink`, and returns this epoch's [`EpochReport`].
    ///
    /// With `threads == 1` both phases run strictly sequentially
    /// ([`TouchTree::assign`] / [`TouchTree::join_assigned`]); otherwise they run on
    /// the work-stealing machinery of [`touch_parallel::phases`]. The two paths are
    /// deterministically equivalent — same pairs, same counters, at every width.
    /// `sink` is any [`PairSink`]; an early-terminating sink
    /// ([`PairSink::is_done`]) stops the epoch's local joins.
    pub fn push_batch(&mut self, batch: &[SpatialObject], sink: &mut dyn PairSink) -> EpochReport {
        self.push_batch_traced(batch, sink, &NoTrace)
    }

    /// [`StreamingTouchJoin::push_batch`] with an execution-trace sink attached.
    ///
    /// When the sink is enabled the whole epoch is wrapped in a
    /// [`TraceEvent::Epoch`] span and the assignment and join phases record their
    /// per-chunk / per-node spans (and steals) through the parallel machinery;
    /// with [`NoTrace`] this *is* `push_batch` — one code path, so traced and
    /// untraced epochs are bit-identical in pairs and counters.
    pub fn push_batch_traced(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        trace: &dyn TraceSink,
    ) -> EpochReport {
        self.push_epoch(batch, sink, trace, false)
    }

    /// [`StreamingTouchJoin::push_batch`] for **self-joins**: the pushed batch is
    /// (an ε-extension of) the very dataset the tree was built over, with the
    /// object ids aligned, and the local joins keep only pairs with
    /// `tree_id < probe_id` — each unordered pair exactly once, identities never.
    /// The filter sits inside the kernels, so an early-terminating sink's budget
    /// is spent on real self-join pairs only; comparison/node-test counters stay
    /// pre-filter, exactly as in the one-shot engines' self-join paths.
    pub fn push_batch_self(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
    ) -> EpochReport {
        self.push_batch_self_traced(batch, sink, &NoTrace)
    }

    /// [`StreamingTouchJoin::push_batch_self`] with an execution-trace sink
    /// attached.
    pub fn push_batch_self_traced(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        trace: &dyn TraceSink,
    ) -> EpochReport {
        self.push_epoch(batch, sink, trace, true)
    }

    /// Fallible [`StreamingTouchJoin::push_batch`]: the epoch polls
    /// `ctl.cancel` at chunk (assignment) and node (join) granularity and
    /// contains worker panics instead of aborting the process.
    ///
    /// * A token that trips **before** the epoch starts leaves the engine
    ///   completely untouched — no assignments cleared, no statistics merged,
    ///   no epoch counted — so the same batch can simply be pushed again.
    /// * A token that trips **mid-epoch** returns `Ok` with a *partial*
    ///   [`EpochReport`] whose [`completion`](EpochReport::completion) says
    ///   why; the pairs already delivered to `sink` and the partial counters
    ///   are folded into the cumulative record and the epoch is counted, so
    ///   the stream can keep going.
    /// * A panicked phase worker returns [`JoinError::WorkerPanicked`]; the
    ///   failed epoch is **not** counted (the next push clears its partial
    ///   assignments), and the engine remains usable.
    pub fn try_push_batch(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        ctl: ExecControl<'_>,
    ) -> Result<EpochReport, JoinError> {
        self.push_epoch_ctl(batch, sink, ctl, false)
    }

    /// Fallible [`StreamingTouchJoin::push_batch_self`] — the self-join form
    /// of [`try_push_batch`](StreamingTouchJoin::try_push_batch), with the
    /// same cancellation and containment contract.
    pub fn try_push_batch_self(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        ctl: ExecControl<'_>,
    ) -> Result<EpochReport, JoinError> {
        self.push_epoch_ctl(batch, sink, ctl, true)
    }

    fn push_epoch(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        trace: &dyn TraceSink,
        self_join: bool,
    ) -> EpochReport {
        self.push_epoch_ctl(batch, sink, ExecControl::with_trace(trace), self_join)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn push_epoch_ctl(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        ctl: ExecControl<'_>,
        self_join: bool,
    ) -> Result<EpochReport, JoinError> {
        let mut report = EpochReport {
            epoch: self.epochs,
            batch_size: batch.len(),
            assigned: 0,
            counters: Counters::new(),
            timer: touch_metrics::PhaseTimer::new(),
            memory_bytes: 0,
            threads: self.threads,
            completion: touch_metrics::Completion::Complete,
        };
        // A pre-tripped token leaves the engine untouched — nothing cleared,
        // nothing merged, the epoch not counted — so retrying the batch later
        // is indistinguishable from pushing it the first time.
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(report);
        }
        let trace = ctl.trace;
        let epoch_start_us = if trace.is_enabled() { trace.now_us() } else { 0 };
        // Leaving window mode: the window's assignments go with the clear, so
        // its records must not survive to mis-describe a later eviction.
        self.clear_window();
        self.tree.clear_assignment();
        self.stream_stats.merge(&DatasetStats::from_objects(batch));

        let mut counters = Counters::new();
        // par_assign_ctl itself falls back to the sequential `TouchTree::assign`
        // when one worker (or one chunk) is all there is, so no dispatch is needed
        // here.
        let assigned = report.timer.time(Phase::Assignment, || {
            par_assign_ctl(
                &mut self.tree,
                batch,
                self.plan.chunk_size,
                self.threads,
                &mut counters,
                ctl,
            )
        });
        // A panicked assignment worker fails the whole epoch: partial
        // assignments stay in the tree until the next push clears them, and
        // the cumulative record never sees the failed epoch.
        let (assign_aux, mut cause) = assigned?;
        report.assigned = self.tree.assigned_b_count();

        let mut join_aux = 0;
        if cause.is_none() {
            let params = self.plan.params;
            let tree = &self.tree;
            let pool = &mut self.scratch;
            let joined = report.timer.time(Phase::Join, || {
                if self.threads <= 1 {
                    let mut results = 0u64;
                    let res = catch_phase(Phase::Join, 0, || {
                        tree.join_assigned_ctl(
                            &params,
                            pool.primary(),
                            &mut counters,
                            &mut |a_id, b_id| {
                                // The streaming tree is always on A with no swap, so
                                // the self-join index-order filter applies directly.
                                if !self_join || a_id < b_id {
                                    deliver(sink, a_id, b_id, &mut results)
                                } else {
                                    !sink.is_done()
                                }
                            },
                            ctl,
                            0,
                        )
                    });
                    counters.results += results;
                    res
                } else {
                    // par_join_into_ctl adds the delivered pairs to `counters.results`.
                    par_join_into_ctl(
                        tree,
                        &params,
                        self.threads,
                        false,
                        self_join,
                        sink,
                        pool,
                        &mut counters,
                        ctl,
                    )
                }
            });
            let (aux, join_cause) = joined?;
            join_aux = aux;
            cause = join_cause;
        }

        report.counters = counters;
        report.memory_bytes = self.tree.memory_bytes() + assign_aux + join_aux;
        if let Some(c) = cause {
            report.completion = c.completion();
        }

        if trace.is_enabled() {
            trace.record(TraceEvent::Epoch {
                epoch: report.epoch,
                batch_size: report.batch_size,
                start_us: epoch_start_us,
                duration_us: trace.now_us().saturating_sub(epoch_start_us),
            });
        }

        // A cancelled epoch still merges: its pairs reached the sink and its
        // counters describe real work, so the cumulative record stays an
        // honest account of everything the stream has actually done.
        self.cumulative.merge_epoch(
            report.batch_size,
            &report.counters,
            &report.timer,
            report.memory_bytes,
        );
        self.epochs += 1;
        Ok(report)
    }

    /// Joins `batch` as the newest epoch of a **sliding window** holding the
    /// last `window` epochs: epochs that fall out of the window are *evicted* —
    /// their per-node assignments retracted through
    /// [`TouchTree::retract_assigned`] — instead of the all-or-nothing
    /// [`TouchTree::clear_assignment`] of [`push_batch`], and the local joins
    /// then run over **everything still in the window**, not just `batch`.
    ///
    /// The epoch's join output (pairs into `sink`, join-phase counters,
    /// [`EpochReport::assigned`]) is bit-identical to a fresh engine that
    /// assigned exactly the surviving epochs in arrival order: eviction drains
    /// each node's list from the front, and arrival order within an epoch is
    /// preserved at every thread count, so the window's per-node B-lists are
    /// literally the concatenation of the surviving epochs' contributions.
    /// Assignment counters remain per-batch (only `batch` descends the tree).
    ///
    /// Mixing modes is safe: a `push_windowed` after [`push_batch`] discards the
    /// stale non-window epoch, and a `push_batch` (or
    /// [`reset`](StreamingTouchJoin::reset)) drops the window.
    ///
    /// [`push_batch`]: StreamingTouchJoin::push_batch
    pub fn push_windowed(
        &mut self,
        batch: &[SpatialObject],
        window: usize,
        sink: &mut dyn PairSink,
    ) -> EpochReport {
        self.push_windowed_traced(batch, window, sink, &NoTrace)
    }

    /// [`StreamingTouchJoin::push_windowed`] with an execution-trace sink
    /// attached: the epoch records its [`TraceEvent::Epoch`] span as usual, and
    /// every evicted epoch records a [`TraceEvent::Eviction`] instant.
    pub fn push_windowed_traced(
        &mut self,
        batch: &[SpatialObject],
        window: usize,
        sink: &mut dyn PairSink,
        trace: &dyn TraceSink,
    ) -> EpochReport {
        assert!(window >= 1, "a sliding window holds at least one epoch");
        // Entering window mode after a push_batch: that epoch's assignments are
        // still in the tree (push_batch clears at the *start* of the next
        // call) but have no window record, so they could never be evicted.
        if self.window_records.is_empty() {
            self.tree.clear_assignment();
        }

        let mut report = EpochReport {
            epoch: self.epochs,
            batch_size: batch.len(),
            assigned: 0,
            counters: Counters::new(),
            timer: touch_metrics::PhaseTimer::new(),
            memory_bytes: 0,
            threads: self.threads,
            completion: touch_metrics::Completion::Complete,
        };
        let epoch_start_us = if trace.is_enabled() { trace.now_us() } else { 0 };
        self.stream_stats.merge(&DatasetStats::from_objects(batch));

        // Evict the epochs this push slides out of the window, oldest first,
        // before the new batch arrives (their objects sit at the front of
        // every per-node list, exactly what retract_assigned drains).
        while self.window_records.len() >= window {
            let evicted_epoch = self.epochs - self.window_records.len();
            #[allow(clippy::expect_used)] // the loop guard checked len() >= window >= 1
            let record = self.window_records.pop_front().expect("len checked above");
            let mut objects = 0usize;
            for &(node, count) in &record {
                self.window_len[node as usize] -= count;
                objects += count as usize;
            }
            self.tree.retract_assigned(record.iter().map(|&(n, c)| (n as usize, c as usize)));
            if trace.is_enabled() {
                trace.record(TraceEvent::Eviction {
                    epoch: evicted_epoch,
                    objects,
                    at_us: trace.now_us(),
                });
            }
        }

        let mut counters = Counters::new();
        let assign_aux = report.timer.time(Phase::Assignment, || {
            par_assign_traced(
                &mut self.tree,
                batch,
                self.plan.chunk_size,
                self.threads,
                &mut counters,
                trace,
            )
        });
        // Unlike push_batch, `assigned` covers the whole surviving window —
        // that is what the join below runs over.
        report.assigned = self.tree.assigned_b_count();

        // Diff the per-node list lengths against the pre-push window to record
        // what this epoch contributed — the ledger its own eviction replays.
        if self.window_len.len() < self.tree.node_count() {
            self.window_len.resize(self.tree.node_count(), 0);
        }
        let mut record = Vec::new();
        for &node in self.tree.touched_nodes() {
            let cur = self.tree.node(node as usize).assigned_b().len() as u32;
            let prev = self.window_len[node as usize];
            if cur > prev {
                record.push((node, cur - prev));
                self.window_len[node as usize] = cur;
            }
        }
        self.window_records.push_back(record);

        let params = self.plan.params;
        let tree = &self.tree;
        let pool = &mut self.scratch;
        let join_aux = report.timer.time(Phase::Join, || {
            if self.threads <= 1 {
                let mut results = 0u64;
                let aux = tree.join_assigned_traced(
                    &params,
                    pool.primary(),
                    &mut counters,
                    &mut |a_id, b_id| deliver(sink, a_id, b_id, &mut results),
                    trace,
                    0,
                );
                counters.results += results;
                aux
            } else {
                par_join_into_traced(
                    tree,
                    &params,
                    self.threads,
                    false,
                    false,
                    sink,
                    pool,
                    &mut counters,
                    trace,
                )
            }
        });

        report.counters = counters;
        report.memory_bytes = self.tree.memory_bytes() + assign_aux + join_aux;

        if trace.is_enabled() {
            trace.record(TraceEvent::Epoch {
                epoch: report.epoch,
                batch_size: report.batch_size,
                start_us: epoch_start_us,
                duration_us: trace.now_us().saturating_sub(epoch_start_us),
            });
        }

        self.cumulative.merge_epoch(
            report.batch_size,
            &report.counters,
            &report.timer,
            report.memory_bytes,
        );
        self.epochs += 1;
        report
    }

    /// Number of epochs currently held by the sliding window (0 outside
    /// [window mode](StreamingTouchJoin::push_windowed)).
    pub fn window_epochs(&self) -> usize {
        self.window_records.len()
    }

    /// Drops all sliding-window bookkeeping (the matching assignments are the
    /// caller's to clear — every call site pairs this with
    /// [`TouchTree::clear_assignment`]).
    fn clear_window(&mut self) {
        self.window_records.clear();
        // Cleared, not zeroed: the lazy resize in push_windowed_traced refills
        // with zeros.
        self.window_len.clear();
    }

    /// Starts a new B stream over the same tree: clears the current assignments and
    /// rewinds the epoch counter and cumulative report to their post-build state.
    /// The tree itself — and therefore the amortised build investment — is kept.
    ///
    /// A [planned](StreamingTouchJoin::build_planned) engine additionally
    /// **re-plans the next stream** here: the local-join parameters (grid cell
    /// floor, all-pairs cutoff) are re-derived from the tree statistics plus the
    /// probe statistics accumulated over the finished stream, and the per-node
    /// grid memoisation is refreshed for the new geometry. The tree structure
    /// (partitions, fanout) stays as built. Explicitly configured engines keep
    /// their pinned parameters forever, exactly as before the planning layer.
    pub fn reset(&mut self) {
        self.clear_window();
        self.tree.clear_assignment();
        if let Some(planner) = self.planner {
            if !self.stream_stats.is_empty() {
                let env = PlanEnv::sequential().with_threads(self.threads);
                let replanned = planner
                    .plan_streaming(&self.tree_stats, &self.stream_stats, &env)
                    .with_execution(self.plan.chunk_size, self.plan.sort_threshold);
                // Only the per-stream knobs may move: the hierarchy is built and
                // its partitioning is no longer negotiable.
                self.plan.params = replanned.params;
                self.tree.memoise_grids(&self.plan.params);
                self.base.plan = Some(self.plan.summary());
            }
        }
        self.cumulative = self.base.clone();
        self.epochs = 0;
        self.streams += 1;
        self.stream_stats = DatasetStats::new();
    }

    /// Number of epochs pushed in the current stream.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Number of streams this tree has served (1 + completed [`reset`]s).
    ///
    /// [`reset`]: StreamingTouchJoin::reset
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// The resolved worker count every epoch runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The persistent hierarchy (read-only; epochs mutate only its assignments).
    pub fn tree(&self) -> &TouchTree {
        &self.tree
    }

    /// The minimum local-join grid cell size of the current stream's plan. For an
    /// explicitly configured engine this is derived from the tree dataset at
    /// build time and never changes (see [`StreamingConfig`]); a
    /// [planned](StreamingTouchJoin::build_planned) engine may refine it per
    /// stream at [`reset`](StreamingTouchJoin::reset).
    pub fn min_cell(&self) -> f64 {
        self.plan.params.min_cell_size
    }

    /// The resolved plan the current stream executes.
    pub fn plan(&self) -> &JoinPlan {
        &self.plan
    }

    /// The probe statistics accumulated over the current stream's epochs
    /// ([`DatasetStats::merge`] of every pushed batch).
    pub fn stream_stats(&self) -> &DatasetStats {
        &self.stream_stats
    }

    /// Wall-clock cost of building the tree — the investment the stream amortises.
    pub fn build_time(&self) -> std::time::Duration {
        self.base.timer.get(Phase::Build)
    }

    /// The cumulative record of the current stream: the build (charged once) plus
    /// every pushed epoch, merged with [`RunReport::merge_epoch`]. Lines up with a
    /// one-shot [`touch_core::TouchJoin`] report over the concatenated batches.
    pub fn cumulative_report(&self) -> RunReport {
        self.cumulative.clone()
    }
}

/// The streaming engine exposed as a one-shot [`SpatialJoinAlgorithm`]: builds the
/// persistent tree over A and pushes the whole of B as a single epoch.
///
/// This is the adapter that lets the streaming engine participate in the unified
/// [`touch_core::JoinQuery`] facade (and in every cross-engine equivalence suite)
/// alongside `TouchJoin` and `ParallelTouchJoin`. For actual serving workloads use
/// [`StreamingTouchJoin`] directly — the whole point of the engine is *not* to
/// rebuild the tree per query.
#[derive(Debug, Clone, Default)]
pub struct OneShotStreaming {
    config: StreamingConfig,
    plan: Option<JoinPlan>,
}

impl OneShotStreaming {
    /// Wraps `config` as a one-shot algorithm.
    pub fn new(config: StreamingConfig) -> Self {
        OneShotStreaming { config, plan: None }
    }

    /// Wraps a pre-computed, fully resolved [`JoinPlan`] as a one-shot
    /// algorithm: every run builds the tree with the plan's partitioning and
    /// joins with its pinned local-join parameters
    /// ([`StreamingTouchJoin::build_with_plan`]).
    pub fn from_plan(plan: JoinPlan) -> Self {
        OneShotStreaming {
            config: StreamingConfig {
                touch: plan.as_touch_config(),
                threads: plan.threads(),
                chunk_size: plan.chunk_size,
                sort_threshold: plan.sort_threshold,
            },
            plan: Some(plan),
        }
    }

    /// The streaming configuration every run builds with.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }
}

impl SpatialJoinAlgorithm for OneShotStreaming {
    fn name(&self) -> String {
        format!("TOUCH-S{}", self.config.effective_threads())
    }

    fn plan_for(&self, a: &Dataset, _b: &Dataset) -> Option<JoinPlan> {
        Some(self.plan.unwrap_or_else(|| {
            JoinPlan::from_streaming_tree(
                &self.config.touch,
                a,
                self.config.effective_threads(),
                self.config.chunk_size,
                self.config.sort_threshold,
            )
        }))
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        self.join_traced(a, b, sink, report, &NoTrace);
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        let mut engine = match self.plan {
            Some(plan) => StreamingTouchJoin::build_with_plan(a, plan),
            None => StreamingTouchJoin::build(a, self.config),
        };
        let _ = engine.push_batch_traced(b.objects(), sink, trace);
        Self::merge_cumulative(&engine, report);
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        self.join_self_traced(a, base, sink, report, &NoTrace);
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        let mut engine = match self.plan {
            Some(plan) => StreamingTouchJoin::build_with_plan(a, plan),
            None => StreamingTouchJoin::build(a, self.config),
        };
        let _ = engine.push_batch_self_traced(base.objects(), sink, trace);
        Self::merge_cumulative(&engine, report);
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        self.try_one_shot(a, b, sink, report, ctl, false)
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        self.try_one_shot(a, base, sink, report, ctl, true)
    }
}

impl OneShotStreaming {
    /// The fallible one-shot run: build under panic containment, push the
    /// whole probe side as a single cancellable epoch, and lift the epoch's
    /// completion onto the run report.
    fn try_one_shot(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
        self_join: bool,
    ) -> Result<(), JoinError> {
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(());
        }
        let mut engine = catch_phase(Phase::Build, 0, || match self.plan {
            Some(plan) => StreamingTouchJoin::build_with_plan(a, plan),
            None => StreamingTouchJoin::build(a, self.config),
        })?;
        let epoch = engine.push_epoch_ctl(b.objects(), sink, ctl, self_join)?;
        report.completion = epoch.completion;
        Self::merge_cumulative(&engine, report);
        Ok(())
    }

    /// Folds a finished engine's cumulative record into a one-shot report.
    fn merge_cumulative(engine: &StreamingTouchJoin, report: &mut RunReport) {
        let cumulative = engine.cumulative_report();
        report.threads = cumulative.threads;
        report.epochs = cumulative.epochs;
        report.plan = cumulative.plan.clone();
        report.counters.merge(&cumulative.counters);
        report.timer.merge(&cumulative.timer);
        report.memory_bytes = report.memory_bytes.max(cumulative.memory_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::{collect_join, CollectingSink, CountingSink, JoinOrder, TouchJoin};
    use touch_geom::{Aabb, Point3};

    fn lattice(side: usize, spacing: f64, box_side: f64, offset: f64) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(
                        x as f64 * spacing + offset,
                        y as f64 * spacing + offset,
                        z as f64 * spacing + offset,
                    );
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
                }
            }
        }
        ds
    }

    /// A touch config whose one-shot run matches the streaming engine's pinned
    /// decisions: tree on A, and A's objects at least as large as B's (so the
    /// one-shot min-cell equals the tree-only min-cell).
    fn touch_cfg() -> TouchConfig {
        TouchConfig { partitions: 16, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() }
    }

    fn streaming_cfg(threads: usize) -> StreamingConfig {
        StreamingConfig { touch: touch_cfg(), threads, chunk_size: 16, sort_threshold: 32 }
    }

    /// A is a lattice of unit boxes, B of smaller boxes: avg side A > avg side B.
    fn workloads() -> (Dataset, Dataset) {
        (lattice(5, 1.5, 1.0, 0.0), lattice(6, 1.3, 0.8, 0.4))
    }

    fn stream_in_epochs(
        a: &Dataset,
        b: &Dataset,
        epochs: usize,
        threads: usize,
    ) -> (Vec<(u32, u32)>, RunReport, Vec<EpochReport>) {
        let mut engine = StreamingTouchJoin::build(a, streaming_cfg(threads));
        let mut sink = CollectingSink::new();
        let chunk = b.len().div_ceil(epochs).max(1);
        let mut reports = Vec::new();
        for batch in b.objects().chunks(chunk) {
            reports.push(engine.push_batch(batch, &mut sink));
        }
        (sink.sorted_pairs(), engine.cumulative_report(), reports)
    }

    #[test]
    fn one_epoch_equals_the_one_shot_join() {
        let (a, b) = workloads();
        let (expected_pairs, expected) = collect_join(&TouchJoin::new(touch_cfg()), &a, &b);
        for threads in [1, 4] {
            let (pairs, cumulative, reports) = stream_in_epochs(&a, &b, 1, threads);
            assert_eq!(pairs, expected_pairs, "threads = {threads}");
            assert_eq!(cumulative.counters, expected.counters, "threads = {threads}");
            assert_eq!(cumulative.epochs, 1);
            assert_eq!(reports.len(), 1);
            assert_eq!(reports[0].results(), expected.result_pairs());
        }
    }

    #[test]
    fn any_epoch_split_reproduces_the_one_shot_join() {
        let (a, b) = workloads();
        let (expected_pairs, expected) = collect_join(&TouchJoin::new(touch_cfg()), &a, &b);
        for epochs in [2, 3, 7, b.len()] {
            for threads in [1, 3] {
                let (pairs, cumulative, reports) = stream_in_epochs(&a, &b, epochs, threads);
                assert_eq!(pairs, expected_pairs, "epochs = {epochs}, threads = {threads}");
                assert_eq!(
                    cumulative.counters, expected.counters,
                    "epochs = {epochs}, threads = {threads}: counters must add up exactly"
                );
                assert_eq!(cumulative.dataset_b, b.len());
                assert_eq!(cumulative.epochs, reports.len());
            }
        }
    }

    #[test]
    fn sequential_and_parallel_epochs_report_identical_summaries() {
        let (a, b) = workloads();
        let (_, _, baseline) = stream_in_epochs(&a, &b, 5, 1);
        for threads in [2, 4, 8] {
            let (_, _, reports) = stream_in_epochs(&a, &b, 5, threads);
            let lhs: Vec<_> = baseline.iter().map(|r| r.summary()).collect();
            let rhs: Vec<_> = reports.iter().map(|r| r.summary()).collect();
            assert_eq!(lhs, rhs, "threads = {threads}");
        }
    }

    #[test]
    fn reset_serves_a_second_stream_identically() {
        let (a, b) = workloads();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let chunk = b.len().div_ceil(3);
        let mut first = CollectingSink::new();
        let first_reports: Vec<_> =
            b.objects().chunks(chunk).map(|batch| engine.push_batch(batch, &mut first)).collect();
        let first_cumulative = engine.cumulative_report();

        engine.reset();
        assert_eq!(engine.epochs(), 0);
        assert_eq!(engine.streams(), 2);
        assert_eq!(engine.cumulative_report().epochs, 0);
        assert_eq!(engine.tree().assigned_b_count(), 0);

        let mut second = CollectingSink::new();
        let second_reports: Vec<_> =
            b.objects().chunks(chunk).map(|batch| engine.push_batch(batch, &mut second)).collect();
        assert_eq!(first.sorted_pairs(), second.sorted_pairs());
        assert_eq!(
            first_reports.iter().map(|r| r.summary()).collect::<Vec<_>>(),
            second_reports.iter().map(|r| r.summary()).collect::<Vec<_>>(),
            "the second stream must be indistinguishable from the first"
        );
        assert_eq!(engine.cumulative_report().counters, first_cumulative.counters);
    }

    #[test]
    fn traced_epochs_record_spans_and_change_nothing() {
        let (a, b) = workloads();
        let (expected_pairs, _, baseline) = stream_in_epochs(&a, &b, 3, 2);

        let trace = touch_metrics::ExecTrace::new();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(2));
        let mut sink = CollectingSink::new();
        let chunk = b.len().div_ceil(3).max(1);
        let mut reports = Vec::new();
        for batch in b.objects().chunks(chunk) {
            reports.push(engine.push_batch_traced(batch, &mut sink, &trace));
        }

        // Tracing is observational: pairs and counters are bit-identical.
        assert_eq!(sink.sorted_pairs(), expected_pairs);
        assert_eq!(
            baseline.iter().map(|r| r.summary()).collect::<Vec<_>>(),
            reports.iter().map(|r| r.summary()).collect::<Vec<_>>(),
        );

        // Each epoch records exactly one Epoch span, in order.
        let epochs: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e {
                touch_metrics::TraceEvent::Epoch { epoch, batch_size, .. } => {
                    Some((epoch, batch_size))
                }
                _ => None,
            })
            .collect();
        assert_eq!(epochs.len(), reports.len());
        for (i, (epoch, batch_size)) in epochs.iter().enumerate() {
            assert_eq!(*epoch, i);
            assert_eq!(*batch_size, reports[i].batch_size);
        }
        let summary = trace.summary().expect("recording sink summarises");
        assert_eq!(summary.epochs, reports.len());
        assert_eq!(summary.pairs_per_node.sum, expected_pairs.len() as u64);
    }

    #[test]
    fn empty_batches_and_empty_trees_are_harmless() {
        let (a, _) = workloads();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(2));
        let mut sink = CountingSink::new();
        let report = engine.push_batch(&[], &mut sink);
        assert_eq!(report.batch_size, 0);
        assert_eq!(report.results(), 0);
        assert_eq!(sink.count(), 0);

        // An empty tree filters every probe object, exactly like the one-shot join.
        let mut empty = StreamingTouchJoin::build(&Dataset::new(), streaming_cfg(1));
        let b = lattice(3, 2.0, 1.0, 0.0);
        let report = empty.push_batch(b.objects(), &mut sink);
        assert_eq!(report.counters.filtered, b.len() as u64);
        assert_eq!(report.assigned, 0);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn build_is_charged_once_and_epochs_accumulate() {
        let (a, b) = workloads();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let build_time = engine.build_time();
        let mut sink = CountingSink::new();
        for batch in b.objects().chunks(40) {
            engine.push_batch(batch, &mut sink);
        }
        let cumulative = engine.cumulative_report();
        assert_eq!(cumulative.timer.get(Phase::Build), build_time, "build charged exactly once");
        assert!(cumulative.timer.total() >= build_time);
        assert_eq!(cumulative.dataset_a, a.len());
        assert_eq!(cumulative.dataset_b, b.len());
        assert_eq!(cumulative.result_pairs(), sink.count());
        assert!(cumulative.memory_bytes > 0);
        assert_eq!(cumulative.algorithm, "TOUCH-S1");
        // The per-epoch reports never charge the build phase.
        engine.reset();
        let report = engine.push_batch(&b.objects()[..10], &mut sink);
        assert_eq!(report.timer.get(Phase::Build), std::time::Duration::ZERO);
    }

    #[test]
    fn build_extended_answers_the_distance_predicate_and_carries_epsilon() {
        let (a, b) = workloads();
        const EPS: f64 = 0.4;
        // Reference: the one-shot distance join through the unified query layer.
        let mut expected = CollectingSink::new();
        let expected_report = touch_core::JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(TouchJoin::new(touch_cfg()))
            .run(&mut expected);

        let mut engine = StreamingTouchJoin::build_extended(&a, EPS, streaming_cfg(1));
        // The ε is visible on the *partial* cumulative report before any epoch.
        assert_eq!(engine.cumulative_report().epsilon, EPS);
        let mut sink = CollectingSink::new();
        for batch in b.objects().chunks(40) {
            let _ = engine.push_batch(batch, &mut sink);
            assert_eq!(engine.cumulative_report().epsilon, EPS, "mid-stream report lost ε");
        }
        assert_eq!(sink.sorted_pairs(), expected.sorted_pairs());
        assert_eq!(engine.cumulative_report().result_pairs(), expected_report.result_pairs());
        engine.reset();
        assert_eq!(engine.cumulative_report().epsilon, EPS, "reset must keep the ε stamp");
    }

    #[test]
    fn one_shot_adapter_matches_the_sequential_join() {
        let (a, b) = workloads();
        let (expected_pairs, expected) = collect_join(&TouchJoin::new(touch_cfg()), &a, &b);
        for threads in [1, 3] {
            let adapter = OneShotStreaming::new(streaming_cfg(threads));
            assert_eq!(adapter.name(), format!("TOUCH-S{threads}"));
            assert_eq!(adapter.config().threads, threads);
            let (pairs, report) = collect_join(&adapter, &a, &b);
            assert_eq!(pairs, expected_pairs, "threads = {threads}");
            assert_eq!(report.counters, expected.counters, "threads = {threads}");
            assert_eq!(report.epochs, 1);
            assert_eq!(report.threads, threads);
            assert!(report.memory_bytes > 0);
        }
    }

    #[test]
    fn self_join_epochs_keep_each_unordered_pair_once() {
        let a = lattice(5, 1.2, 1.5, 0.0); // side > spacing: every neighbour pair overlaps
        let mut brute = Vec::new();
        for oa in a.iter() {
            for ob in a.iter() {
                if oa.id < ob.id && oa.mbr.intersects(&ob.mbr) {
                    brute.push((oa.id, ob.id));
                }
            }
        }
        brute.sort_unstable();
        assert!(!brute.is_empty());

        for threads in [1, 4] {
            // Direct epoch push against a tree over the same dataset...
            let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(threads));
            let mut sink = CollectingSink::new();
            let report = engine.push_batch_self(a.objects(), &mut sink);
            assert_eq!(sink.sorted_pairs(), brute, "threads = {threads}");
            assert_eq!(report.results(), brute.len() as u64);

            // ...and the one-shot adapter through the trait's self-join entry.
            let adapter = OneShotStreaming::new(streaming_cfg(threads));
            let mut adapter_sink = CollectingSink::new();
            let adapter_report = adapter.join_self(&a, &mut adapter_sink);
            assert_eq!(adapter_sink.sorted_pairs(), brute, "threads = {threads}");
            assert_eq!(adapter_report.result_pairs(), brute.len() as u64);
        }
    }

    #[test]
    fn push_batch_honours_early_terminating_sinks() {
        let (a, b) = workloads();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut sink = touch_core::FirstKSink::new(2);
        let report = engine.push_batch(b.objects(), &mut sink);
        assert_eq!(sink.count(), 2);
        assert_eq!(report.results(), 2);
    }

    #[test]
    fn planned_engine_replans_per_stream_from_accumulated_stats() {
        let a = lattice(5, 1.5, 1.0, 0.0);
        let mut engine =
            StreamingTouchJoin::build_planned(&a, streaming_cfg(1), JoinPlanner::default());
        let initial_cell = engine.min_cell();
        // Before any probe data, the cell floor comes from the tree alone:
        // 2 × the mean side of the unit boxes.
        assert!((initial_cell - 2.0).abs() < 1e-9, "got {initial_cell}");
        assert!(engine.plan().partitions >= 1);
        assert!(engine.tree().memoised_grid_count() > 0, "planned build memoises node grids");

        // Stream 1: large probe objects (side 4) in two epochs.
        let big = lattice(4, 3.0, 4.0, 0.2);
        let mut sink = CountingSink::new();
        for batch in big.objects().chunks(big.len() / 2) {
            let _ = engine.push_batch(batch, &mut sink);
        }
        assert_eq!(engine.stream_stats().count(), big.len());
        assert_eq!(engine.min_cell(), initial_cell, "parameters never move mid-stream");

        // The reset re-plans: the accumulated large-object stats raise the floor.
        engine.reset();
        assert!(
            engine.min_cell() > initial_cell,
            "large probe objects must raise the next stream's cell floor \
             ({} vs {initial_cell})",
            engine.min_cell()
        );
        assert_eq!(engine.stream_stats().count(), 0, "stream stats rewind at reset");

        // The re-planned stream still produces exactly the right answer.
        let mut pairs = CollectingSink::new();
        let _ = engine.push_batch(big.objects(), &mut pairs);
        let mut brute = Vec::new();
        for oa in a.iter() {
            for ob in big.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    brute.push((oa.id, ob.id));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(pairs.sorted_pairs(), brute);
    }

    #[test]
    fn planned_engine_records_the_workers_that_actually_run() {
        // A tree far below the planner's parallel-work bar, but an explicit
        // 4-worker execution budget: the recorded plan must carry the workers
        // that really run the epochs, not a planning-side down-rating.
        let a = lattice(3, 2.0, 1.0, 0.0); // 27 objects
        let engine =
            StreamingTouchJoin::build_planned(&a, streaming_cfg(4), JoinPlanner::default());
        assert_eq!(engine.threads(), 4);
        assert_eq!(engine.plan().threads(), 4, "plan and execution must agree on workers");
        let recorded = engine.cumulative_report().plan.expect("planned builds record a plan");
        assert_eq!(recorded.threads, 4);
        assert_eq!(recorded.strategy, "streaming(4)");
    }

    #[test]
    fn explicitly_configured_engines_never_replan() {
        let (a, b) = workloads();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let cell = engine.min_cell();
        let mut sink = CountingSink::new();
        let _ = engine.push_batch(b.objects(), &mut sink);
        engine.reset();
        assert_eq!(engine.min_cell(), cell, "explicit configs stay pinned across streams");
    }

    #[test]
    fn build_with_plan_matches_the_equivalent_config() {
        let (a, b) = workloads();
        let cfg = streaming_cfg(1);
        let plan =
            JoinPlan::from_streaming_tree(&cfg.touch, &a, 1, cfg.chunk_size, cfg.sort_threshold);

        let mut via_cfg = StreamingTouchJoin::build(&a, cfg);
        let mut cfg_sink = CollectingSink::new();
        let cfg_report = via_cfg.push_batch(b.objects(), &mut cfg_sink);

        let mut via_plan = StreamingTouchJoin::build_with_plan(&a, plan);
        let mut plan_sink = CollectingSink::new();
        let plan_report = via_plan.push_batch(b.objects(), &mut plan_sink);

        assert_eq!(plan_sink.sorted_pairs(), cfg_sink.sorted_pairs());
        assert_eq!(plan_report.counters, cfg_report.counters);
    }

    #[test]
    fn config_resolution_and_accessors() {
        let cfg = StreamingConfig::default();
        assert_eq!(cfg.threads, 1, "streaming defaults to the sequential path");
        assert_eq!(cfg.effective_threads(), 1);
        assert!(StreamingConfig::with_threads(0).effective_threads() >= 1);
        assert_eq!(StreamingConfig::with_threads(6).effective_threads(), 6);

        let (a, _) = workloads();
        let engine = StreamingTouchJoin::build(&a, streaming_cfg(3));
        assert_eq!(engine.threads(), 3);
        assert_eq!(engine.config().touch.partitions, 16);
        assert_eq!(engine.streams(), 1);
        assert!(engine.min_cell() > 0.0);
        assert_eq!(engine.tree().a_len(), a.len());
    }

    /// Splits `b` into `n` equal-ish batches.
    fn batches(b: &Dataset, n: usize) -> Vec<&[SpatialObject]> {
        b.objects().chunks(b.len().div_ceil(n).max(1)).collect()
    }

    /// After any number of older epochs were evicted, the newest epoch of a
    /// sliding window must be bit-identical — pairs, full per-epoch counters,
    /// window size — to a fresh engine that only ever saw the surviving epochs.
    #[test]
    fn windowed_epoch_matches_a_fresh_engine_over_the_surviving_window() {
        let (a, b) = workloads();
        let parts = batches(&b, 5);
        for threads in [1, 4] {
            // Slide a window of 2 across all five batches...
            let mut slid = StreamingTouchJoin::build(&a, streaming_cfg(threads));
            let mut slid_pairs = CollectingSink::new();
            let mut slid_report = None;
            for batch in &parts {
                slid_pairs = CollectingSink::new(); // newest epoch's output only
                slid_report = Some(slid.push_windowed(batch, 2, &mut slid_pairs));
            }
            assert_eq!(slid.window_epochs(), 2);

            // ...and replay just the last two batches on a fresh engine.
            let mut fresh = StreamingTouchJoin::build(&a, streaming_cfg(threads));
            let mut fresh_pairs = CollectingSink::new();
            let _ = fresh.push_windowed(parts[3], 2, &mut fresh_pairs);
            let mut fresh_pairs = CollectingSink::new();
            let fresh_report = fresh.push_windowed(parts[4], 2, &mut fresh_pairs);

            let slid_report = slid_report.unwrap();
            assert_eq!(
                slid_pairs.sorted_pairs(),
                fresh_pairs.sorted_pairs(),
                "threads = {threads}"
            );
            assert_eq!(
                slid_report.counters, fresh_report.counters,
                "threads = {threads}: eviction must leave no trace in the epoch's counters"
            );
            assert_eq!(slid_report.assigned, fresh_report.assigned);

            // And the window's pairs are exactly the brute force over its
            // logical contents.
            let mut brute = Vec::new();
            for oa in a.iter() {
                for ob in parts[3].iter().chain(parts[4].iter()) {
                    if oa.mbr.intersects(&ob.mbr) {
                        brute.push((oa.id, ob.id));
                    }
                }
            }
            brute.sort_unstable();
            assert_eq!(slid_pairs.sorted_pairs(), brute, "threads = {threads}");
        }
    }

    #[test]
    fn window_evictions_retract_assignments_and_record_trace_instants() {
        let (a, b) = workloads();
        let parts = batches(&b, 4);
        let trace = touch_metrics::ExecTrace::new();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut sink = CountingSink::new();
        let mut window_assigned = Vec::new();
        for batch in &parts {
            let report = engine.push_windowed_traced(batch, 3, &mut sink, &trace);
            window_assigned.push(report.assigned);
        }
        // Four pushes into a window of three: exactly one eviction, of epoch 0,
        // and the window population reflects it.
        assert_eq!(engine.window_epochs(), 3);
        assert_eq!(engine.tree().assigned_b_count(), *window_assigned.last().unwrap());
        let evictions: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Eviction { epoch, objects, .. } => Some((epoch, objects)),
                _ => None,
            })
            .collect();
        assert_eq!(evictions.len(), 1);
        assert_eq!(evictions[0].0, 0, "the oldest epoch leaves first");
        assert_eq!(
            evictions[0].1, window_assigned[0],
            "the eviction retracts exactly what epoch 0 assigned"
        );
        assert_eq!(trace.summary().expect("recording sink").evictions, 1);

        // A window of 1 degenerates to per-epoch joins: every push evicts.
        let mut narrow = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut narrow_sink = CollectingSink::new();
        for batch in &parts {
            narrow_sink = CollectingSink::new();
            let _ = narrow.push_windowed(batch, 1, &mut narrow_sink);
        }
        let mut fresh = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut fresh_sink = CollectingSink::new();
        let _ = fresh.push_batch(parts[3], &mut fresh_sink);
        assert_eq!(narrow_sink.sorted_pairs(), fresh_sink.sorted_pairs());
    }

    #[test]
    fn window_and_batch_modes_do_not_leak_into_each_other() {
        let (a, b) = workloads();
        let parts = batches(&b, 3);

        // push_batch then push_windowed: the batch epoch's assignments (still
        // in the tree) must not join into the window.
        let mut mixed = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut sink = CountingSink::new();
        let _ = mixed.push_batch(parts[0], &mut sink);
        let mut mixed_sink = CollectingSink::new();
        let _ = mixed.push_windowed(parts[1], 4, &mut mixed_sink);
        let mut fresh = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut fresh_sink = CollectingSink::new();
        let _ = fresh.push_windowed(parts[1], 4, &mut fresh_sink);
        assert_eq!(mixed_sink.sorted_pairs(), fresh_sink.sorted_pairs());

        // push_windowed then push_batch: the window must be dropped wholesale.
        let mut back = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut back_sink = CollectingSink::new();
        let _ = back.push_windowed(parts[0], 4, &mut back_sink);
        assert_eq!(back.window_epochs(), 1);
        let mut batch_sink = CollectingSink::new();
        let _ = back.push_batch(parts[2], &mut batch_sink);
        assert_eq!(back.window_epochs(), 0, "push_batch ends window mode");
        let mut fresh_sink = CollectingSink::new();
        let _ =
            StreamingTouchJoin::build(&a, streaming_cfg(1)).push_batch(parts[2], &mut fresh_sink);
        assert_eq!(batch_sink.sorted_pairs(), fresh_sink.sorted_pairs());
    }

    #[test]
    fn reset_clears_the_window() {
        let (a, b) = workloads();
        let parts = batches(&b, 3);
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut sink = CountingSink::new();
        for batch in &parts {
            let _ = engine.push_windowed(batch, 3, &mut sink);
        }
        assert_eq!(engine.window_epochs(), 3);
        engine.reset();
        assert_eq!(engine.window_epochs(), 0);
        assert_eq!(engine.tree().assigned_b_count(), 0);
        // The next windowed stream starts from scratch.
        let mut second = CollectingSink::new();
        let _ = engine.push_windowed(parts[0], 3, &mut second);
        let mut fresh_sink = CollectingSink::new();
        let _ = StreamingTouchJoin::build(&a, streaming_cfg(1)).push_windowed(
            parts[0],
            3,
            &mut fresh_sink,
        );
        assert_eq!(second.sorted_pairs(), fresh_sink.sorted_pairs());
    }

    /// The cross-stream leak behind `FirstKSink::reset`: the engine's `reset`
    /// cannot reach into the caller's sink, so an early-terminating stream 2
    /// only behaves like stream 1 if the sink's budget is restored too.
    #[test]
    fn first_k_streams_repeat_identically_when_the_sink_resets_with_the_engine() {
        let (a, b) = workloads();
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        let mut sink = touch_core::FirstKSink::new(3);
        let first = engine.push_batch(b.objects(), &mut sink);
        assert_eq!(sink.count(), 3);
        let stream1_pairs = sink.pairs().to_vec();

        // Without the sink reset the budget is spent: stream 2 accepts nothing.
        engine.reset();
        let stale = engine.push_batch(b.objects(), &mut sink);
        assert_eq!(sink.count(), 3, "a consumed budget admits no further pairs");
        assert_eq!(stale.results(), 0);

        // With it, stream 2 is indistinguishable from stream 1.
        engine.reset();
        sink.reset();
        let second = engine.push_batch(b.objects(), &mut sink);
        assert_eq!(sink.pairs(), stream1_pairs.as_slice());
        assert_eq!(second.summary(), first.summary());
    }
}

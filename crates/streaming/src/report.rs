//! Per-epoch measurement records of the streaming engine.

use touch_metrics::{Completion, Counters, PhaseTimer};

/// The measurement record of one [`push_batch`](crate::StreamingTouchJoin::push_batch)
/// call: what one epoch of the B stream cost against the persistent tree.
///
/// The deterministic portion of the record is exposed as [`EpochReport::summary`];
/// wall-clock times and memory live only in the full report because they legitimately
/// vary run to run.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// 0-based index of this epoch within the current stream (resets with
    /// [`reset`](crate::StreamingTouchJoin::reset)).
    pub epoch: usize,
    /// Number of B-objects in the pushed batch.
    pub batch_size: usize,
    /// Number of batch objects assigned to tree nodes (`batch_size` minus the
    /// filtered objects).
    pub assigned: usize,
    /// Counters incremented by this epoch only (assignment node tests, filtered
    /// objects, local-join comparisons, replicas, de-duplications, results).
    pub counters: Counters,
    /// Wall-clock breakdown of this epoch: assignment and join (the build phase is
    /// charged once, to the engine's cumulative report, not to any epoch).
    pub timer: PhaseTimer,
    /// Analytic memory footprint while this epoch ran: the persistent tree (with
    /// this epoch's assignments) plus the epoch's transient buffers.
    pub memory_bytes: usize,
    /// Worker threads the epoch ran with.
    pub threads: usize,
    /// How the epoch ended: [`Completion::Complete`] unless a cancel token
    /// attached via [`try_push_batch`](crate::StreamingTouchJoin::try_push_batch)
    /// tripped mid-epoch — then the counters and sink output above cover only
    /// the work done before the trip.
    pub completion: Completion,
}

impl EpochReport {
    /// Result pairs this epoch reported.
    pub fn results(&self) -> u64 {
        self.counters.results
    }

    /// The deterministic fields of the report — everything that must be
    /// bit-identical across runs and worker counts for the same tree and batch.
    /// (Wall-clock durations and transient memory are excluded: they vary
    /// legitimately.)
    pub fn summary(&self) -> EpochSummary {
        EpochSummary {
            epoch: self.epoch,
            batch_size: self.batch_size,
            assigned: self.assigned,
            counters: self.counters,
        }
    }
}

/// The deterministic portion of an [`EpochReport`], used by the determinism test
/// suites: identical epochs against an identical tree must produce equal summaries
/// at every worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSummary {
    /// 0-based epoch index within the stream.
    pub epoch: usize,
    /// Number of B-objects pushed.
    pub batch_size: usize,
    /// Number of B-objects assigned (not filtered).
    pub assigned: usize,
    /// The epoch's counters.
    pub counters: Counters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_extracts_the_deterministic_fields() {
        let mut counters = Counters::new();
        counters.results = 7;
        counters.comparisons = 41;
        let mut timer = PhaseTimer::new();
        timer.add(touch_metrics::Phase::Join, std::time::Duration::from_millis(3));
        let report = EpochReport {
            epoch: 2,
            batch_size: 100,
            assigned: 90,
            counters,
            timer,
            memory_bytes: 1234,
            threads: 4,
            completion: Completion::Complete,
        };
        assert_eq!(report.results(), 7);
        let summary = report.summary();
        assert_eq!(summary, EpochSummary { epoch: 2, batch_size: 100, assigned: 90, counters });
        // Two runs that differ only in timing/memory/threads summarise identically.
        let mut other = report.clone();
        other.memory_bytes = 99;
        other.threads = 1;
        other.timer = PhaseTimer::new();
        assert_eq!(other.summary(), summary);
    }
}

//! Analytic memory accounting.
//!
//! The paper reports the memory footprint of each algorithm's auxiliary structures
//! (Figures 9c/10c/11c/16c). Process-level RSS is too noisy to assert on inside a
//! library test suite, so every index/join structure in this workspace implements
//! [`MemoryUsage`] and sums the exact heap bytes of the vectors it owns. The numbers
//! track what the paper measures: PBSM's replicated cell lists dwarf everything else,
//! TOUCH sits slightly above a single R-tree, the dual-tree and dual-hierarchy
//! approaches sit above TOUCH.

/// Types that can report the heap memory they occupy.
pub trait MemoryUsage {
    /// Number of heap bytes owned by this structure (capacity, not length, for
    /// vectors — mirroring what the allocator actually reserved).
    fn memory_bytes(&self) -> usize;
}

/// Heap bytes owned by a vector (capacity × element size).
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

impl<T> MemoryUsage for Vec<T> {
    fn memory_bytes(&self) -> usize {
        vec_bytes(self)
    }
}

impl<T: MemoryUsage> MemoryUsage for Option<T> {
    fn memory_bytes(&self) -> usize {
        self.as_ref().map_or(0, MemoryUsage::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_bytes_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
        assert_eq!(v.memory_bytes(), 16 * 8);
    }

    #[test]
    fn empty_vec_is_zero() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(vec_bytes(&v), 0);
    }

    #[test]
    fn option_delegates() {
        let some: Option<Vec<u64>> = Some(Vec::with_capacity(4));
        let none: Option<Vec<u64>> = None;
        assert_eq!(some.memory_bytes(), 32);
        assert_eq!(none.memory_bytes(), 0);
    }
}

//! Tick-loop summaries: the measurement record of a simulation run.
//!
//! A tick loop (see `touch-sim`) runs the same planned join once per simulation
//! step; what matters is not one run's phase breakdown but the *distribution* of
//! per-tick latencies — sustained throughput, median and tail. [`TickSummary`]
//! aggregates a run into a [`Histogram`] of per-tick latencies (µs) plus exact
//! counters, and renders as its own CSV table and as a JSON-only `ticks` section
//! on [`RunReport`] (the report's CSV columns stay unchanged, like the serving
//! layer's `generation` stamp).
//!
//! [`RunReport`]: crate::RunReport

use crate::report::json_str;
use crate::Histogram;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The aggregated record of a tick-loop run: per-tick latency distribution plus
/// exact pair/re-plan tallies.
///
/// Latencies are recorded in whole microseconds (the histogram's bucket
/// resolution is log2, so sub-µs precision would be noise anyway). All fields
/// merge exactly — the histogram is `u64`-additive and the tallies are plain
/// sums — so sharded or resumed runs aggregate bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickSummary {
    /// Label of the engine that ran the ticks (e.g. `"TOUCH-P4"`).
    pub engine: String,
    /// Number of entities in the simulated world.
    pub entities: usize,
    /// Number of ticks executed.
    pub ticks: usize,
    /// Per-tick wall-clock latency in microseconds.
    pub latency_us: Histogram,
    /// Total collision/sensor pairs emitted over all ticks.
    pub pairs: u64,
    /// Number of ticks that re-planned (statistics drift crossed the threshold).
    pub replans: usize,
}

impl TickSummary {
    /// An empty summary for `engine` over a world of `entities` entities.
    pub fn new(engine: impl Into<String>, entities: usize) -> Self {
        TickSummary {
            engine: engine.into(),
            entities,
            ticks: 0,
            latency_us: Histogram::new(),
            pairs: 0,
            replans: 0,
        }
    }

    /// Records one completed tick.
    pub fn record(&mut self, latency_us: u64, pairs: u64, replanned: bool) {
        self.ticks += 1;
        self.latency_us.record(latency_us);
        self.pairs += pairs;
        if replanned {
            self.replans += 1;
        }
    }

    /// Sustained throughput in ticks per second, derived from the exact latency
    /// sum (0.0 before any tick completes).
    pub fn ticks_per_sec(&self) -> f64 {
        if self.latency_us.sum == 0 {
            return 0.0;
        }
        self.ticks as f64 / (self.latency_us.sum as f64 / 1e6)
    }

    /// Median per-tick latency in µs (bucket resolution).
    pub fn p50_us(&self) -> u64 {
        self.latency_us.percentile(0.5)
    }

    /// 99th-percentile per-tick latency in µs (bucket resolution).
    pub fn p99_us(&self) -> u64 {
        self.latency_us.percentile(0.99)
    }

    /// Exact mean per-tick latency in µs.
    pub fn mean_us(&self) -> f64 {
        self.latency_us.mean()
    }

    /// Slowest tick in µs.
    pub fn max_us(&self) -> u64 {
        self.latency_us.max
    }

    /// The CSV header matching [`TickSummary::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "engine,entities,ticks,pairs,replans,ticks_per_sec,mean_us,p50_us,p99_us,max_us"
    }

    /// One CSV row of the summary.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.2},{:.1},{},{},{}",
            crate::report::csv_field(&self.engine),
            self.entities,
            self.ticks,
            self.pairs,
            self.replans,
            self.ticks_per_sec(),
            self.mean_us(),
            self.p50_us(),
            self.p99_us(),
            self.max_us(),
        )
    }

    /// Flat JSON rendering (hand-rolled; the vendored serde is a no-op stub).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"engine\":{},\"entities\":{},\"ticks\":{},\"pairs\":{},\"replans\":{}",
            json_str(&self.engine),
            self.entities,
            self.ticks,
            self.pairs,
            self.replans
        );
        let _ = write!(
            out,
            ",\"ticks_per_sec\":{:.2},\"mean_us\":{:.1},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.ticks_per_sec(),
            self.mean_us(),
            self.p50_us(),
            self.p99_us(),
            self.max_us()
        );
        out
    }

    /// Folds `other` into `self`. Exact for every field, so any sharding of the
    /// same ticks aggregates bit-identically; the engine label and entity count
    /// are expected to match and `self`'s are kept.
    pub fn merge(&mut self, other: &TickSummary) {
        self.ticks += other.ticks;
        self.latency_us.merge(&other.latency_us);
        self.pairs += other.pairs;
        self.replans += other.replans;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_exact_tallies() {
        let mut t = TickSummary::new("TOUCH-P4", 1000);
        t.record(100, 5, false);
        t.record(300, 7, true);
        assert_eq!(t.ticks, 2);
        assert_eq!(t.pairs, 12);
        assert_eq!(t.replans, 1);
        assert_eq!(t.max_us(), 300);
        assert!((t.mean_us() - 200.0).abs() < 1e-12);
        // 2 ticks over 400 µs of latency = 5000 ticks/sec.
        assert!((t.ticks_per_sec() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_reports_zero_throughput() {
        let t = TickSummary::new("TOUCH", 0);
        assert_eq!(t.ticks_per_sec(), 0.0);
        assert_eq!(t.p50_us(), 0);
        assert_eq!(t.p99_us(), 0);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let mut t = TickSummary::new("TOUCH-P2", 500);
        t.record(50, 3, false);
        assert_eq!(TickSummary::csv_header().split(',').count(), t.to_csv_row().split(',').count());
        assert!(t.to_csv_row().starts_with("TOUCH-P2,500,1,3,0,"));
    }

    #[test]
    fn json_is_flat_and_balanced() {
        let mut t = TickSummary::new("TOUCH", 10);
        t.record(64, 2, true);
        let json = t.to_json();
        assert!(json.starts_with("{\"engine\":\"TOUCH\",\"entities\":10,\"ticks\":1,"));
        assert!(json.contains("\"replans\":1"));
        assert!(json.contains("\"p99_us\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_equals_one_shot() {
        let ticks = [(100u64, 5u64, false), (200, 1, true), (400, 9, false), (800, 0, true)];
        let mut one_shot = TickSummary::new("T", 7);
        for &(lat, pairs, re) in &ticks {
            one_shot.record(lat, pairs, re);
        }
        let (mut a, mut b) = (TickSummary::new("T", 7), TickSummary::new("T", 7));
        for (i, &(lat, pairs, re)) in ticks.iter().enumerate() {
            if i % 2 == 0 {
                a.record(lat, pairs, re)
            } else {
                b.record(lat, pairs, re)
            }
        }
        a.merge(&b);
        assert_eq!(a, one_shot);
    }
}

//! Phase timers.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The phases of a spatial join, following the structure of Algorithm 1 in the paper.
///
/// Not every algorithm has every phase: the nested loop join only has [`Phase::Join`],
/// index-based baselines have [`Phase::Build`] and [`Phase::Join`], TOUCH has all
/// three. Data loading/generation is *not* part of a join's reported time (the paper
/// shows in §6.3 that loading is negligible and reports it separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Building support structures (TOUCH tree, R-tree(s), grids, sorting).
    Build,
    /// Assigning the second dataset to the structure (TOUCH assignment, PBSM/S3
    /// partitioning of dataset B).
    Assignment,
    /// The actual join (probing / local joins / traversal).
    Join,
}

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; 3] = [Phase::Build, Phase::Assignment, Phase::Join];

    /// Stable lowercase name of the phase.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Assignment => "assignment",
            Phase::Join => "join",
        }
    }
}

/// Accumulates wall-clock time per [`Phase`].
///
/// The total (`total()`) is what the paper reports as *execution time*: it includes
/// index building, exactly as stated in §6.1 ("The time to build the indexing
/// structures is included as part of the reported query execution times").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTimer {
    build: Duration,
    assignment: Duration,
    join: Duration,
}

impl PhaseTimer {
    /// A timer with all phases at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, charging its duration to `phase`, and returns its result.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Adds an externally measured duration to `phase`.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        match phase {
            Phase::Build => self.build += d,
            Phase::Assignment => self.assignment += d,
            Phase::Join => self.join += d,
        }
    }

    /// Time accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Build => self.build,
            Phase::Assignment => self.assignment,
            Phase::Join => self.join,
        }
    }

    /// Total time across all phases — the paper's *execution time*.
    pub fn total(&self) -> Duration {
        self.build + self.assignment + self.join
    }

    /// Merges another timer into this one by **summing** each phase.
    ///
    /// Correct for aggregating *sequential* runs (e.g. several joins of one
    /// experiment). For *concurrent* per-thread timers this over-counts — phases
    /// that ran simultaneously would be added up into more than the elapsed wall
    /// clock; use [`PhaseTimer::max_merge`] there instead.
    pub fn merge(&mut self, other: &PhaseTimer) {
        self.build += other.build;
        self.assignment += other.assignment;
        self.join += other.join;
    }

    /// Merges another timer into this one by taking the per-phase **maximum**.
    ///
    /// This is the correct combination for timers recorded on concurrently running
    /// worker threads: a parallel phase is over when its *slowest* worker finishes,
    /// so the wall-clock time of the phase is the maximum — not the sum — of the
    /// per-worker times. (The `touch-parallel` coordinator prefers timing each phase
    /// around its fork/join point, which measures wall clock directly; `max_merge`
    /// covers the cases where only per-worker timers are available.)
    pub fn max_merge(&mut self, other: &PhaseTimer) {
        self.build = self.build.max(other.build);
        self.assignment = self.assignment.max(other.assignment);
        self.join = self.join.max(other.join);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_stable_names() {
        assert_eq!(Phase::Build.name(), "build");
        assert_eq!(Phase::Assignment.name(), "assignment");
        assert_eq!(Phase::Join.name(), "join");
        assert_eq!(Phase::ALL.len(), 3);
    }

    #[test]
    fn time_charges_the_right_phase_and_returns_value() {
        let mut t = PhaseTimer::new();
        let v = t.time(Phase::Join, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(t.get(Phase::Join) >= Duration::from_millis(1));
        assert_eq!(t.get(Phase::Build), Duration::ZERO);
        assert_eq!(t.total(), t.get(Phase::Join));
    }

    #[test]
    fn max_merge_takes_per_phase_maximum() {
        let mut a = PhaseTimer::new();
        a.add(Phase::Build, Duration::from_millis(10));
        a.add(Phase::Join, Duration::from_millis(2));
        let mut b = PhaseTimer::new();
        b.add(Phase::Build, Duration::from_millis(4));
        b.add(Phase::Join, Duration::from_millis(8));
        a.max_merge(&b);
        assert_eq!(a.get(Phase::Build), Duration::from_millis(10));
        assert_eq!(a.get(Phase::Join), Duration::from_millis(8));
        assert_eq!(a.get(Phase::Assignment), Duration::ZERO);
    }

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = PhaseTimer::new();
        a.add(Phase::Build, Duration::from_millis(5));
        a.add(Phase::Build, Duration::from_millis(5));
        let mut b = PhaseTimer::new();
        b.add(Phase::Join, Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.get(Phase::Build), Duration::from_millis(10));
        assert_eq!(a.get(Phase::Join), Duration::from_millis(7));
        assert_eq!(a.total(), Duration::from_millis(17));
    }
}

//! Run reports: the complete record of one algorithm execution.

use crate::{Counters, Phase, PhaseTimer, TickSummary, TraceSummary};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// The record of a planned join execution: which strategy ran and the derived
/// configuration knobs, plus the time spent collecting dataset statistics.
///
/// This is plain measurement data — the planner itself (cost model, statistics)
/// lives in `touch-core`; engines attach a `PlanSummary` to their [`RunReport`]
/// so experiment tables and the perfsmoke trajectory can show *what* the planner
/// chose without re-deriving it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSummary {
    /// Execution strategy label: `"sequential"`, `"parallel(4)"`, `"streaming(2)"`.
    pub strategy: String,
    /// Whether the hierarchy was built on dataset A.
    pub build_on_a: bool,
    /// STR partitions (leaf buckets) of the hierarchy.
    pub partitions: usize,
    /// Fanout of the hierarchy.
    pub fanout: usize,
    /// Target local-join grid cells per dimension.
    pub cells_per_dim: usize,
    /// Minimum local-join grid cell size (already resolved to a concrete value).
    pub min_cell_size: f64,
    /// A-count cutoff below which nodes use an all-pairs scan instead of a grid.
    pub allpairs_max_a: usize,
    /// Worker threads the plan runs with (1 for sequential).
    pub threads: usize,
    /// Wall-clock time spent collecting `DatasetStats` for this plan (zero when
    /// the plan was translated from an explicit configuration).
    pub stats_time: Duration,
}

impl PlanSummary {
    /// Compact one-token rendering for CSV cells and log lines, e.g.
    /// `"parallel(4):p1024:f2:c500:ap8"`.
    pub fn compact(&self) -> String {
        format!(
            "{}:p{}:f{}:c{}:ap{}",
            self.strategy, self.partitions, self.fanout, self.cells_per_dim, self.allpairs_max_a
        )
    }
}

/// How a run ended: to completion, or cut short cooperatively.
///
/// Stamped on [`RunReport::completion`] by the fallible entry points
/// (`JoinQuery::try_run` and friends). A cancelled or deadline-exceeded run
/// still returns its partial report — counters and pairs reflect the work
/// actually done before the engine observed the trigger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Completion {
    /// The run finished all its work (the only value infallible paths produce).
    #[default]
    Complete,
    /// A `CancelToken` was cancelled; the report covers the work done so far.
    Cancelled,
    /// The token's deadline elapsed; the report covers the work done so far.
    DeadlineExceeded,
}

impl Completion {
    /// Lowercase label used in JSON and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            Completion::Complete => "complete",
            Completion::Cancelled => "cancelled",
            Completion::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// `true` when the run finished all its work.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }
}

/// The complete measurement record of one join execution.
///
/// A `RunReport` is what every algorithm returns alongside its result pairs and what
/// the experiment harness aggregates into the paper's tables and figures.
///
/// The type is `#[must_use]`: a join whose report is discarded silently is almost
/// always a measurement bug — bind it (or `let _ = …` deliberately).
#[must_use]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Human-readable algorithm name, e.g. `"TOUCH"`, `"PBSM-500"`.
    pub algorithm: String,
    /// Number of objects in dataset A.
    pub dataset_a: usize,
    /// Number of objects in dataset B.
    pub dataset_b: usize,
    /// Distance threshold ε of the distance join (0 for a plain intersection join).
    pub epsilon: f64,
    /// Comparison / filtering counters.
    pub counters: Counters,
    /// Phase timing breakdown.
    pub timer: PhaseTimer,
    /// Analytic memory footprint of the algorithm's auxiliary structures, in bytes.
    pub memory_bytes: usize,
    /// Number of worker threads the join ran with (1 for every sequential
    /// algorithm; `touch-parallel` reports its resolved thread count).
    pub threads: usize,
    /// Number of probe epochs merged into this report: 1 for a one-shot join,
    /// the number of pushed batches for a `touch-streaming` cumulative report
    /// (0 before the first batch arrives).
    pub epochs: usize,
    /// The plan this run executed — strategy, derived knobs and stats-collection
    /// time. `None` only for algorithms outside the planned TOUCH engines (the
    /// baselines); the TOUCH engines record it whether the plan came from the
    /// planner (`Engine::Auto`) or from an explicit configuration.
    pub plan: Option<PlanSummary>,
    /// Skew summary of the execution trace. `None` unless the run was traced
    /// (see `TraceSink` — a disabled sink produces no summary by design).
    pub trace: Option<TraceSummary>,
    /// The serving-layer generation this run executed against. `None` outside
    /// the serving layer; `touch-serve` stamps the generation number a snapshot
    /// query ran on. JSON-only — the CSV columns stay unchanged.
    pub generation: Option<u64>,
    /// Tick-loop summary of a simulation run. `None` outside `touch-sim`; the
    /// tick engine attaches the per-tick latency distribution and pair tallies
    /// of the whole run. JSON-only — the CSV columns stay unchanged (the
    /// summary has its own CSV table, [`TickSummary::to_csv_row`]).
    pub ticks: Option<TickSummary>,
    /// How the run ended. Always [`Completion::Complete`] for infallible entry
    /// points; the fallible paths stamp `Cancelled` / `DeadlineExceeded` on a
    /// cooperatively cut-short run. JSON-only (and only when not complete) —
    /// the CSV columns stay unchanged.
    pub completion: Completion,
    /// Invalid probe/build objects skipped at ingestion under
    /// `ValidationPolicy::SkipInvalid` (0 everywhere else). JSON-only (and
    /// only when non-zero) — the CSV columns stay unchanged.
    pub invalid_skipped: u64,
}

impl RunReport {
    /// Creates a report for `algorithm` joining `|A| = dataset_a` and `|B| = dataset_b`.
    pub fn new(algorithm: impl Into<String>, dataset_a: usize, dataset_b: usize) -> Self {
        RunReport {
            algorithm: algorithm.into(),
            dataset_a,
            dataset_b,
            epsilon: 0.0,
            counters: Counters::new(),
            timer: PhaseTimer::new(),
            memory_bytes: 0,
            threads: 1,
            epochs: 1,
            plan: None,
            trace: None,
            generation: None,
            ticks: None,
            completion: Completion::Complete,
            invalid_skipped: 0,
        }
    }

    /// Folds one probe epoch into this report: counters and phase times accumulate,
    /// the memory footprint keeps its peak, `dataset_b` grows by the batch size and
    /// the epoch count advances. This is the aggregation `touch-streaming` applies
    /// after every [`push_batch`](https://docs.rs/touch) so a cumulative report over
    /// k epochs lines up with the one-shot join of the concatenated batches: the
    /// build time is charged once (by the engine, at build), everything else is
    /// exactly additive.
    pub fn merge_epoch(
        &mut self,
        batch_size: usize,
        counters: &Counters,
        timer: &PhaseTimer,
        memory_bytes: usize,
    ) {
        self.dataset_b += batch_size;
        self.counters.merge(counters);
        self.timer.merge(timer);
        self.memory_bytes = self.memory_bytes.max(memory_bytes);
        self.epochs += 1;
    }

    /// Total execution time (build + assignment + join), the paper's reported time.
    pub fn total_time(&self) -> Duration {
        self.timer.total()
    }

    /// Result pairs reported by the join.
    pub fn result_pairs(&self) -> u64 {
        self.counters.results
    }

    /// Join selectivity as defined in Equation 1 of the paper:
    /// `|result pairs| / (|A| × |B|)`.
    pub fn selectivity(&self) -> f64 {
        if self.dataset_a == 0 || self.dataset_b == 0 {
            return 0.0;
        }
        self.counters.results as f64 / (self.dataset_a as f64 * self.dataset_b as f64)
    }

    /// One CSV row with the standard columns (see [`RunReport::csv_header`]).
    ///
    /// The free-form columns (`algorithm`, `plan`) are passed through
    /// [`csv_field`], so labels containing commas, quotes or newlines are
    /// quoted per RFC 4180 instead of silently corrupting the row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{:.6}",
            csv_field(&self.algorithm),
            self.dataset_a,
            self.dataset_b,
            self.epsilon,
            self.threads,
            self.epochs,
            self.counters.comparisons,
            self.counters.node_tests,
            self.counters.results,
            self.counters.filtered,
            self.counters.duplicates_suppressed,
            self.memory_bytes,
            self.timer.get(Phase::Build).as_secs_f64(),
            self.timer.get(Phase::Assignment).as_secs_f64(),
            self.timer.get(Phase::Join).as_secs_f64(),
            self.total_time().as_secs_f64(),
            csv_field(&self.plan.as_ref().map(|p| p.compact()).unwrap_or_else(|| "-".to_string())),
            self.plan.as_ref().map(|p| p.stats_time.as_secs_f64()).unwrap_or(0.0),
        )
    }

    /// The CSV header matching [`RunReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "algorithm,a,b,epsilon,threads,epochs,comparisons,node_tests,results,filtered,duplicates_suppressed,memory_bytes,build_s,assignment_s,join_s,total_s,plan,planning_s"
    }

    /// Hand-rolled JSON rendering of the whole report (the vendored serde is
    /// a no-op stub). Used by the trace exporters and the bench harness; the
    /// layout is flat and additive-safe for key-lookup parsers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"algorithm\":{},\"a\":{},\"b\":{},\"epsilon\":{},\"threads\":{},\"epochs\":{}",
            json_str(&self.algorithm),
            self.dataset_a,
            self.dataset_b,
            self.epsilon,
            self.threads,
            self.epochs
        );
        let _ = write!(
            out,
            ",\"comparisons\":{},\"node_tests\":{},\"results\":{},\"filtered\":{},\"duplicates_suppressed\":{},\"replicas\":{},\"memory_bytes\":{}",
            self.counters.comparisons,
            self.counters.node_tests,
            self.counters.results,
            self.counters.filtered,
            self.counters.duplicates_suppressed,
            self.counters.replicas,
            self.memory_bytes
        );
        let _ = write!(
            out,
            ",\"build_s\":{:.6},\"assignment_s\":{:.6},\"join_s\":{:.6},\"total_s\":{:.6}",
            self.timer.get(Phase::Build).as_secs_f64(),
            self.timer.get(Phase::Assignment).as_secs_f64(),
            self.timer.get(Phase::Join).as_secs_f64(),
            self.total_time().as_secs_f64()
        );
        match &self.plan {
            Some(p) => {
                let _ = write!(
                    out,
                    ",\"plan\":{},\"planning_s\":{:.6}",
                    json_str(&p.compact()),
                    p.stats_time.as_secs_f64()
                );
            }
            None => out.push_str(",\"plan\":null,\"planning_s\":0.000000"),
        }
        match &self.trace {
            Some(t) => {
                let _ = write!(out, ",\"trace\":{}", t.to_json());
            }
            None => out.push_str(",\"trace\":null"),
        }
        if let Some(generation) = self.generation {
            let _ = write!(out, ",\"generation\":{generation}");
        }
        if let Some(ticks) = &self.ticks {
            let _ = write!(out, ",\"ticks\":{}", ticks.to_json());
        }
        if !self.completion.is_complete() {
            let _ = write!(out, ",\"completion\":{}", json_str(self.completion.name()));
        }
        if self.invalid_skipped > 0 {
            let _ = write!(out, ",\"invalid_skipped\":{}", self.invalid_skipped);
        }
        out.push('}');
        out
    }
}

/// Escapes one CSV field per RFC 4180: returned unchanged unless it contains
/// a comma, double quote, CR or LF, in which case it is wrapped in double
/// quotes with embedded quotes doubled. Plain fields stay byte-identical, so
/// existing CSV outputs don't change.
pub fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\r', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders `s` as a JSON string literal (escaping backslash, quote and
/// control characters).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a count with thousands separators (`1234567` → `"1,234,567"`).
pub fn format_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    let bytes = s.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Formats a duration compactly (`"1.23 s"`, `"45.6 ms"`, `"789 µs"`).
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_matches_equation_1() {
        let mut r = RunReport::new("NL", 100, 200);
        r.counters.results = 50;
        assert!((r.selectivity() - 50.0 / 20_000.0).abs() < 1e-15);
        let empty = RunReport::new("NL", 0, 200);
        assert_eq!(empty.selectivity(), 0.0);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let mut r = RunReport::new("TOUCH", 10, 20);
        r.epsilon = 5.0;
        r.counters.comparisons = 123;
        let header_cols = RunReport::csv_header().split(',').count();
        let row_cols = r.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.to_csv_row().starts_with("TOUCH,10,20,5,1,1,123"));
    }

    #[test]
    fn thread_count_defaults_to_one_and_is_reported() {
        let mut r = RunReport::new("TOUCH-P", 10, 20);
        assert_eq!(r.threads, 1);
        r.threads = 8;
        assert!(r.to_csv_row().starts_with("TOUCH-P,10,20,0,8,1,"));
        assert!(RunReport::csv_header().contains(",threads,epochs,"));
    }

    #[test]
    fn merge_epoch_accumulates_counters_and_keeps_peak_memory() {
        let mut r = RunReport::new("TOUCH-S", 100, 0);
        r.epochs = 0; // a streaming cumulative report starts with no epochs
        r.memory_bytes = 500;
        r.timer.add(Phase::Build, Duration::from_millis(10)); // charged once, at build

        let mut c1 = Counters::new();
        c1.comparisons = 5;
        c1.results = 2;
        let mut t1 = PhaseTimer::new();
        t1.add(Phase::Join, Duration::from_millis(3));
        r.merge_epoch(40, &c1, &t1, 900);

        let mut c2 = Counters::new();
        c2.comparisons = 7;
        c2.filtered = 1;
        let mut t2 = PhaseTimer::new();
        t2.add(Phase::Assignment, Duration::from_millis(2));
        r.merge_epoch(60, &c2, &t2, 800);

        assert_eq!(r.epochs, 2);
        assert_eq!(r.dataset_b, 100);
        assert_eq!(r.counters.comparisons, 12);
        assert_eq!(r.counters.results, 2);
        assert_eq!(r.counters.filtered, 1);
        assert_eq!(r.memory_bytes, 900, "memory keeps the epoch peak");
        assert_eq!(r.timer.get(Phase::Build), Duration::from_millis(10));
        assert_eq!(r.timer.get(Phase::Join), Duration::from_millis(3));
        assert_eq!(r.timer.get(Phase::Assignment), Duration::from_millis(2));
    }

    #[test]
    fn plan_summary_round_trips_through_csv() {
        let mut r = RunReport::new("TOUCH", 10, 20);
        assert!(r.to_csv_row().contains(",-,0.000000"), "unplanned runs render a dash");
        r.plan = Some(PlanSummary {
            strategy: "parallel(4)".into(),
            build_on_a: true,
            partitions: 1024,
            fanout: 2,
            cells_per_dim: 500,
            min_cell_size: 1.5,
            allpairs_max_a: 8,
            threads: 4,
            stats_time: Duration::from_millis(3),
        });
        let row = r.to_csv_row();
        assert!(row.contains("parallel(4):p1024:f2:c500:ap8"));
        assert!(row.ends_with("0.003000"));
        assert_eq!(
            RunReport::csv_header().split(',').count(),
            row.split(',').count(),
            "plan columns must keep header arity"
        );
    }

    #[test]
    fn csv_field_quotes_only_when_needed() {
        assert_eq!(csv_field("TOUCH"), "TOUCH");
        assert_eq!(csv_field("parallel(4):p1024:f2:c500:ap8"), "parallel(4):p1024:f2:c500:ap8");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn csv_row_quotes_algorithm_labels_with_commas() {
        let mut r = RunReport::new("NL,special", 1, 1);
        assert!(r.to_csv_row().starts_with("\"NL,special\",1,1,"));
        r.algorithm = "TOUCH".into();
        assert!(r.to_csv_row().starts_with("TOUCH,1,1,"), "plain labels stay unquoted");
    }

    #[test]
    fn json_str_escapes_specials() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn to_json_is_flat_and_complete() {
        let mut r = RunReport::new("TOUCH", 10, 20);
        r.epsilon = 5.0;
        r.counters.comparisons = 123;
        r.counters.results = 7;
        let json = r.to_json();
        assert!(json.starts_with("{\"algorithm\":\"TOUCH\",\"a\":10,\"b\":20,\"epsilon\":5,"));
        assert!(json.contains("\"comparisons\":123"));
        assert!(json.contains("\"results\":7"));
        assert!(json.contains("\"plan\":null"));
        assert!(json.contains("\"trace\":null"));
        assert!(json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn to_json_embeds_plan_and_trace() {
        let mut r = RunReport::new("TOUCH", 10, 20);
        r.plan = Some(PlanSummary {
            strategy: "sequential".into(),
            build_on_a: true,
            partitions: 64,
            fanout: 2,
            cells_per_dim: 500,
            min_cell_size: 1.0,
            allpairs_max_a: 8,
            threads: 1,
            stats_time: Duration::from_millis(2),
        });
        r.trace = Some(TraceSummary {
            node_time_us: crate::Histogram::new(),
            candidates: crate::Histogram::new(),
            pairs_per_node: crate::Histogram::new(),
            workers: vec![],
            epochs: 0,
            steals: 0,
            generations: 0,
            evictions: 0,
        });
        let json = r.to_json();
        assert!(json.contains("\"plan\":\"sequential:p64:f2:c500:ap8\""));
        assert!(json.contains("\"planning_s\":0.002000"));
        assert!(json.contains("\"trace\":{\"node_time_us\":"));
    }

    #[test]
    fn to_json_stamps_the_serving_generation_only_when_present() {
        let mut r = RunReport::new("TOUCH-SERVE", 10, 20);
        assert!(!r.to_json().contains("\"generation\""), "absent outside the serving layer");
        r.generation = Some(7);
        assert!(r.to_json().contains("\"generation\":7"));
        // And the CSV shape is unaffected either way.
        assert_eq!(RunReport::csv_header().split(',').count(), r.to_csv_row().split(',').count());
    }

    #[test]
    fn to_json_embeds_the_tick_section_only_when_present() {
        let mut r = RunReport::new("TOUCH-SIM", 10, 10);
        assert!(!r.to_json().contains("\"ticks\""), "absent outside the simulation layer");
        let mut ticks = TickSummary::new("TOUCH-P4", 10);
        ticks.record(120, 3, false);
        r.ticks = Some(ticks);
        let json = r.to_json();
        assert!(json.contains("\"ticks\":{\"engine\":\"TOUCH-P4\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // And the CSV shape is unaffected either way.
        assert_eq!(RunReport::csv_header().split(',').count(), r.to_csv_row().split(',').count());
    }

    #[test]
    fn to_json_stamps_completion_only_when_cut_short() {
        let mut r = RunReport::new("TOUCH", 10, 20);
        assert!(!r.to_json().contains("\"completion\""), "complete runs stay unchanged");
        r.completion = Completion::Cancelled;
        assert!(r.to_json().contains("\"completion\":\"cancelled\""));
        r.completion = Completion::DeadlineExceeded;
        assert!(r.to_json().contains("\"completion\":\"deadline-exceeded\""));
        // And the CSV shape is unaffected either way.
        assert_eq!(RunReport::csv_header().split(',').count(), r.to_csv_row().split(',').count());
    }

    #[test]
    fn to_json_counts_skipped_invalid_objects_only_when_any() {
        let mut r = RunReport::new("TOUCH", 10, 20);
        assert!(!r.to_json().contains("\"invalid_skipped\""));
        r.invalid_skipped = 3;
        assert!(r.to_json().contains("\"invalid_skipped\":3"));
        assert_eq!(RunReport::csv_header().split(',').count(), r.to_csv_row().split(',').count());
    }

    #[test]
    fn completion_defaults_to_complete() {
        assert_eq!(Completion::default(), Completion::Complete);
        assert!(Completion::Complete.is_complete());
        assert!(!Completion::Cancelled.is_complete());
        assert_eq!(Completion::Cancelled.name(), "cancelled");
        assert_eq!(RunReport::new("x", 1, 1).completion, Completion::Complete);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(format_count(0), "0");
        assert_eq!(format_count(999), "999");
        assert_eq!(format_count(1_000), "1,000");
        assert_eq!(format_count(1_234_567), "1,234,567");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(format_duration(Duration::from_millis(45)), "45.0 ms");
        assert_eq!(format_duration(Duration::from_micros(789)), "789 µs");
    }

    #[test]
    fn total_time_sums_phases() {
        let mut r = RunReport::new("RTree", 1, 1);
        r.timer.add(Phase::Build, Duration::from_millis(10));
        r.timer.add(Phase::Join, Duration::from_millis(5));
        assert_eq!(r.total_time(), Duration::from_millis(15));
        assert_eq!(r.result_pairs(), 0);
    }
}

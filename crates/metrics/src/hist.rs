//! Fixed-bucket log2 histograms for skew summaries.
//!
//! The tracing layer aggregates per-node observations (local-join wall time,
//! candidate counts, pairs per node) into [`Histogram`]s so a [`RunReport`]
//! can surface p50/p90/p99 without retaining every span. The design mirrors
//! the extent histograms of `touch-core`'s `DatasetStats`: a fixed number of
//! power-of-two buckets and a **merge that is exact** — plain `u64` additions,
//! so merging is associative and commutative and worker-sharded or
//! epoch-split aggregation is bit-identical to one-shot aggregation.
//!
//! [`RunReport`]: crate::RunReport

use serde::{Deserialize, Serialize};

/// Number of buckets: bucket 0 holds the value 0, buckets `1..=64` hold
/// `[2^(i-1), 2^i)`, so every `u64` maps to exactly one bucket.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` observations.
///
/// Bucket 0 counts zeros; bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`.
/// Alongside the buckets it tracks exact `count`, `sum`, `min` and `max`, so
/// means are exact and percentiles are bucket-resolution (within 2× of the
/// true value). [`Histogram::merge`] is a fieldwise `u64` sum (min/max via
/// min/max), which makes it exact, associative and commutative — the same
/// discipline as `DatasetStats::merge` in `touch-core`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`] for the layout).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observations (wrapping add on overflow).
    pub sum: u64,
    /// Smallest observation (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observation (0 while empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index `value` falls into: 0 for 0, else `1 + ilog2(value)`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            1 + value.ilog2() as usize
        }
    }

    /// Inclusive upper edge of bucket `i`: 0 for bucket 0, else `2^i - 1`
    /// (saturating at `u64::MAX` for the last bucket).
    #[inline]
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the observations (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) at bucket resolution: the inclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `ceil(q × count)`, clamped to the exact observed `max` (and `min` from
    /// below). Returns 0 while empty.
    ///
    /// Out-of-range `q` is clamped to `[0, 1]`, and a NaN `q` is defined to
    /// behave like `q = 1.0` (it reads as "no valid quantile requested", and
    /// the max is the only answer that cannot understate tail latency) —
    /// `f64::clamp` would otherwise pass NaN straight through and silently
    /// select the lowest bucket.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Exact: plain `u64` additions per field, so
    /// `merge` is associative and commutative and any sharding of the same
    /// observations produces a bit-identical result.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 1..64 {
            // every bucket's upper edge maps back into that bucket
            assert_eq!(Histogram::bucket_of(Histogram::bucket_upper(i)), i);
        }
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 1011.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_bucket_resolution_clamped_to_observed_range() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p100 is exact: clamped to max.
        assert_eq!(h.percentile(1.0), 100);
        // p50: rank 50 lands in bucket 6 ([32,64)), upper edge 63.
        assert_eq!(h.percentile(0.5), 63);
        // p0 clamps to min from below.
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn percentile_defines_out_of_range_and_nan_queries() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Out-of-range q clamps to the nearest valid quantile.
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(7.5), h.percentile(1.0));
        assert_eq!(h.percentile(f64::NEG_INFINITY), h.percentile(0.0));
        assert_eq!(h.percentile(f64::INFINITY), h.percentile(1.0));
        // NaN behaves like q = 1.0 instead of silently picking the lowest bucket.
        assert_eq!(h.percentile(f64::NAN), h.percentile(1.0));
        assert_eq!(h.percentile(f64::NAN), 100);
        assert_eq!(Histogram::new().percentile(f64::NAN), 0, "empty stays 0 for any q");
    }

    #[test]
    fn merge_equals_one_shot() {
        let values = [0u64, 3, 3, 9, 127, 128, 4096, u64::MAX];
        let mut one_shot = Histogram::new();
        for &v in &values {
            one_shot.record(v);
        }
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, one_shot);
        assert_eq!(ba, one_shot, "merge is commutative");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
    }
}

//! Comparison counters shared by all join algorithms.

use serde::{Deserialize, Serialize};

/// Counters incremented by every join algorithm while it runs.
///
/// The paper's headline metric is `comparisons`: the number of pairwise
/// *object–object* MBR intersection tests. Index-level tests (node MBR against node or
/// object MBR) are tracked separately in `node_tests` so that the reproduction counts
/// exactly what the paper counts. The remaining counters capture TOUCH-specific
/// behaviour (filtered objects, Figure 13) and de-duplication work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Object–object MBR intersection tests (the paper's "number of comparisons").
    pub comparisons: u64,
    /// Index-level MBR tests: node–node or node–object, not counted as comparisons.
    pub node_tests: u64,
    /// Result pairs reported.
    pub results: u64,
    /// Objects of dataset B discarded by filtering (TOUCH / S3), Figure 13.
    pub filtered: u64,
    /// Candidate pairs suppressed by the reference-point de-duplication rule
    /// (PBSM and the TOUCH grid local join).
    pub duplicates_suppressed: u64,
    /// Object replicas created by multiple-assignment partitioning (PBSM grid cells,
    /// TOUCH local-join grid cells). Drives the memory overhead the paper attributes
    /// to PBSM.
    pub replicas: u64,
    /// Candidate lanes fed through the batched MBR filter (`kernels::overlap_batch`).
    /// Counts *logical* lanes, so the value is machine-independent: the same join
    /// reports the same number whether the batch ran on AVX2, SSE2, NEON or the
    /// scalar fallback.
    pub batch_lanes: u64,
    /// Lanes the batched MBR filter passed on to the exact scalar confirmation
    /// (popcount of the overlap bitmask). Machine-independent like `batch_lanes`;
    /// `batch_hits / batch_lanes` is the filter's selectivity.
    pub batch_hits: u64,
}

impl Counters {
    /// A zeroed set of counters.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one object–object comparison.
    #[inline]
    pub fn record_comparison(&mut self) {
        self.comparisons += 1;
    }

    /// Records `n` object–object comparisons at once.
    #[inline]
    pub fn record_comparisons(&mut self, n: u64) {
        self.comparisons += n;
    }

    /// Records one index-level (node) MBR test.
    #[inline]
    pub fn record_node_test(&mut self) {
        self.node_tests += 1;
    }

    /// Records one reported result pair.
    #[inline]
    pub fn record_result(&mut self) {
        self.results += 1;
    }

    /// Records one filtered object of dataset B.
    #[inline]
    pub fn record_filtered(&mut self) {
        self.filtered += 1;
    }

    /// Records one pair suppressed by the reference-point rule.
    #[inline]
    pub fn record_duplicate_suppressed(&mut self) {
        self.duplicates_suppressed += 1;
    }

    /// Records one object replica created by multiple assignment.
    #[inline]
    pub fn record_replica(&mut self) {
        self.replicas += 1;
    }

    /// Records one batched MBR filter evaluation: `lanes` candidate lanes tested,
    /// of which `hits` survived the bitmask and went to the exact scalar check.
    #[inline]
    pub fn record_batch(&mut self, lanes: u64, hits: u64) {
        self.batch_lanes += lanes;
        self.batch_hits += hits;
    }

    /// Adds another set of counters to this one (e.g. to aggregate per-partition runs).
    pub fn merge(&mut self, other: &Counters) {
        self.comparisons += other.comparisons;
        self.node_tests += other.node_tests;
        self.results += other.results;
        self.filtered += other.filtered;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.replicas += other.replicas;
        self.batch_lanes += other.batch_lanes;
        self.batch_hits += other.batch_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Counters::new();
        assert_eq!(c, Counters::default());
        assert_eq!(c.comparisons, 0);
        assert_eq!(c.results, 0);
    }

    #[test]
    fn increments() {
        let mut c = Counters::new();
        c.record_comparison();
        c.record_comparisons(4);
        c.record_node_test();
        c.record_result();
        c.record_filtered();
        c.record_duplicate_suppressed();
        c.record_replica();
        c.record_batch(4, 3);
        assert_eq!(c.comparisons, 5);
        assert_eq!(c.node_tests, 1);
        assert_eq!(c.results, 1);
        assert_eq!(c.filtered, 1);
        assert_eq!(c.duplicates_suppressed, 1);
        assert_eq!(c.replicas, 1);
        assert_eq!(c.batch_lanes, 4);
        assert_eq!(c.batch_hits, 3);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = Counters {
            comparisons: 1,
            node_tests: 2,
            results: 3,
            filtered: 4,
            duplicates_suppressed: 5,
            replicas: 6,
            batch_lanes: 7,
            batch_hits: 8,
        };
        let b = Counters {
            comparisons: 10,
            node_tests: 20,
            results: 30,
            filtered: 40,
            duplicates_suppressed: 50,
            replicas: 60,
            batch_lanes: 70,
            batch_hits: 80,
        };
        a.merge(&b);
        assert_eq!(a.comparisons, 11);
        assert_eq!(a.node_tests, 22);
        assert_eq!(a.results, 33);
        assert_eq!(a.filtered, 44);
        assert_eq!(a.duplicates_suppressed, 55);
        assert_eq!(a.replicas, 66);
        assert_eq!(a.batch_lanes, 77);
        assert_eq!(a.batch_hits, 88);
    }
}

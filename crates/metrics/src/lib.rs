//! # touch-metrics — instrumentation for the TOUCH spatial join reproduction
//!
//! The paper evaluates every algorithm along three axes:
//!
//! 1. **Number of comparisons** — pairwise *object–object* MBR intersection tests
//!    (Figures 8a, 9a, 10a, 11a, 14b, 16b),
//! 2. **Execution time**, broken into build / assignment / join phases where
//!    applicable (Figures 8b, 9b, 10b, 11b, 12, 15, 16a),
//! 3. **Memory footprint** of the auxiliary join structures (Figures 9c, 10c, 11c,
//!    16c).
//!
//! This crate provides the shared vocabulary for those measurements:
//!
//! * [`Counters`] — cheap, always-on counters every algorithm increments,
//! * [`PhaseTimer`] / [`Phase`] — wall-clock phase breakdown,
//! * [`MemoryUsage`] — analytic memory accounting trait + helpers,
//! * [`RunReport`] — the complete record of one algorithm execution, the unit the
//!   experiment harness aggregates into tables and figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counters;
mod memory;
mod report;
mod timer;

pub use counters::Counters;
pub use memory::{vec_bytes, MemoryUsage};
pub use report::{format_count, format_duration, PlanSummary, RunReport};
pub use timer::{Phase, PhaseTimer};

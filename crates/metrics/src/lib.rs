//! # touch-metrics — instrumentation for the TOUCH spatial join reproduction
//!
//! The paper evaluates every algorithm along three axes:
//!
//! 1. **Number of comparisons** — pairwise *object–object* MBR intersection tests
//!    (Figures 8a, 9a, 10a, 11a, 14b, 16b),
//! 2. **Execution time**, broken into build / assignment / join phases where
//!    applicable (Figures 8b, 9b, 10b, 11b, 12, 15, 16a),
//! 3. **Memory footprint** of the auxiliary join structures (Figures 9c, 10c, 11c,
//!    16c).
//!
//! This crate provides the shared vocabulary for those measurements:
//!
//! * [`Counters`] — cheap, always-on counters every algorithm increments,
//! * [`PhaseTimer`] / [`Phase`] — wall-clock phase breakdown,
//! * [`MemoryUsage`] — analytic memory accounting trait + helpers,
//! * [`RunReport`] — the complete record of one algorithm execution, the unit the
//!   experiment harness aggregates into tables and figures,
//! * [`TraceSink`] / [`NoTrace`] / [`ExecTrace`] — optional execution tracing
//!   (per-node spans, steal events, epoch spans) with [`Histogram`]-based skew
//!   summaries ([`TraceSummary`]) and Chrome-trace / text-profile exporters,
//! * [`Completion`] — how a run ended (complete / cancelled / deadline), stamped
//!   on [`RunReport`] by the fallible execution paths,
//! * [`FaultPlan`] — a deterministic fault-injection [`TraceSink`] that panics or
//!   stalls at the exact seams the engines trace, for the robustness stress
//!   suites.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counters;
mod fault;
mod hist;
mod memory;
mod report;
mod ticks;
mod timer;
mod trace;

pub use counters::Counters;
pub use fault::{FaultAction, FaultPlan, Seam};
pub use hist::{Histogram, HIST_BUCKETS};
pub use memory::{vec_bytes, MemoryUsage};
pub use report::{
    csv_field, format_count, format_duration, json_str, Completion, PlanSummary, RunReport,
};
pub use ticks::TickSummary;
pub use timer::{Phase, PhaseTimer};
pub use trace::{ExecTrace, NoTrace, TraceEvent, TraceSink, TraceSummary, WorkerStats};

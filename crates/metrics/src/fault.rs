//! Deterministic fault injection for the fault-tolerance stress suites.
//!
//! [`FaultPlan`] is a [`TraceSink`] that, instead of recording events, *reacts*
//! to them: a trigger armed for the n-th occurrence of a seam (phase boundary,
//! assignment chunk, node join, …) on a given worker fires a panic or a delay
//! at exactly that point of the execution. Because the engines already report
//! every attributable unit of work through their trace hooks, injection needs
//! no extra plumbing — passing a `FaultPlan` where a trace sink is accepted
//! exercises the same code path production runs use, at the same seams.
//!
//! Panic messages are prefixed `fault-injection:` so stress harnesses can
//! filter the expected noise from a real failure. Trigger matching is
//! deterministic: seams are counted per `(seam, worker)` pair, and a trigger
//! fires on an exact invocation count — re-running the same plan against the
//! same workload fires at the same place every time (per worker; which OS
//! thread reaches the count first is scheduling-dependent, the *logical*
//! worker index is not).

use crate::{TraceEvent, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A seam the engines report through their trace hooks — the injection points
/// a [`FaultPlan`] trigger can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Seam {
    /// The build-phase boundary (coordinator).
    Build,
    /// The assignment-phase boundary (coordinator).
    Assignment,
    /// The join-phase boundary (coordinator).
    Join,
    /// One assignment work chunk (per worker).
    AssignChunk,
    /// One per-node local join (per worker).
    NodeJoin,
    /// One successful work-steal (per thief).
    Steal,
    /// One streaming probe epoch.
    Epoch,
    /// One serving-layer generation publish.
    Generation,
    /// One sliding-window eviction.
    Eviction,
}

impl Seam {
    /// Short lowercase label (used in panic messages).
    pub fn name(&self) -> &'static str {
        match self {
            Seam::Build => "build",
            Seam::Assignment => "assignment",
            Seam::Join => "join",
            Seam::AssignChunk => "assign-chunk",
            Seam::NodeJoin => "node-join",
            Seam::Steal => "steal",
            Seam::Epoch => "epoch",
            Seam::Generation => "generation",
            Seam::Eviction => "eviction",
        }
    }
}

/// What a fired trigger does.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Panic with `fault-injection: <detail>` on the thread that hit the seam.
    Panic(String),
    /// Sleep for the given duration (models a stalled worker / slow node).
    Delay(Duration),
}

#[derive(Debug)]
struct Trigger {
    seam: Seam,
    /// Restrict to one logical worker index, or fire on any worker.
    worker: Option<usize>,
    /// 1-based invocation count of the `(seam, worker)` pair to fire on.
    nth: u64,
    action: FaultAction,
    spent: bool,
}

/// A deterministic, seeded fault-injection plan.
///
/// Build one with [`FaultPlan::seeded`], arm triggers with
/// [`panic_on`](FaultPlan::panic_on) / [`delay_on`](FaultPlan::delay_on), and
/// pass it anywhere a `&dyn TraceSink` is accepted (e.g. `JoinQuery::trace`).
/// Each trigger fires exactly once; [`fired`](FaultPlan::fired) reports how
/// many have fired so far.
#[derive(Debug)]
pub struct FaultPlan {
    triggers: Mutex<Vec<Trigger>>,
    counts: Mutex<Vec<((Seam, usize), u64)>>,
    fired_count: AtomicU64,
    rng: Mutex<u64>,
}

impl FaultPlan {
    /// Creates an empty plan whose [`pick`](FaultPlan::pick) stream is
    /// determined by `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            triggers: Mutex::new(Vec::new()),
            counts: Mutex::new(Vec::new()),
            fired_count: AtomicU64::new(0),
            rng: Mutex::new(seed),
        }
    }

    /// Arms a panic on the `nth` (1-based) occurrence of `seam`, optionally
    /// restricted to one logical `worker` index.
    pub fn panic_on(
        self,
        seam: Seam,
        worker: Option<usize>,
        nth: u64,
        detail: impl Into<String>,
    ) -> Self {
        self.arm(Trigger {
            seam,
            worker,
            nth,
            action: FaultAction::Panic(detail.into()),
            spent: false,
        })
    }

    /// Arms a delay on the `nth` (1-based) occurrence of `seam`, optionally
    /// restricted to one logical `worker` index.
    pub fn delay_on(self, seam: Seam, worker: Option<usize>, nth: u64, delay: Duration) -> Self {
        self.arm(Trigger { seam, worker, nth, action: FaultAction::Delay(delay), spent: false })
    }

    fn arm(self, trigger: Trigger) -> Self {
        lock_recover(&self.triggers).push(trigger);
        self
    }

    /// Number of triggers that have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired_count.load(Ordering::SeqCst)
    }

    /// Deterministic pseudo-random value in `[0, bound)` from the plan's seed
    /// (SplitMix64). Lets a stress harness derive cancel points / trigger
    /// counts from the same seed that names the run.
    pub fn pick(&self, bound: u64) -> u64 {
        let mut state = lock_recover(&self.rng);
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if bound == 0 {
            0
        } else {
            z % bound
        }
    }

    /// Resets invocation counts and re-arms every trigger (the seed stream is
    /// *not* rewound), so one plan can drive repeated runs.
    pub fn rearm(&self) {
        lock_recover(&self.counts).clear();
        for t in lock_recover(&self.triggers).iter_mut() {
            t.spent = false;
        }
        self.fired_count.store(0, Ordering::SeqCst);
    }

    /// Counts the event against its `(seam, worker)` key and returns the
    /// action of a trigger that just became due, marking it spent.
    fn due_action(&self, seam: Seam, worker: usize) -> Option<FaultAction> {
        let count = {
            let mut counts = lock_recover(&self.counts);
            match counts.iter_mut().find(|(k, _)| *k == (seam, worker)) {
                Some((_, c)) => {
                    *c += 1;
                    *c
                }
                None => {
                    counts.push(((seam, worker), 1));
                    1
                }
            }
        };
        let mut triggers = lock_recover(&self.triggers);
        let t = triggers.iter_mut().find(|t| {
            !t.spent && t.seam == seam && t.nth == count && t.worker.map_or(true, |w| w == worker)
        })?;
        t.spent = true;
        self.fired_count.fetch_add(1, Ordering::SeqCst);
        Some(t.action.clone())
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A trigger panicking on purpose must not wedge the plan for the other
    // workers: recover the guard the way ExecTrace does.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl TraceSink for FaultPlan {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let (seam, worker) = match &event {
            TraceEvent::Phase { phase, .. } => (
                match phase {
                    crate::Phase::Build => Seam::Build,
                    crate::Phase::Assignment => Seam::Assignment,
                    crate::Phase::Join => Seam::Join,
                },
                0,
            ),
            TraceEvent::AssignChunk { worker, .. } => (Seam::AssignChunk, *worker),
            TraceEvent::NodeJoin { worker, .. } => (Seam::NodeJoin, *worker),
            TraceEvent::Steal { worker, .. } => (Seam::Steal, *worker),
            TraceEvent::Epoch { .. } => (Seam::Epoch, 0),
            TraceEvent::Generation { .. } => (Seam::Generation, 0),
            TraceEvent::Eviction { .. } => (Seam::Eviction, 0),
        };
        match self.due_action(seam, worker) {
            Some(FaultAction::Panic(detail)) => {
                panic!("fault-injection: {} (seam {}, worker {worker})", detail, seam.name());
            }
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn node_join(worker: usize) -> TraceEvent {
        TraceEvent::NodeJoin {
            node: 1,
            worker,
            a_count: 1,
            b_count: 1,
            strategy: "grid",
            candidates: 1,
            pairs: 0,
            start_us: 0,
            duration_us: 1,
        }
    }

    #[test]
    fn trigger_fires_on_exact_invocation_count() {
        let plan = FaultPlan::seeded(7).panic_on(Seam::NodeJoin, None, 3, "boom");
        plan.record(node_join(0));
        plan.record(node_join(0));
        assert_eq!(plan.fired(), 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.record(node_join(0));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with("fault-injection: boom"), "{msg}");
        assert_eq!(plan.fired(), 1);
        // Spent: the 3rd invocation of another stream doesn't re-fire.
        plan.record(node_join(0));
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn counts_are_per_seam_and_worker() {
        let plan = FaultPlan::seeded(7).panic_on(Seam::NodeJoin, Some(1), 2, "w1");
        // Worker 0 racks up invocations without tripping worker 1's trigger.
        plan.record(node_join(0));
        plan.record(node_join(0));
        plan.record(node_join(0));
        plan.record(node_join(1));
        assert_eq!(plan.fired(), 0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.record(node_join(1));
        }))
        .is_err());
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn phase_events_map_to_phase_seams() {
        let plan = FaultPlan::seeded(1).panic_on(Seam::Assignment, None, 1, "phase");
        plan.record(TraceEvent::Phase { phase: Phase::Build, start_us: 0, duration_us: 1 });
        assert_eq!(plan.fired(), 0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.record(TraceEvent::Phase {
                phase: Phase::Assignment,
                start_us: 0,
                duration_us: 1,
            });
        }))
        .is_err());
    }

    #[test]
    fn delay_fires_without_panicking() {
        let plan = FaultPlan::seeded(1).delay_on(Seam::Epoch, None, 1, Duration::from_millis(1));
        plan.record(TraceEvent::Epoch { epoch: 0, batch_size: 1, start_us: 0, duration_us: 1 });
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn rearm_resets_counts_and_triggers() {
        let plan = FaultPlan::seeded(1).panic_on(Seam::NodeJoin, None, 1, "again");
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.record(node_join(0));
        }))
        .is_err());
        assert_eq!(plan.fired(), 1);
        plan.rearm();
        assert_eq!(plan.fired(), 0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.record(node_join(0));
        }))
        .is_err());
    }

    #[test]
    fn pick_is_deterministic_per_seed() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let xs: Vec<u64> = (0..8).map(|_| a.pick(100)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.pick(100)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x < 100));
        assert_eq!(a.pick(0), 0, "zero bound is safe");
    }

    #[test]
    fn plan_survives_its_own_panic() {
        // The panic a trigger throws unwinds through `record` while no lock is
        // held, but even a poisoned lock must not wedge the plan.
        let plan = FaultPlan::seeded(1).panic_on(Seam::NodeJoin, None, 1, "p");
        let _ =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.record(node_join(0))));
        plan.record(node_join(0)); // still counts without panicking
        assert_eq!(plan.fired(), 1);
    }
}

//! Execution tracing: per-node/per-worker spans with a zero-cost off switch.
//!
//! The engines accept a `&dyn TraceSink` everywhere they do attributable work.
//! The default sink, [`NoTrace`], keeps every hook behind a single
//! `is_enabled()` check that returns a compile-time `false`, so instrumented
//! code paths cost nothing measurable when tracing is off — and, crucially,
//! produce **bit-identical pairs and counters** whether tracing is on or off.
//! The recording sink, [`ExecTrace`], appends [`TraceEvent`]s under a mutex
//! and can render them three ways:
//!
//! * [`ExecTrace::summary`] — log2-histogram skew aggregates ([`TraceSummary`])
//!   attached to a [`RunReport`](crate::RunReport),
//! * [`ExecTrace::to_chrome_json`] — Chrome `chrome://tracing` / Perfetto
//!   `trace_events` JSON,
//! * [`ExecTrace::text_profile`] — a compact human-readable profile.

use crate::{Histogram, Phase};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One traced occurrence. Spans carry `start_us`/`duration_us` microsecond
/// offsets relative to the trace origin; instants carry a single `at_us`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A whole engine phase (build / assignment / join) on the coordinator.
    Phase {
        /// Which phase ran.
        phase: Phase,
        /// Start offset from the trace origin, µs.
        start_us: u64,
        /// Span length, µs.
        duration_us: u64,
    },
    /// One assignment work chunk processed by a worker.
    AssignChunk {
        /// Chunk index in the probe batch.
        chunk: usize,
        /// Worker that processed the chunk.
        worker: usize,
        /// Probe objects in the chunk.
        objects: usize,
        /// Start offset from the trace origin, µs.
        start_us: u64,
        /// Span length, µs.
        duration_us: u64,
    },
    /// One per-node local join (Algorithm 4).
    NodeJoin {
        /// Tree node id.
        node: usize,
        /// Worker that joined the node (0 for sequential engines).
        worker: usize,
        /// Objects of the tree dataset stored at the node.
        a_count: usize,
        /// Probe objects assigned to the node.
        b_count: usize,
        /// Local strategy actually used: `"grid"`, `"plane-sweep"` or `"all-pairs"`.
        strategy: &'static str,
        /// Candidate object–object comparisons performed at the node.
        candidates: u64,
        /// Pairs emitted at the node (emit invocations; a sink hitting its
        /// limit mid-node still counts the final invocation).
        pairs: u64,
        /// Start offset from the trace origin, µs.
        start_us: u64,
        /// Span length, µs.
        duration_us: u64,
    },
    /// A successful work-steal in `touch-parallel`'s scheduler.
    Steal {
        /// The thief.
        worker: usize,
        /// The queue the task was taken from.
        victim: usize,
        /// Instant offset from the trace origin, µs.
        at_us: u64,
    },
    /// One streaming probe epoch (`push_batch`).
    Epoch {
        /// Zero-based epoch index within the trace.
        epoch: usize,
        /// Probe objects in the batch.
        batch_size: usize,
        /// Start offset from the trace origin, µs.
        start_us: u64,
        /// Span length, µs.
        duration_us: u64,
    },
    /// One serving-layer generation build (rebuild of the A-side tree folding
    /// the pending delta, ending at the atomic publish).
    Generation {
        /// Generation number published (monotonic per server).
        generation: u64,
        /// Live A-objects in the published generation.
        live: usize,
        /// Buffered mutations folded into this generation.
        delta: usize,
        /// Start offset from the trace origin, µs.
        start_us: u64,
        /// Span length, µs.
        duration_us: u64,
    },
    /// One sliding-window eviction: the oldest probe epoch leaves the window
    /// (its per-node assignments are retracted instead of a full `reset()`).
    Eviction {
        /// Zero-based index of the evicted epoch within the stream.
        epoch: usize,
        /// Probe objects retracted.
        objects: usize,
        /// Instant offset from the trace origin, µs.
        at_us: u64,
    },
}

/// Receiver for execution trace events.
///
/// Engines call [`is_enabled`](TraceSink::is_enabled) before assembling an
/// event, so a disabled sink costs one predictable branch per hook. The
/// contract every implementation must honour: **recording must not influence
/// the join** — pairs and counters are bit-identical with any sink.
pub trait TraceSink: Send + Sync {
    /// Whether events should be assembled and recorded at all.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Records one event. No-op unless the sink is enabled.
    fn record(&self, _event: TraceEvent) {}

    /// Microseconds since the trace origin (0 for a disabled sink, so
    /// disabled hooks never read the clock).
    fn now_us(&self) -> u64 {
        0
    }

    /// Aggregated skew summary of everything recorded so far (`None` for a
    /// disabled sink).
    fn summary(&self) -> Option<TraceSummary> {
        None
    }
}

/// The zero-cost disabled sink: every hook short-circuits on
/// `is_enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {}

/// A recording [`TraceSink`]: timestamps against a fixed origin and appends
/// events to a mutex-guarded buffer (one short lock per event; workers touch
/// it only when tracing is on).
#[derive(Debug)]
pub struct ExecTrace {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for ExecTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecTrace {
    /// Creates an empty trace whose origin is "now".
    pub fn new() -> Self {
        ExecTrace { origin: Instant::now(), events: Mutex::new(Vec::new()) }
    }

    /// Locks the event buffer, recovering from poisoning: a traced worker that
    /// panics mid-`record` poisons the mutex, but the buffer only ever holds
    /// complete `TraceEvent`s (each `push` is atomic with respect to the
    /// guard), so the data is still sound and the trace must stay usable.
    fn lock_events(&self) -> MutexGuard<'_, Vec<TraceEvent>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the recorded events, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock_events().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock_events().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded events and resets the origin, so one `ExecTrace`
    /// can be reused across runs without mixing their timelines.
    pub fn reset(&mut self) {
        self.origin = Instant::now();
        self.events.get_mut().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// Renders the trace in Chrome `trace_events` JSON (the format
    /// `chrome://tracing` and Perfetto load). Spans become `"X"` complete
    /// events with the worker id as `tid`; steals become `"i"` instant events.
    pub fn to_chrome_json(&self) -> String {
        let events = self.lock_events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match ev {
                TraceEvent::Phase { phase, start_us, duration_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":{}}}",
                        phase.name(),
                        start_us,
                        duration_us
                    );
                }
                TraceEvent::AssignChunk { chunk, worker, objects, start_us, duration_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"assign-chunk\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"chunk\":{},\"objects\":{}}}}}",
                        worker, start_us, duration_us, chunk, objects
                    );
                }
                TraceEvent::NodeJoin {
                    node,
                    worker,
                    a_count,
                    b_count,
                    strategy,
                    candidates,
                    pairs,
                    start_us,
                    duration_us,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"node-join\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"node\":{},\"a\":{},\"b\":{},\"strategy\":\"{}\",\"candidates\":{},\"pairs\":{}}}}}",
                        worker, start_us, duration_us, node, a_count, b_count, strategy, candidates, pairs
                    );
                }
                TraceEvent::Steal { worker, victim, at_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"victim\":{}}}}}",
                        worker, at_us, victim
                    );
                }
                TraceEvent::Epoch { epoch, batch_size, start_us, duration_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"epoch\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"epoch\":{},\"batch\":{}}}}}",
                        start_us, duration_us, epoch, batch_size
                    );
                }
                TraceEvent::Generation { generation, live, delta, start_us, duration_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"generation\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"generation\":{},\"live\":{},\"delta\":{}}}}}",
                        start_us, duration_us, generation, live, delta
                    );
                }
                TraceEvent::Eviction { epoch, objects, at_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"eviction\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":{},\"args\":{{\"epoch\":{},\"objects\":{}}}}}",
                        at_us, epoch, objects
                    );
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders a compact human-readable profile: phase times, skew
    /// percentiles and a per-worker utilization table.
    pub fn text_profile(&self) -> String {
        let s = self.summary_inner();
        let events = self.lock_events();
        let mut out = String::new();
        let _ = writeln!(out, "== execution trace profile ==");
        let _ = writeln!(
            out,
            "events: {} total, {} node joins, {} workers, {} epochs, {} steals",
            events.len(),
            s.node_time_us.count,
            s.workers.len(),
            s.epochs,
            s.steals
        );
        for ev in events.iter() {
            if let TraceEvent::Phase { phase, duration_us, .. } = ev {
                let _ = writeln!(out, "phase {:<12} {:>12} µs", phase.name(), duration_us);
            }
        }
        drop(events);
        for (label, h) in [
            ("node time (µs)", &s.node_time_us),
            ("candidates/node", &s.candidates),
            ("pairs/node", &s.pairs_per_node),
        ] {
            let _ = writeln!(
                out,
                "{:<16} p50={} p90={} p99={} max={} mean={:.1}",
                label,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max.min(h.percentile(1.0)),
                h.mean()
            );
        }
        let _ = writeln!(out, "{:>6} {:>8} {:>12} {:>7}", "worker", "nodes", "busy (µs)", "steals");
        for w in &s.workers {
            let _ =
                writeln!(out, "{:>6} {:>8} {:>12} {:>7}", w.worker, w.nodes, w.busy_us, w.steals);
        }
        out
    }

    fn summary_inner(&self) -> TraceSummary {
        let events = self.lock_events();
        let mut node_time_us = Histogram::new();
        let mut candidates = Histogram::new();
        let mut pairs_per_node = Histogram::new();
        let mut workers: BTreeMap<usize, WorkerStats> = BTreeMap::new();
        let mut epochs = 0usize;
        let mut steals = 0u64;
        let mut generations = 0usize;
        let mut evictions = 0u64;
        for ev in events.iter() {
            match ev {
                TraceEvent::NodeJoin { worker, candidates: c, pairs, duration_us, .. } => {
                    node_time_us.record(*duration_us);
                    candidates.record(*c);
                    pairs_per_node.record(*pairs);
                    let w = workers.entry(*worker).or_insert(WorkerStats {
                        worker: *worker,
                        nodes: 0,
                        busy_us: 0,
                        steals: 0,
                    });
                    w.nodes += 1;
                    w.busy_us += duration_us;
                }
                TraceEvent::AssignChunk { worker, duration_us, .. } => {
                    let w = workers.entry(*worker).or_insert(WorkerStats {
                        worker: *worker,
                        nodes: 0,
                        busy_us: 0,
                        steals: 0,
                    });
                    w.busy_us += duration_us;
                }
                TraceEvent::Steal { worker, .. } => {
                    steals += 1;
                    workers
                        .entry(*worker)
                        .or_insert(WorkerStats { worker: *worker, nodes: 0, busy_us: 0, steals: 0 })
                        .steals += 1;
                }
                TraceEvent::Epoch { .. } => epochs += 1,
                TraceEvent::Generation { .. } => generations += 1,
                TraceEvent::Eviction { .. } => evictions += 1,
                TraceEvent::Phase { .. } => {}
            }
        }
        TraceSummary {
            node_time_us,
            candidates,
            pairs_per_node,
            workers: workers.into_values().collect(),
            epochs,
            steals,
            generations,
            evictions,
        }
    }
}

impl TraceSink for ExecTrace {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        self.lock_events().push(event);
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn summary(&self) -> Option<TraceSummary> {
        Some(self.summary_inner())
    }
}

/// Per-worker utilization extracted from a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index (0 for sequential engines and the coordinator).
    pub worker: usize,
    /// Node joins this worker executed.
    pub nodes: u64,
    /// Microseconds spent in node joins and assignment chunks.
    pub busy_us: u64,
    /// Tasks this worker stole from other queues.
    pub steals: u64,
}

/// Aggregated skew summary of one traced run, attachable to a
/// [`RunReport`](crate::RunReport). Histograms merge exactly (see
/// [`Histogram::merge`]), so worker-sharded or epoch-split summaries can be
/// combined without drift.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Per-node local-join wall time, µs.
    pub node_time_us: Histogram,
    /// Per-node candidate comparisons.
    pub candidates: Histogram,
    /// Per-node emitted pairs.
    pub pairs_per_node: Histogram,
    /// Per-worker utilization, sorted by worker index.
    pub workers: Vec<WorkerStats>,
    /// Streaming epochs observed (0 for one-shot runs).
    pub epochs: usize,
    /// Total successful work-steals.
    pub steals: u64,
    /// Serving generations published (0 outside the serving layer).
    pub generations: usize,
    /// Sliding-window epochs evicted (0 outside windowed runs).
    pub evictions: u64,
}

impl TraceSummary {
    /// Hand-rolled JSON rendering (the vendored serde is a no-op stub), used
    /// by `RunReport::to_json` and the bench exporters.
    pub fn to_json(&self) -> String {
        fn hist_json(h: &Histogram) -> String {
            format!(
                "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                if h.count == 0 { 0 } else { h.max }
            )
        }
        let mut workers = String::from("[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            let _ = write!(
                workers,
                "{{\"worker\":{},\"nodes\":{},\"busy_us\":{},\"steals\":{}}}",
                w.worker, w.nodes, w.busy_us, w.steals
            );
        }
        workers.push(']');
        format!(
            "{{\"node_time_us\":{},\"candidates\":{},\"pairs_per_node\":{},\"workers\":{},\"epochs\":{},\"steals\":{},\"generations\":{},\"evictions\":{}}}",
            hist_json(&self.node_time_us),
            hist_json(&self.candidates),
            hist_json(&self.pairs_per_node),
            workers,
            self.epochs,
            self.steals,
            self.generations,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ExecTrace {
        let t = ExecTrace::new();
        t.record(TraceEvent::Phase { phase: Phase::Build, start_us: 0, duration_us: 100 });
        t.record(TraceEvent::AssignChunk {
            chunk: 0,
            worker: 1,
            objects: 64,
            start_us: 100,
            duration_us: 10,
        });
        t.record(TraceEvent::NodeJoin {
            node: 7,
            worker: 0,
            a_count: 12,
            b_count: 30,
            strategy: "grid",
            candidates: 90,
            pairs: 4,
            start_us: 120,
            duration_us: 50,
        });
        t.record(TraceEvent::NodeJoin {
            node: 9,
            worker: 1,
            a_count: 3,
            b_count: 5,
            strategy: "all-pairs",
            candidates: 15,
            pairs: 1,
            start_us: 130,
            duration_us: 8,
        });
        t.record(TraceEvent::Steal { worker: 1, victim: 0, at_us: 129 });
        t.record(TraceEvent::Epoch { epoch: 0, batch_size: 35, start_us: 100, duration_us: 90 });
        t.record(TraceEvent::Generation {
            generation: 2,
            live: 1000,
            delta: 64,
            start_us: 200,
            duration_us: 40,
        });
        t.record(TraceEvent::Eviction { epoch: 0, objects: 35, at_us: 250 });
        t
    }

    #[test]
    fn no_trace_is_disabled_and_summary_free() {
        let sink = NoTrace;
        assert!(!sink.is_enabled());
        assert_eq!(sink.now_us(), 0);
        assert!(sink.summary().is_none());
    }

    #[test]
    fn summary_aggregates_nodes_workers_steals_epochs() {
        let t = sample_trace();
        let s = TraceSink::summary(&t).unwrap();
        assert_eq!(s.node_time_us.count, 2);
        assert_eq!(s.candidates.sum, 105);
        assert_eq!(s.pairs_per_node.sum, 5);
        assert_eq!(s.epochs, 1);
        assert_eq!(s.steals, 1);
        assert_eq!(s.generations, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.workers.len(), 2);
        assert_eq!(s.workers[0].worker, 0);
        assert_eq!(s.workers[0].nodes, 1);
        assert_eq!(s.workers[0].busy_us, 50);
        assert_eq!(s.workers[1].busy_us, 18, "assign chunk counts as busy");
        assert_eq!(s.workers[1].steals, 1);
    }

    #[test]
    fn chrome_json_is_balanced_and_names_all_event_kinds() {
        let json = sample_trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        for needle in [
            "\"build\"",
            "\"assign-chunk\"",
            "\"node-join\"",
            "\"steal\"",
            "\"epoch\"",
            "\"generation\"",
            "\"eviction\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Crude structural check: braces and brackets balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_profile_mentions_percentiles_and_workers() {
        let profile = sample_trace().text_profile();
        assert!(profile.contains("node time (µs)"));
        assert!(profile.contains("p99="));
        assert!(profile.contains("worker"));
        assert!(profile.contains("phase build"));
    }

    #[test]
    fn reset_clears_events() {
        let mut t = sample_trace();
        assert!(!t.is_empty());
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn summary_json_is_object_shaped() {
        let s = TraceSink::summary(&sample_trace()).unwrap();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "node_time_us",
            "candidates",
            "pairs_per_node",
            "workers",
            "epochs",
            "steals",
            "generations",
            "evictions",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn trace_survives_a_poisoning_worker_panic() {
        let t = std::sync::Arc::new(sample_trace());
        let before = t.len();
        // A traced worker that panics while holding the event lock poisons the
        // mutex; the trace must keep recording and exporting afterwards.
        let t2 = std::sync::Arc::clone(&t);
        let joined = std::thread::spawn(move || {
            let _guard = t2.events.lock().unwrap();
            panic!("worker dies mid-record");
        })
        .join();
        assert!(joined.is_err(), "worker must have panicked");
        assert!(t.events.is_poisoned(), "panic under the lock poisons the mutex");

        t.record(TraceEvent::Steal { worker: 3, victim: 1, at_us: 999 });
        assert_eq!(t.len(), before + 1, "record still works after poisoning");
        assert!(t.to_chrome_json().contains("\"steal\""));
        assert!(TraceSink::summary(&*t).is_some());
        assert!(!t.text_profile().is_empty());
        let mut owned = std::sync::Arc::try_unwrap(t).expect("sole owner");
        owned.reset();
        assert!(owned.is_empty(), "reset recovers a poisoned buffer too");
    }
}

//! Cylinders — the exact geometry of the neuroscience *touch detection* use case.
//!
//! The paper's motivating application models neuron branches (axons and dendrites) as
//! chains of cylinders and places a synapse wherever an axon cylinder comes within a
//! distance ε of a dendrite cylinder. The join algorithms operate on the cylinders'
//! MBRs (filtering); the exact cylinder-to-cylinder distance below is what a
//! refinement phase would evaluate on the candidate pairs.

use crate::{Aabb, Point3};
use serde::{Deserialize, Serialize};

/// A capsule-shaped cylinder: the set of points within `radius` of the segment
/// `[p0, p1]`.
///
/// Modelling the cylinder as a capsule (with spherical caps) is the standard
/// simplification in the touch-detection pipeline; it makes the pairwise distance an
/// exact segment-to-segment distance minus the radii.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cylinder {
    /// First end point of the axis segment.
    pub p0: Point3,
    /// Second end point of the axis segment.
    pub p1: Point3,
    /// Radius around the axis segment.
    pub radius: f64,
}

impl Cylinder {
    /// Creates a cylinder from its axis end points and radius.
    ///
    /// # Panics
    /// In debug builds, panics if the radius is negative or a coordinate is not finite.
    #[inline]
    pub fn new(p0: Point3, p1: Point3, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative radius");
        debug_assert!(p0.is_finite() && p1.is_finite(), "non-finite cylinder end points");
        Cylinder { p0, p1, radius }
    }

    /// Length of the axis segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.p0.distance(self.p1)
    }

    /// The minimum bounding box of the cylinder (capsule).
    #[inline]
    pub fn mbr(&self) -> Aabb {
        let r = Point3::splat(self.radius);
        Aabb { min: self.p0.min(self.p1) - r, max: self.p0.max(self.p1) + r }
    }

    /// Exact minimum distance between the *surfaces* of two capsules
    /// (0 if they overlap).
    ///
    /// `distance_to(other) ≤ ε` is the refinement predicate of the touch-detection
    /// application.
    pub fn distance_to(&self, other: &Cylinder) -> f64 {
        let axis_dist = segment_segment_distance(self.p0, self.p1, other.p0, other.p1);
        (axis_dist - self.radius - other.radius).max(0.0)
    }

    /// `true` if the two capsules are within `eps` of each other (touching counts).
    #[inline]
    pub fn touches(&self, other: &Cylinder, eps: f64) -> bool {
        self.distance_to(other) <= eps
    }
}

/// Minimum distance between two 3-D line segments `[p1, q1]` and `[p2, q2]`.
///
/// Implementation of the classic closest-point-between-segments algorithm
/// (Ericson, *Real-Time Collision Detection*, §5.1.9), robust against degenerate
/// (zero-length) segments.
pub fn segment_segment_distance(p1: Point3, q1: Point3, p2: Point3, q2: Point3) -> f64 {
    let d1 = q1 - p1; // direction of segment 1
    let d2 = q2 - p2; // direction of segment 2
    let r = p1 - p2;
    let a = d1.norm_sq();
    let e = d2.norm_sq();
    let f = d2.dot(r);

    let (s, t);
    const EPS: f64 = 1e-12;

    if a <= EPS && e <= EPS {
        // Both segments degenerate to points.
        return p1.distance(p2);
    }
    if a <= EPS {
        // First segment degenerates to a point.
        s = 0.0;
        t = (f / e).clamp(0.0, 1.0);
    } else {
        let c = d1.dot(r);
        if e <= EPS {
            // Second segment degenerates to a point.
            t = 0.0;
            s = (-c / a).clamp(0.0, 1.0);
        } else {
            let b = d1.dot(d2);
            let denom = a * e - b * b;
            let mut s_tmp =
                if denom > EPS { ((b * f - c * e) / denom).clamp(0.0, 1.0) } else { 0.0 };
            let mut t_tmp = (b * s_tmp + f) / e;
            if t_tmp < 0.0 {
                t_tmp = 0.0;
                s_tmp = (-c / a).clamp(0.0, 1.0);
            } else if t_tmp > 1.0 {
                t_tmp = 1.0;
                s_tmp = ((b - c) / a).clamp(0.0, 1.0);
            }
            s = s_tmp;
            t = t_tmp;
        }
    }

    let c1 = p1 + d1 * s;
    let c2 = p2 + d2 * t;
    c1.distance(c2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_encloses_caps() {
        let c = Cylinder::new(Point3::new(1.0, 1.0, 1.0), Point3::new(4.0, 1.0, 1.0), 0.5);
        let mbr = c.mbr();
        assert_eq!(mbr.min, Point3::new(0.5, 0.5, 0.5));
        assert_eq!(mbr.max, Point3::new(4.5, 1.5, 1.5));
        assert!((c.length() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_segments_distance() {
        let d = segment_segment_distance(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(10.0, 0.0, 0.0),
            Point3::new(0.0, 3.0, 0.0),
            Point3::new(10.0, 3.0, 0.0),
        );
        assert!((d - 3.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_segments_distance_zero() {
        let d = segment_segment_distance(
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, -1.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        );
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn skew_segments_distance() {
        // Segments along x and y axes separated by 2 in z.
        let d = segment_segment_distance(
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, -1.0, 2.0),
            Point3::new(0.0, 1.0, 2.0),
        );
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn endpoint_to_endpoint_distance() {
        // Collinear, disjoint segments: closest points are the facing end points.
        let d = segment_segment_distance(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(3.0, 0.0, 0.0),
            Point3::new(5.0, 0.0, 0.0),
        );
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_segments() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let q = Point3::new(4.0, 6.0, 3.0);
        // Both degenerate.
        assert!((segment_segment_distance(p, p, q, q) - 5.0).abs() < 1e-9);
        // One degenerate: point vs segment.
        let d =
            segment_segment_distance(p, p, Point3::new(0.0, 0.0, 3.0), Point3::new(2.0, 0.0, 3.0));
        assert!((d - 2.0).abs() < 1e-9, "distance from (1,2) to x-axis segment is 2, got {d}");
    }

    #[test]
    fn capsule_distance_and_touch() {
        let a = Cylinder::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 0.0, 0.0), 1.0);
        let b = Cylinder::new(Point3::new(0.0, 5.0, 0.0), Point3::new(10.0, 5.0, 0.0), 1.0);
        assert!((a.distance_to(&b) - 3.0).abs() < 1e-9);
        assert!(a.touches(&b, 3.0));
        assert!(!a.touches(&b, 2.9));
        // Overlapping capsules have distance 0.
        let c = Cylinder::new(Point3::new(0.0, 1.5, 0.0), Point3::new(10.0, 1.5, 0.0), 1.0);
        assert_eq!(a.distance_to(&c), 0.0);
    }

    #[test]
    fn filtering_is_conservative_for_refinement() {
        // If the capsules touch within eps, their eps-extended MBRs must intersect.
        let a = Cylinder::new(Point3::new(0.0, 0.0, 0.0), Point3::new(4.0, 0.0, 0.0), 0.3);
        let b = Cylinder::new(Point3::new(1.0, 2.0, 1.0), Point3::new(5.0, 2.0, 1.0), 0.2);
        let eps = a.distance_to(&b) + 0.01;
        assert!(a.mbr().extended(eps).intersects(&b.mbr()));
    }
}

//! Axis-aligned bounding boxes (the paper's MBRs).

use crate::{Point3, DIMS};
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in 3-D space — the *minimum bounding rectangle* (MBR)
/// of the paper.
///
/// Every join algorithm in this workspace operates on `Aabb`s during the filtering
/// phase. Boxes are **closed**: two boxes that merely share a face, edge or corner are
/// considered intersecting (`intersects` returns `true`), which matches the paper's
/// inclusive distance predicate `distance(a, b) ≤ ε` after ε-extension.
///
/// The layout is `repr(C)` — `min` then `max`, six consecutive `f64`s in
/// total — and part of the public contract: the SIMD kernels read corners with
/// overlapping vector loads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Aabb {
    /// Lower corner (componentwise minimum).
    pub min: Point3,
    /// Upper corner (componentwise maximum).
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from its lower and upper corner.
    ///
    /// # Panics
    /// In debug builds, panics if `min` exceeds `max` on any axis or a coordinate is
    /// not finite. Use [`Aabb::from_corners`] for unordered input.
    #[inline]
    pub fn new(min: Point3, max: Point3) -> Self {
        debug_assert!(min.is_finite() && max.is_finite(), "non-finite AABB corners");
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "AABB min must not exceed max: {min:?} > {max:?}"
        );
        Aabb { min, max }
    }

    /// Creates a box from two arbitrary opposite corners (they need not be ordered).
    #[inline]
    pub fn from_corners(a: Point3, b: Point3) -> Self {
        Aabb { min: a.min(b), max: a.max(b) }
    }

    /// Creates a degenerate box containing a single point.
    #[inline]
    pub fn from_point(p: Point3) -> Self {
        Aabb { min: p, max: p }
    }

    /// Creates a box centred at `center` with the given full side length per axis.
    #[inline]
    pub fn from_center_extent(center: Point3, extent: Point3) -> Self {
        let half = extent * 0.5;
        Aabb { min: center - half, max: center + half }
    }

    /// The smallest box enclosing all points of an iterator, or `None` if it is empty.
    pub fn from_points<I: IntoIterator<Item = Point3>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut aabb = Aabb::from_point(first);
        for p in iter {
            aabb.expand_to_include_point(p);
        }
        Some(aabb)
    }

    /// The smallest box enclosing all boxes of an iterator, or `None` if it is empty.
    pub fn union_all<I: IntoIterator<Item = Aabb>>(boxes: I) -> Option<Self> {
        let mut iter = boxes.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, b| acc.union(&b)))
    }

    /// An "empty" box useful as the identity element for [`Aabb::union`]-style folds:
    /// `min = +∞`, `max = −∞`. It intersects nothing and unions to the other operand.
    #[inline]
    pub fn empty() -> Self {
        Aabb { min: Point3::splat(f64::INFINITY), max: Point3::splat(f64::NEG_INFINITY) }
    }

    /// `true` for boxes produced by [`Aabb::empty`] (or any box with inverted extent).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// `true` if the box has finite, properly ordered corners.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.min.is_finite() && self.max.is_finite() && !self.is_empty()
    }

    /// The centre point of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        Point3::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
            0.5 * (self.min.z + self.max.z),
        )
    }

    /// The side lengths of the box per axis.
    #[inline]
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Side length along `axis`.
    #[inline]
    pub fn side(&self, axis: usize) -> f64 {
        self.max.coord(axis) - self.min.coord(axis)
    }

    /// Volume of the box (product of the side lengths).
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Surface area of the box.
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.x * e.z)
    }

    /// Sum of the side lengths — the *margin*, used by some packing heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x + e.y + e.z
    }

    /// `true` if the two boxes overlap (closed-interval semantics on every axis).
    ///
    /// This is *the* comparison the paper counts: every algorithm routes its
    /// object–object tests through this predicate (via the metrics counters).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
            && self.min.z <= other.max.z
            && other.min.z <= self.max.z
    }

    /// `true` if `other` lies completely inside `self` (boundaries may coincide).
    #[inline]
    pub fn contains(&self, other: &Aabb) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.min.z <= other.min.z
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
            && self.max.z >= other.max.z
    }

    /// `true` if the point lies inside or on the boundary of the box.
    #[inline]
    pub fn contains_point(&self, p: &Point3) -> bool {
        self.min.x <= p.x
            && p.x <= self.max.x
            && self.min.y <= p.y
            && p.y <= self.max.y
            && self.min.z <= p.z
            && p.z <= self.max.z
    }

    /// The smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// The overlap region of the two boxes, or `None` if they do not intersect.
    #[inline]
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb { min: self.min.max(other.min), max: self.max.min(other.max) })
    }

    /// Grows the box in place so that it contains `p`.
    #[inline]
    pub fn expand_to_include_point(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the box in place so that it contains `other`.
    #[inline]
    pub fn expand_to_include(&mut self, other: &Aabb) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the box enlarged by `eps` on **every side** (Minkowski sum with a cube
    /// of half-extent `eps`).
    ///
    /// This is the ε-extension the paper uses to turn a distance join into an
    /// intersection join: `mbr_distance(a, b) ≤ ε  ⇔  a.extended(ε).intersects(b)`
    /// when the distance between MBRs is measured with the Chebyshev (L∞) metric, and
    /// a conservative superset under the Euclidean metric (exact pairs are confirmed
    /// during refinement).
    #[inline]
    pub fn extended(&self, eps: f64) -> Aabb {
        debug_assert!(eps >= 0.0, "epsilon must be non-negative");
        let d = Point3::splat(eps);
        Aabb { min: self.min - d, max: self.max + d }
    }

    /// Minimum distance between the two boxes under the Euclidean metric
    /// (0 if they intersect).
    #[inline]
    pub fn min_distance(&self, other: &Aabb) -> f64 {
        self.min_distance_sq(other).sqrt()
    }

    /// Squared minimum Euclidean distance between the two boxes (0 if they intersect).
    #[inline]
    pub fn min_distance_sq(&self, other: &Aabb) -> f64 {
        let mut sum = 0.0;
        for axis in 0..DIMS {
            let d = (other.min.coord(axis) - self.max.coord(axis))
                .max(self.min.coord(axis) - other.max.coord(axis))
                .max(0.0);
            sum += d * d;
        }
        sum
    }

    /// Minimum distance between the two boxes under the Chebyshev (L∞) metric
    /// (0 if they intersect). The ε-extension test is exact for this metric.
    #[inline]
    pub fn min_distance_linf(&self, other: &Aabb) -> f64 {
        let mut best = 0.0f64;
        for axis in 0..DIMS {
            let d = (other.min.coord(axis) - self.max.coord(axis))
                .max(self.min.coord(axis) - other.max.coord(axis))
                .max(0.0);
            best = best.max(d);
        }
        best
    }

    /// The lower corner of the intersection of two *intersecting* boxes.
    ///
    /// This is the *reference point* used by PBSM and the TOUCH local join to avoid
    /// duplicate results when objects are replicated across grid cells: a pair is
    /// reported only from the cell that contains this corner.
    #[inline]
    pub fn intersection_reference_point(&self, other: &Aabb) -> Point3 {
        debug_assert!(self.intersects(other));
        self.min.max(other.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box_at(x: f64, y: f64, z: f64) -> Aabb {
        Aabb::new(Point3::new(x, y, z), Point3::new(x + 1.0, y + 1.0, z + 1.0))
    }

    #[test]
    fn corners_are_normalised() {
        let b = Aabb::from_corners(Point3::new(3.0, 1.0, 2.0), Point3::new(0.0, 4.0, -1.0));
        assert_eq!(b.min, Point3::new(0.0, 1.0, -1.0));
        assert_eq!(b.max, Point3::new(3.0, 4.0, 2.0));
        assert!(b.is_valid());
    }

    #[test]
    fn center_extent_volume() {
        let b = Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b.volume(), 48.0);
        assert_eq!(b.surface_area(), 2.0 * (8.0 + 24.0 + 12.0));
        assert_eq!(b.margin(), 12.0);
        assert_eq!(b.side(1), 4.0);
    }

    #[test]
    fn from_center_extent_roundtrip() {
        let b = Aabb::from_center_extent(Point3::new(5.0, 5.0, 5.0), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Point3::new(5.0, 5.0, 5.0));
        assert_eq!(b.extent(), Point3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn intersection_is_symmetric_and_touching_counts() {
        let a = unit_box_at(0.0, 0.0, 0.0);
        let b = unit_box_at(0.5, 0.5, 0.5);
        let c = unit_box_at(1.0, 0.0, 0.0); // shares the x=1 face with a
        let d = unit_box_at(2.5, 0.0, 0.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(a.intersects(&c), "face-touching boxes intersect (closed boxes)");
        assert!(!a.intersects(&d));
        assert!(!d.intersects(&a));
    }

    #[test]
    fn containment() {
        let outer = Aabb::new(Point3::ORIGIN, Point3::splat(10.0));
        let inner = Aabb::new(Point3::splat(2.0), Point3::splat(3.0));
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer), "a box contains itself");
        assert!(outer.contains_point(&Point3::splat(10.0)), "boundary point is contained");
        assert!(!outer.contains_point(&Point3::new(10.1, 0.0, 0.0)));
    }

    #[test]
    fn union_and_intersection() {
        let a = unit_box_at(0.0, 0.0, 0.0);
        let b = unit_box_at(0.5, 0.5, 0.5);
        let u = a.union(&b);
        assert_eq!(u, Aabb::new(Point3::ORIGIN, Point3::splat(1.5)));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Point3::splat(0.5), Point3::splat(1.0)));
        let far = unit_box_at(5.0, 5.0, 5.0);
        assert!(a.intersection(&far).is_none());
        assert!(u.contains(&a) && u.contains(&b));
    }

    #[test]
    fn union_all_and_from_points() {
        let boxes = [unit_box_at(0.0, 0.0, 0.0), unit_box_at(3.0, 3.0, 3.0)];
        let u = Aabb::union_all(boxes).unwrap();
        assert_eq!(u, Aabb::new(Point3::ORIGIN, Point3::splat(4.0)));
        assert!(Aabb::union_all(std::iter::empty()).is_none());

        let pts = [Point3::new(1.0, -1.0, 0.0), Point3::new(-2.0, 3.0, 5.0)];
        let bb = Aabb::from_points(pts).unwrap();
        assert_eq!(bb.min, Point3::new(-2.0, -1.0, 0.0));
        assert_eq!(bb.max, Point3::new(1.0, 3.0, 5.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert!(!e.is_valid());
        assert_eq!(e.volume(), 0.0);
        let a = unit_box_at(0.0, 0.0, 0.0);
        assert_eq!(e.union(&a), a, "empty is the identity of union");
        assert!(!e.intersects(&a));
    }

    #[test]
    fn epsilon_extension_matches_distance() {
        let a = unit_box_at(0.0, 0.0, 0.0);
        let b = unit_box_at(3.0, 0.0, 0.0); // gap of 2 along x
        assert!(!a.intersects(&b));
        assert!(!a.extended(1.9).intersects(&b));
        assert!(a.extended(2.0).intersects(&b), "extension by the exact gap touches");
        assert!(a.extended(2.1).intersects(&b));
        assert_eq!(a.min_distance(&b), 2.0);
        assert_eq!(a.min_distance_linf(&b), 2.0);
    }

    #[test]
    fn euclidean_vs_chebyshev_distance() {
        let a = unit_box_at(0.0, 0.0, 0.0);
        let b = unit_box_at(2.0, 2.0, 0.0); // diagonal gap of (1,1,0)
        assert!((a.min_distance(&b) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.min_distance_linf(&b), 1.0);
        // extension test uses L∞ semantics
        assert!(a.extended(1.0).intersects(&b));
    }

    #[test]
    fn distance_zero_when_intersecting() {
        let a = unit_box_at(0.0, 0.0, 0.0);
        let b = unit_box_at(0.5, 0.5, 0.5);
        assert_eq!(a.min_distance(&b), 0.0);
        assert_eq!(a.min_distance_linf(&b), 0.0);
    }

    #[test]
    fn reference_point_is_in_intersection() {
        let a = unit_box_at(0.0, 0.0, 0.0);
        let b = unit_box_at(0.5, 0.25, 0.75);
        let rp = a.intersection_reference_point(&b);
        let inter = a.intersection(&b).unwrap();
        assert!(inter.contains_point(&rp));
        assert_eq!(rp, inter.min);
        // symmetric
        assert_eq!(b.intersection_reference_point(&a), rp);
    }

    #[test]
    fn expand_in_place() {
        let mut b = Aabb::from_point(Point3::ORIGIN);
        b.expand_to_include_point(Point3::new(1.0, -2.0, 3.0));
        assert_eq!(b.min, Point3::new(0.0, -2.0, 0.0));
        assert_eq!(b.max, Point3::new(1.0, 0.0, 3.0));
        b.expand_to_include(&unit_box_at(5.0, 5.0, 5.0));
        assert_eq!(b.max, Point3::splat(6.0));
    }
}

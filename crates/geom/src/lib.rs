//! # touch-geom — 3-D geometry kernel for the TOUCH spatial join
//!
//! This crate provides the geometric primitives every other crate of the TOUCH
//! reproduction builds on:
//!
//! * [`Point3`] — a point in 3-D space,
//! * [`Aabb`] — an axis-aligned bounding box (the paper's *MBR*, minimum bounding
//!   rectangle), with intersection, containment, union, ε-extension and distance
//!   predicates,
//! * [`SpatialObject`] — an identified MBR, the unit both join inputs are made of,
//! * [`Dataset`] — an owned collection of spatial objects with cached extent,
//! * [`Cylinder`] — the exact geometry used by the neuroscience *touch detection*
//!   use case (axon/dendrite segments); used by the refinement phase and by the
//!   synthetic morphology generator.
//!
//! The paper performs the join in two phases, *filtering* on MBRs followed by
//! *refinement* on exact geometry. All join algorithms in this workspace operate on
//! [`Aabb`]s (filtering); [`Cylinder::distance_to`] is provided so applications can
//! implement refinement on the candidate pairs.
//!
//! ## Conventions
//!
//! * Geometry is fixed to three dimensions ([`DIMS`]), matching the paper's datasets.
//!   Two-dimensional workloads are expressed with a degenerate (zero-extent) third
//!   dimension.
//! * Coordinates are `f64`. Boxes are closed: boxes that merely touch on a face,
//!   edge or corner *do* intersect, which mirrors the ≤ in the paper's distance
//!   predicate `distance(a, b) ≤ ε`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod aabb;
mod cylinder;
mod dataset;
mod object;
mod point;

pub use aabb::Aabb;
pub use cylinder::Cylinder;
pub use dataset::{Dataset, InvalidGeometry, ValidationPolicy};
pub use object::{ObjectId, SpatialObject};
pub use point::Point3;

/// Number of spatial dimensions used throughout the workspace.
pub const DIMS: usize = 3;

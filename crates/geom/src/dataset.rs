//! Owned collections of spatial objects.

use crate::{Aabb, ObjectId, SpatialObject};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What ingestion does with objects whose MBR fails [`Aabb::is_valid`]
/// (non-finite coordinates or inverted extent).
///
/// Invalid boxes don't merely produce wrong pairs — they corrupt STR sort
/// order (NaN is unordered) and grid binning, so in release builds they must
/// be caught at the boundary rather than deep in a join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ValidationPolicy {
    /// Fail the operation with the first offending object (the default).
    #[default]
    Reject,
    /// Drop invalid objects and count them; the join runs over the valid
    /// remainder (ids re-assigned densely, like [`Dataset::take_prefix`]).
    SkipInvalid,
}

/// The first invalid object [`Dataset::validate`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidGeometry {
    /// Id of the offending object.
    pub id: ObjectId,
    /// Its (invalid) MBR.
    pub mbr: Aabb,
}

impl InvalidGeometry {
    /// Short classification: `"non-finite coordinate"` or `"inverted extent"`.
    pub fn reason(&self) -> &'static str {
        if !self.mbr.min.is_finite() || !self.mbr.max.is_finite() {
            "non-finite coordinate"
        } else {
            "inverted extent (min > max)"
        }
    }
}

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object {}: {} ({:?}..{:?})", self.id, self.reason(), self.mbr.min, self.mbr.max)
    }
}

impl std::error::Error for InvalidGeometry {}

/// An owned, in-memory collection of spatial objects — one side of a join.
///
/// A `Dataset` is little more than a `Vec<SpatialObject>` plus a cached joint extent,
/// but it is the vocabulary type passed between the generators, the indexes and the
/// join algorithms. Object ids are expected (and, when built through [`Dataset::from_mbrs`]
/// or [`Dataset::push_mbr`], guaranteed) to equal the object's position in the vector.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    objects: Vec<SpatialObject>,
    extent: Option<Aabb>,
}

impl Dataset {
    /// Creates an empty dataset.
    #[inline]
    pub fn new() -> Self {
        Dataset { objects: Vec::new(), extent: None }
    }

    /// Creates an empty dataset with pre-allocated capacity.
    #[inline]
    pub fn with_capacity(capacity: usize) -> Self {
        Dataset { objects: Vec::with_capacity(capacity), extent: None }
    }

    /// Builds a dataset from MBRs, assigning ids `0..n` in iteration order.
    pub fn from_mbrs<I: IntoIterator<Item = Aabb>>(mbrs: I) -> Self {
        let mut ds = Dataset::new();
        for mbr in mbrs {
            ds.push_mbr(mbr);
        }
        ds
    }

    /// Builds a dataset from already-identified objects.
    ///
    /// # Panics
    /// In debug builds, panics if ids are not the dense sequence `0..n`.
    pub fn from_objects(objects: Vec<SpatialObject>) -> Self {
        debug_assert!(
            objects.iter().enumerate().all(|(i, o)| o.id as usize == i),
            "object ids must be dense and in order"
        );
        let extent = Aabb::union_all(objects.iter().map(|o| o.mbr));
        Dataset { objects, extent }
    }

    /// Appends an object with the next dense id and returns that id.
    #[inline]
    pub fn push_mbr(&mut self, mbr: Aabb) -> ObjectId {
        let id = self.objects.len() as ObjectId;
        self.objects.push(SpatialObject::new(id, mbr));
        match &mut self.extent {
            Some(e) => e.expand_to_include(&mbr),
            None => self.extent = Some(mbr),
        }
        id
    }

    /// Number of objects in the dataset.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the dataset holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The objects as a slice.
    #[inline]
    pub fn objects(&self) -> &[SpatialObject] {
        &self.objects
    }

    /// The object with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatialObject {
        &self.objects[id as usize]
    }

    /// Iterator over the objects.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, SpatialObject> {
        self.objects.iter()
    }

    /// The joint extent (union of all MBRs), or `None` for an empty dataset.
    #[inline]
    pub fn extent(&self) -> Option<Aabb> {
        self.extent
    }

    /// Average volume of the object MBRs (0 for an empty dataset).
    pub fn average_volume(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(|o| o.mbr.volume()).sum::<f64>() / self.objects.len() as f64
    }

    /// Average side length of the object MBRs per axis (0 for an empty dataset).
    pub fn average_side(&self, axis: usize) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(|o| o.mbr.side(axis)).sum::<f64>() / self.objects.len() as f64
    }

    /// Returns a new dataset whose MBRs are all enlarged by `eps` on every side,
    /// with ids preserved.
    ///
    /// This is the ε-extension step that turns a distance join into an intersection
    /// join (Section 4 of the paper).
    pub fn extended(&self, eps: f64) -> Dataset {
        let objects =
            self.objects.iter().map(|o| SpatialObject::new(o.id, o.mbr.extended(eps))).collect();
        Dataset::from_objects(objects)
    }

    /// Writes the ε-extension of this dataset into `out`, reusing `out`'s
    /// allocation instead of creating a fresh dataset.
    ///
    /// This is the allocation-free form of [`Dataset::extended`] used by the query
    /// layer's distance-join translation: a long-lived query extends A into the
    /// same scratch buffer on every run, so the extension stops allocating once
    /// the buffer has grown to `self.len()` objects.
    pub fn extend_into(&self, eps: f64, out: &mut Dataset) {
        out.objects.clear();
        out.objects
            .extend(self.objects.iter().map(|o| SpatialObject::new(o.id, o.mbr.extended(eps))));
        out.extent = self.extent.map(|e| e.extended(eps));
    }

    /// Removes every object while keeping the allocation, ready to be refilled
    /// with [`Dataset::push_mbr`].
    ///
    /// This is the tick-loop refill primitive: a simulation that rebuilds its
    /// dataset from fresh positions every tick clears and re-pushes into the
    /// same buffer, so the per-tick steady state allocates nothing.
    #[inline]
    pub fn clear(&mut self) {
        self.objects.clear();
        self.extent = None;
    }

    /// Returns a dataset containing the first `n` objects (ids re-assigned densely).
    ///
    /// Used by the density-scaling experiment (Figure 15), which joins increasing
    /// subsets of the neuroscience datasets.
    pub fn take_prefix(&self, n: usize) -> Dataset {
        Dataset::from_mbrs(self.objects.iter().take(n).map(|o| o.mbr))
    }

    /// Approximate heap footprint of the dataset in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.objects.capacity() * std::mem::size_of::<SpatialObject>()
    }

    /// Checks every MBR with [`Aabb::is_valid`], returning the first offender.
    ///
    /// This is the release-mode counterpart of the `debug_assert!`s in
    /// [`Aabb::new`]: generators assert eagerly in debug builds, but data
    /// arriving from outside (files, wire, FFI) must be validated at ingestion
    /// — a NaN coordinate silently corrupts STR sort order otherwise.
    pub fn validate(&self) -> Result<(), InvalidGeometry> {
        match self.objects.iter().find(|o| !o.mbr.is_valid()) {
            None => Ok(()),
            Some(o) => Err(InvalidGeometry { id: o.id, mbr: o.mbr }),
        }
    }

    /// Writes the valid subset of this dataset into `out` (ids re-assigned
    /// densely, like [`Dataset::take_prefix`]) and returns how many invalid
    /// objects were dropped. Reuses `out`'s allocation; `out` is clobbered.
    ///
    /// This is the [`ValidationPolicy::SkipInvalid`] ingestion primitive.
    pub fn retain_valid_into(&self, out: &mut Dataset) -> u64 {
        out.clear();
        let mut skipped = 0u64;
        for o in &self.objects {
            if o.mbr.is_valid() {
                out.push_mbr(o.mbr);
            } else {
                skipped += 1;
            }
        }
        skipped
    }
}

impl FromIterator<Aabb> for Dataset {
    fn from_iter<I: IntoIterator<Item = Aabb>>(iter: I) -> Self {
        Dataset::from_mbrs(iter)
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a SpatialObject;
    type IntoIter = std::slice::Iter<'a, SpatialObject>;
    fn into_iter(self) -> Self::IntoIter {
        self.objects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point3;

    fn unit_box_at(x: f64) -> Aabb {
        Aabb::new(Point3::new(x, 0.0, 0.0), Point3::new(x + 1.0, 1.0, 1.0))
    }

    #[test]
    fn push_assigns_dense_ids_and_tracks_extent() {
        let mut ds = Dataset::new();
        assert!(ds.is_empty());
        assert!(ds.extent().is_none());
        let id0 = ds.push_mbr(unit_box_at(0.0));
        let id1 = ds.push_mbr(unit_box_at(5.0));
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(ds.len(), 2);
        let extent = ds.extent().unwrap();
        assert_eq!(extent.min, Point3::ORIGIN);
        assert_eq!(extent.max, Point3::new(6.0, 1.0, 1.0));
        assert_eq!(ds.get(1).mbr, unit_box_at(5.0));
    }

    #[test]
    fn from_mbrs_matches_push() {
        let ds = Dataset::from_mbrs([unit_box_at(0.0), unit_box_at(2.0)]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(0).id, 0);
        assert_eq!(ds.get(1).id, 1);
    }

    #[test]
    fn extend_into_matches_extended_and_reuses_the_buffer() {
        let ds = Dataset::from_mbrs([unit_box_at(0.0), unit_box_at(3.0)]);
        let mut scratch = Dataset::new();
        ds.extend_into(0.5, &mut scratch);
        let fresh = ds.extended(0.5);
        assert_eq!(scratch.len(), fresh.len());
        for (s, f) in scratch.iter().zip(fresh.iter()) {
            assert_eq!(s.id, f.id);
            assert_eq!(s.mbr, f.mbr);
        }
        assert_eq!(scratch.extent(), fresh.extent());
        // A second extension reuses the buffer (no reallocation needed) and
        // replaces the previous contents.
        let cap_before = scratch.objects.capacity();
        ds.extend_into(1.0, &mut scratch);
        assert_eq!(scratch.objects.capacity(), cap_before);
        assert_eq!(scratch.get(0).mbr.min, Point3::splat(-1.0));
        // Extending an empty dataset clears the scratch.
        Dataset::new().extend_into(1.0, &mut scratch);
        assert!(scratch.is_empty());
        assert!(scratch.extent().is_none());
    }

    #[test]
    fn extended_preserves_ids_and_grows_boxes() {
        let ds = Dataset::from_mbrs([unit_box_at(0.0), unit_box_at(3.0)]);
        let ext = ds.extended(0.5);
        assert_eq!(ext.len(), 2);
        assert_eq!(ext.get(1).id, 1);
        assert_eq!(ext.get(0).mbr.min, Point3::new(-0.5, -0.5, -0.5));
        assert_eq!(ext.get(0).mbr.max, Point3::new(1.5, 1.5, 1.5));
        // original untouched
        assert_eq!(ds.get(0).mbr, unit_box_at(0.0));
    }

    #[test]
    fn averages() {
        let ds = Dataset::from_mbrs([unit_box_at(0.0), unit_box_at(2.0)]);
        assert!((ds.average_volume() - 1.0).abs() < 1e-12);
        assert!((ds.average_side(0) - 1.0).abs() < 1e-12);
        assert_eq!(Dataset::new().average_volume(), 0.0);
    }

    #[test]
    fn clear_keeps_the_allocation() {
        let mut ds = Dataset::from_mbrs([unit_box_at(0.0), unit_box_at(1.0)]);
        let cap = ds.objects.capacity();
        ds.clear();
        assert!(ds.is_empty());
        assert!(ds.extent().is_none());
        assert_eq!(ds.objects.capacity(), cap);
        assert_eq!(ds.push_mbr(unit_box_at(4.0)), 0, "ids restart from zero");
        assert_eq!(ds.extent().unwrap(), unit_box_at(4.0));
    }

    #[test]
    fn take_prefix_reassigns_ids() {
        let ds = Dataset::from_mbrs([unit_box_at(0.0), unit_box_at(1.0), unit_box_at(2.0)]);
        let p = ds.take_prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(1).mbr, unit_box_at(1.0));
        let all = ds.take_prefix(100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn validate_accepts_clean_and_degenerate_boxes() {
        let ds = Dataset::from_mbrs([unit_box_at(0.0), Aabb::from_point(Point3::splat(2.0))]);
        assert!(ds.validate().is_ok(), "point boxes are valid");
        assert!(Dataset::new().validate().is_ok());
    }

    #[test]
    fn validate_reports_the_first_offender_with_its_reason() {
        // Construct invalid boxes directly — Aabb::new would debug_assert.
        let nan = Aabb { min: Point3::new(f64::NAN, 0.0, 0.0), max: Point3::splat(1.0) };
        let inverted = Aabb { min: Point3::splat(1.0), max: Point3::splat(0.0) };
        let ds = Dataset::from_objects(vec![
            SpatialObject::new(0, unit_box_at(0.0)),
            SpatialObject::new(1, nan),
            SpatialObject::new(2, inverted),
        ]);
        let err = ds.validate().expect_err("NaN must be rejected");
        assert_eq!(err.id, 1);
        assert_eq!(err.reason(), "non-finite coordinate");
        assert!(err.to_string().contains("object 1"));

        let inv_only = Dataset::from_objects(vec![SpatialObject::new(0, inverted)]);
        let err = inv_only.validate().expect_err("inverted must be rejected");
        assert_eq!(err.reason(), "inverted extent (min > max)");
    }

    #[test]
    fn retain_valid_into_drops_and_counts_invalid_objects() {
        let nan = Aabb { min: Point3::new(f64::NAN, 0.0, 0.0), max: Point3::splat(1.0) };
        let ds = Dataset::from_objects(vec![
            SpatialObject::new(0, unit_box_at(0.0)),
            SpatialObject::new(1, nan),
            SpatialObject::new(2, unit_box_at(5.0)),
        ]);
        let mut out = Dataset::new();
        assert_eq!(ds.retain_valid_into(&mut out), 1);
        assert_eq!(out.len(), 2);
        assert!(out.validate().is_ok());
        assert_eq!((out.get(0).id, out.get(1).id), (0, 1), "ids re-assigned densely");
        assert_eq!(out.get(1).mbr, unit_box_at(5.0));
        assert!(out.extent().unwrap().is_valid(), "extent recomputed from the valid subset");

        // A clean dataset copies through with nothing skipped.
        let clean = Dataset::from_mbrs([unit_box_at(0.0)]);
        assert_eq!(clean.retain_valid_into(&mut out), 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn validation_policy_defaults_to_reject() {
        assert_eq!(ValidationPolicy::default(), ValidationPolicy::Reject);
    }

    #[test]
    fn iteration_and_collect() {
        let ds: Dataset = [unit_box_at(0.0), unit_box_at(1.0)].into_iter().collect();
        assert_eq!(ds.iter().count(), 2);
        assert_eq!((&ds).into_iter().map(|o| o.id).collect::<Vec<_>>(), vec![0, 1]);
        assert!(ds.memory_bytes() >= 2 * std::mem::size_of::<SpatialObject>());
    }
}

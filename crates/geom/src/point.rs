//! Points in 3-D space.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Index, Mul, Sub};

/// A point (or vector) in 3-D space.
///
/// `Point3` is a plain-old-data type: 24 bytes, `Copy`, no heap allocation. It is used
/// for box corners, cylinder end points and cluster centres.
///
/// The layout is `repr(C)` — three consecutive `f64`s, `x` first — and part of
/// the public contract: the SIMD kernels load coordinates straight out of
/// [`Aabb`](crate::Aabb)s with vector loads.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Point3 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate.
    pub z: f64,
}

impl Point3 {
    /// The origin `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point with all coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Point3 { x: v, y: v, z: v }
    }

    /// Creates a point from a coordinate array `[x, y, z]`.
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Self {
        Point3 { x: a[0], y: a[1], z: a[2] }
    }

    /// Returns the coordinates as an array `[x, y, z]`.
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Returns the coordinate along `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `axis >= 3`.
    #[inline]
    pub fn coord(&self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis out of range: {axis}"),
        }
    }

    /// Sets the coordinate along `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `axis >= 3`.
    #[inline]
    pub fn set_coord(&mut self, axis: usize, value: f64) {
        match axis {
            0 => self.x = value,
            1 => self.y = value,
            2 => self.z = value,
            _ => panic!("axis out of range: {axis}"),
        }
    }

    /// Component-wise minimum of `self` and `other`.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum of `self` and `other`.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Dot product of two vectors.
    #[inline]
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Squared Euclidean length of the vector.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean length of the vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance between two points.
    #[inline]
    pub fn distance_sq(self, other: Point3) -> f64 {
        (self - other).norm_sq()
    }

    /// Euclidean distance between two points.
    #[inline]
    pub fn distance(self, other: Point3) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Point3, t: f64) -> Point3 {
        self + (other - self) * t
    }

    /// `true` if every coordinate is finite (neither NaN nor ±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f64) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Index<usize> for Point3 {
    type Output = f64;
    #[inline]
    fn index(&self, axis: usize) -> &f64 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis out of range: {axis}"),
        }
    }
}

impl From<[f64; 3]> for Point3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Point3::from_array(a)
    }
}

impl From<Point3> for [f64; 3] {
    #[inline]
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(1), 2.0);
        assert_eq!(p.coord(2), 3.0);
        assert_eq!(p[0], 1.0);
        assert_eq!(p.to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Point3::from_array([1.0, 2.0, 3.0]), p);
        assert_eq!(Point3::splat(4.0), Point3::new(4.0, 4.0, 4.0));
    }

    #[test]
    fn set_coord_updates_single_axis() {
        let mut p = Point3::ORIGIN;
        p.set_coord(1, 5.0);
        assert_eq!(p, Point3::new(0.0, 5.0, 0.0));
        p.set_coord(2, -1.0);
        assert_eq!(p, Point3::new(0.0, 5.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn coord_out_of_range_panics() {
        let p = Point3::ORIGIN;
        let _ = p.coord(3);
    }

    #[test]
    fn arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Point3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 4.0 + 10.0 + 18.0);
    }

    #[test]
    fn distances() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn min_max_lerp() {
        let a = Point3::new(0.0, 5.0, -2.0);
        let b = Point3::new(3.0, 1.0, 4.0);
        assert_eq!(a.min(b), Point3::new(0.0, 1.0, -2.0));
        assert_eq!(a.max(b), Point3::new(3.0, 5.0, 4.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Point3::new(1.5, 3.0, 1.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}

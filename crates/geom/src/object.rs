//! Spatial objects: an identifier plus an MBR.

use crate::Aabb;
use serde::{Deserialize, Serialize};

/// Identifier of a spatial object within its dataset.
///
/// Identifiers are dense indices assigned by the generators / loaders; result pairs are
/// reported as `(ObjectId, ObjectId)` where the first component refers to dataset A and
/// the second to dataset B.
pub type ObjectId = u32;

/// A spatial object as seen by the filtering phase: an identifier and its MBR.
///
/// The exact geometry (cylinder, polygon, …) lives with the application; the join only
/// needs the bounding box. 28 bytes + padding, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialObject {
    /// Identifier of the object, unique within its dataset.
    pub id: ObjectId,
    /// Minimum bounding rectangle of the object.
    pub mbr: Aabb,
}

impl SpatialObject {
    /// Creates a spatial object from an identifier and its MBR.
    #[inline]
    pub const fn new(id: ObjectId, mbr: Aabb) -> Self {
        SpatialObject { id, mbr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point3;

    #[test]
    fn construction() {
        let mbr = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let o = SpatialObject::new(7, mbr);
        assert_eq!(o.id, 7);
        assert_eq!(o.mbr, mbr);
    }

    #[test]
    fn object_is_small() {
        // Keep the hot type small: one id + 6 f64 coordinates.
        assert!(std::mem::size_of::<SpatialObject>() <= 64);
    }
}

//! Property-based tests for the geometry kernel.
//!
//! These properties are the foundation the join algorithms' correctness rests on:
//! symmetry and reflexivity of intersection, consistency between union/containment,
//! the equivalence between ε-extension and L∞ distance, and conservativeness of the
//! MBR filter with respect to exact cylinder distances.

use proptest::prelude::*;
use touch_geom::{Aabb, Cylinder, Point3};

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

fn point() -> impl Strategy<Value = Point3> {
    (coord(), coord(), coord()).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (point(), point()).prop_map(|(a, b)| Aabb::from_corners(a, b))
}

fn small_eps() -> impl Strategy<Value = f64> {
    0.0..50.0f64
}

proptest! {
    #[test]
    fn intersection_is_symmetric(a in aabb(), b in aabb()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersection_is_reflexive(a in aabb()) {
        prop_assert!(a.intersects(&a));
        prop_assert!(a.contains(&a));
    }

    #[test]
    fn union_contains_both(a in aabb(), b in aabb()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        prop_assert!(u.volume() + 1e-9 >= a.volume().max(b.volume()));
    }

    #[test]
    fn containment_implies_intersection(a in aabb(), b in aabb()) {
        let u = a.union(&b);
        // u contains a, therefore u intersects a
        prop_assert!(u.intersects(&a));
        if a.contains(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn intersection_region_is_contained_in_both(a in aabb(), b in aabb()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn reference_point_lies_in_both_boxes(a in aabb(), b in aabb()) {
        if a.intersects(&b) {
            let rp = a.intersection_reference_point(&b);
            prop_assert!(a.contains_point(&rp));
            prop_assert!(b.contains_point(&rp));
            prop_assert_eq!(rp, b.intersection_reference_point(&a));
        }
    }

    #[test]
    fn extension_matches_linf_distance(a in aabb(), b in aabb(), eps in small_eps()) {
        // distance join translation (Section 4 of the paper):
        //   L∞-distance(a, b) <= eps  <=>  a.extended(eps) intersects b
        let extended_hit = a.extended(eps).intersects(&b);
        let within = a.min_distance_linf(&b) <= eps + 1e-9;
        prop_assert_eq!(extended_hit, within,
            "extended-intersects = {}, d_linf = {}, eps = {}",
            extended_hit, a.min_distance_linf(&b), eps);
    }

    #[test]
    fn extension_is_superset_of_euclidean_distance(a in aabb(), b in aabb(), eps in small_eps()) {
        // The filter must never miss a pair within Euclidean distance eps.
        if a.min_distance(&b) <= eps {
            prop_assert!(a.extended(eps).intersects(&b));
        }
    }

    #[test]
    fn euclidean_distance_lower_bounds_linf_scaled(a in aabb(), b in aabb()) {
        // d_linf <= d_euclid <= sqrt(3) * d_linf
        let de = a.min_distance(&b);
        let dc = a.min_distance_linf(&b);
        prop_assert!(dc <= de + 1e-9);
        prop_assert!(de <= dc * 3f64.sqrt() + 1e-9);
    }

    #[test]
    fn extension_monotone_in_eps(a in aabb(), b in aabb(), eps in small_eps()) {
        if a.extended(eps).intersects(&b) {
            prop_assert!(a.extended(eps + 1.0).intersects(&b));
        }
    }

    #[test]
    fn union_all_equals_pairwise_fold(boxes in prop::collection::vec(aabb(), 1..20)) {
        let all = Aabb::union_all(boxes.iter().copied()).unwrap();
        let folded = boxes.iter().skip(1).fold(boxes[0], |acc, b| acc.union(b));
        prop_assert_eq!(all, folded);
        for b in &boxes {
            prop_assert!(all.contains(b));
        }
    }

    #[test]
    fn volume_is_nonnegative_and_additive_bound(a in aabb(), b in aabb()) {
        prop_assert!(a.volume() >= 0.0);
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.volume() <= a.volume() + 1e-9);
            prop_assert!(i.volume() <= b.volume() + 1e-9);
        }
    }
}

fn cylinder() -> impl Strategy<Value = Cylinder> {
    (point(), point(), 0.0..10.0f64).prop_map(|(p0, p1, r)| Cylinder::new(p0, p1, r))
}

proptest! {
    #[test]
    fn cylinder_mbr_contains_endpoints(c in cylinder()) {
        let mbr = c.mbr();
        prop_assert!(mbr.contains_point(&c.p0));
        prop_assert!(mbr.contains_point(&c.p1));
    }

    #[test]
    fn cylinder_distance_is_symmetric(a in cylinder(), b in cylinder()) {
        prop_assert!((a.distance_to(&b) - b.distance_to(&a)).abs() < 1e-9);
    }

    #[test]
    fn mbr_filter_is_conservative_for_cylinders(a in cylinder(), b in cylinder(), eps in small_eps()) {
        // If the exact geometries are within eps, the eps-extended MBRs must intersect:
        // the filtering phase may produce false positives but never false negatives.
        if a.touches(&b, eps) {
            prop_assert!(a.mbr().extended(eps).intersects(&b.mbr()));
        }
    }
}

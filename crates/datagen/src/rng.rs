//! Seeded random number generation helpers.
//!
//! The generators only need uniform and normal variates. `rand 0.8` ships uniform
//! sampling; normal variates are produced with the Box–Muller transform so that no
//! additional dependency (`rand_distr`) is required.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distributions the workload generators need.
///
/// Wraps [`StdRng`] so that every dataset in the experiments is reproducible from a
/// `u64` seed.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
    /// Cached second variate from the last Box–Muller draw.
    spare_normal: Option<f64>,
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// A uniform variate in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`. When `lo == hi` the value `lo` is returned.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range must be ordered: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.gen_range(0..n)
    }

    /// A standard normal variate (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// A uniform point on the unit sphere (used for random branch directions).
    pub fn unit_vector(&mut self) -> [f64; 3] {
        loop {
            let v = [self.uniform(-1.0, 1.0), self.uniform(-1.0, 1.0), self.uniform(-1.0, 1.0)];
            let n2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
            if n2 > 1e-9 && n2 <= 1.0 {
                let n = n2.sqrt();
                return [v[0] / n, v[1] / n, v[2] / n];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let xs: Vec<f64> = (0..10).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f64> = (0..10).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SeededRng::new(7);
        for _ in 0..1000 {
            let v = r.uniform(10.0, 20.0);
            assert!((10.0..20.0).contains(&v));
        }
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut r = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(500.0, 250.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 10.0, "mean = {mean}");
        assert!((var.sqrt() - 250.0).abs() < 10.0, "std = {}", var.sqrt());
    }

    #[test]
    fn unit_vectors_are_normalised() {
        let mut r = SeededRng::new(3);
        for _ in 0..100 {
            let v = r.unit_vector();
            let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn index_within_range() {
        let mut r = SeededRng::new(5);
        for _ in 0..100 {
            assert!(r.index(10) < 10);
        }
    }
}

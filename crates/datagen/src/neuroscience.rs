//! Synthetic neuroscience morphologies (the *touch detection* workload).
//!
//! The paper's real dataset — a subset of a rat-brain model with 644 K axon cylinders
//! and 1.285 M dendrite cylinders in a 285 µm³ volume — is proprietary. This module
//! generates a synthetic substitute with the characteristics the evaluation depends
//! on:
//!
//! * neurons are placed with a **dense core and sparse periphery** (somata drawn from
//!   a Gaussian centred in the tissue volume, with a fraction of outlier neurons far
//!   from the core), so that a significant share of dataset B lies outside the extent
//!   of dataset A's hierarchy and can be filtered (the paper reports 26.6 % for ε = 5);
//! * each neuron grows a handful of **branches modelled as chains of short, thin
//!   cylinders** (random-walk tortuosity), so object MBRs are small and elongated like
//!   the real morphology segments;
//! * axons (dataset A) are longer-ranging and fewer, dendrites (dataset B) shorter and
//!   roughly twice as many, matching the paper's 644 K : 1 285 K ratio.

use crate::rng::SeededRng;
use serde::{Deserialize, Serialize};
use touch_geom::{Aabb, Cylinder, Dataset, Point3};

/// Which kind of branch a generated cylinder belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchKind {
    Axon,
    Dendrite,
}

/// Specification of a synthetic neuroscience workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuroscienceSpec {
    /// Number of axon cylinders to generate (dataset A). Paper: 644 000.
    pub axon_cylinders: usize,
    /// Number of dendrite cylinders to generate (dataset B). Paper: 1 285 000.
    pub dendrite_cylinders: usize,
    /// Side length of the cubic tissue volume in µm. The paper's subset has a volume
    /// of 285 µm³-scale; the default uses a 285-unit cube which preserves the density
    /// relationships at the default counts.
    pub volume_side: f64,
    /// Standard deviation of the soma distribution around the volume centre, as a
    /// fraction of the side length. Small values concentrate the tissue in the core.
    pub core_fraction: f64,
    /// Fraction of neurons whose soma is placed uniformly (periphery / stray
    /// branches); these are what TOUCH's filtering eliminates.
    pub outlier_fraction: f64,
    /// Average number of cylinders per branch.
    pub segments_per_branch: usize,
    /// Length of one cylinder segment.
    pub segment_length: f64,
    /// Radius of a cylinder.
    pub radius: f64,
}

impl Default for NeuroscienceSpec {
    fn default() -> Self {
        NeuroscienceSpec {
            axon_cylinders: 644_000,
            dendrite_cylinders: 1_285_000,
            volume_side: 285.0,
            core_fraction: 0.18,
            outlier_fraction: 0.22,
            segments_per_branch: 40,
            segment_length: 1.8,
            radius: 0.25,
        }
    }
}

impl NeuroscienceSpec {
    /// A spec scaled down to roughly `scale × paper size`, keeping every ratio
    /// (axon:dendrite, density) intact. Used by the experiment harness so the
    /// evaluation can run at laptop scale.
    pub fn scaled(scale: f64) -> Self {
        let base = NeuroscienceSpec::default();
        // Keep density comparable: object count scales with volume, so the side
        // scales with the cube root of the count scale.
        let side_scale = scale.cbrt();
        NeuroscienceSpec {
            axon_cylinders: ((base.axon_cylinders as f64 * scale).round() as usize).max(1),
            dendrite_cylinders: ((base.dendrite_cylinders as f64 * scale).round() as usize).max(1),
            volume_side: base.volume_side * side_scale,
            ..base
        }
    }

    /// Generates the axon (A) and dendrite (B) datasets plus the exact cylinder
    /// geometry, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> NeuroscienceDatasets {
        let mut rng = SeededRng::new(seed);
        let axon_cyls = self.generate_branch_set(&mut rng, BranchKind::Axon, self.axon_cylinders);
        let dendrite_cyls =
            self.generate_branch_set(&mut rng, BranchKind::Dendrite, self.dendrite_cylinders);
        let axons = Dataset::from_mbrs(axon_cyls.iter().map(Cylinder::mbr));
        let dendrites = Dataset::from_mbrs(dendrite_cyls.iter().map(Cylinder::mbr));
        NeuroscienceDatasets {
            axons,
            dendrites,
            axon_cylinders: axon_cyls,
            dendrite_cylinders: dendrite_cyls,
        }
    }

    fn generate_branch_set(
        &self,
        rng: &mut SeededRng,
        kind: BranchKind,
        count: usize,
    ) -> Vec<Cylinder> {
        let mut cylinders = Vec::with_capacity(count);
        let centre = Point3::splat(self.volume_side * 0.5);
        let core_std = self.volume_side * self.core_fraction;
        // Axons range further from the soma than dendrites.
        let (step, wiggle) = match kind {
            BranchKind::Axon => (self.segment_length * 1.4, 0.7),
            BranchKind::Dendrite => (self.segment_length, 0.9),
        };
        while cylinders.len() < count {
            // Place a soma: core neurons cluster near the centre, outliers are
            // uniform over the (slightly padded) volume — these are the objects
            // the TOUCH filter removes.
            let is_outlier = rng.uniform(0.0, 1.0) < self.outlier_fraction;
            let soma = if is_outlier {
                Point3::new(
                    rng.uniform(-0.2 * self.volume_side, 1.2 * self.volume_side),
                    rng.uniform(-0.2 * self.volume_side, 1.2 * self.volume_side),
                    rng.uniform(-0.2 * self.volume_side, 1.2 * self.volume_side),
                )
            } else {
                Point3::new(
                    rng.normal(centre.x, core_std),
                    rng.normal(centre.y, core_std),
                    rng.normal(centre.z, core_std),
                )
            };
            // Grow a few branches from the soma as random walks of cylinders.
            let branches = 2 + rng.index(4);
            for _ in 0..branches {
                if cylinders.len() >= count {
                    break;
                }
                let mut pos = soma;
                let mut dir = rng.unit_vector();
                let segments = (self.segments_per_branch / 2).max(1)
                    + rng.index(self.segments_per_branch.max(1));
                for _ in 0..segments {
                    if cylinders.len() >= count {
                        break;
                    }
                    // Tortuosity: perturb the direction, then renormalise.
                    let perturb = rng.unit_vector();
                    let mut d = [
                        dir[0] + wiggle * perturb[0],
                        dir[1] + wiggle * perturb[1],
                        dir[2] + wiggle * perturb[2],
                    ];
                    let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt().max(1e-9);
                    d = [d[0] / n, d[1] / n, d[2] / n];
                    dir = d;
                    let next = Point3::new(
                        pos.x + dir[0] * step,
                        pos.y + dir[1] * step,
                        pos.z + dir[2] * step,
                    );
                    cylinders.push(Cylinder::new(pos, next, self.radius));
                    pos = next;
                }
            }
        }
        cylinders.truncate(count);
        cylinders
    }
}

/// The generated neuroscience workload: MBR datasets for the join plus the exact
/// cylinder geometry for refinement.
#[derive(Debug, Clone)]
pub struct NeuroscienceDatasets {
    /// Dataset A: axon cylinder MBRs.
    pub axons: Dataset,
    /// Dataset B: dendrite cylinder MBRs.
    pub dendrites: Dataset,
    /// Exact axon geometry, indexed by the ids of `axons`.
    pub axon_cylinders: Vec<Cylinder>,
    /// Exact dendrite geometry, indexed by the ids of `dendrites`.
    pub dendrite_cylinders: Vec<Cylinder>,
}

impl NeuroscienceDatasets {
    /// The tissue volume actually occupied (union of both datasets' extents).
    pub fn extent(&self) -> Option<Aabb> {
        match (self.axons.extent(), self.dendrites.extent()) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> NeuroscienceSpec {
        NeuroscienceSpec {
            axon_cylinders: 2_000,
            dendrite_cylinders: 4_000,
            volume_side: 80.0,
            ..NeuroscienceSpec::default()
        }
    }

    #[test]
    fn generates_exact_counts_and_matching_geometry() {
        let data = small_spec().generate(42);
        assert_eq!(data.axons.len(), 2_000);
        assert_eq!(data.dendrites.len(), 4_000);
        assert_eq!(data.axon_cylinders.len(), 2_000);
        assert_eq!(data.dendrite_cylinders.len(), 4_000);
        // The MBR of object i is the MBR of cylinder i.
        for (o, c) in data.axons.iter().zip(&data.axon_cylinders) {
            assert_eq!(o.mbr, c.mbr());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_spec().generate(7);
        let b = small_spec().generate(7);
        assert_eq!(a.axons.objects(), b.axons.objects());
        assert_eq!(a.dendrites.objects(), b.dendrites.objects());
        let c = small_spec().generate(8);
        assert_ne!(a.axons.objects(), c.axons.objects());
    }

    #[test]
    fn objects_are_small_and_elongated() {
        let spec = small_spec();
        let data = spec.generate(3);
        let avg_vol = data.dendrites.average_volume();
        // Cylinder segments are tiny compared to the volume (paper: 1.34 µm³ average
        // bounding box volume inside a 285 µm³-scale tissue block).
        assert!(avg_vol < 50.0, "average MBR volume too large: {avg_vol}");
        assert!(avg_vol > 0.0);
    }

    #[test]
    fn dense_core_sparse_periphery() {
        let spec = small_spec();
        let data = spec.generate(11);
        let centre = Point3::splat(spec.volume_side * 0.5);
        let core = Aabb::from_center_extent(centre, Point3::splat(spec.volume_side * 0.5));
        let in_core =
            data.dendrites.iter().filter(|o| core.contains_point(&o.mbr.center())).count() as f64;
        let frac = in_core / data.dendrites.len() as f64;
        // The core box occupies 12.5 % of the volume; for the dense-core /
        // sparse-periphery structure the paper's filtering relies on, its object
        // density must be well above the average (branches wander outwards, so the
        // core share of *objects* is noticeably below the soma share).
        assert!(
            frac > 0.25,
            "core fraction too small: {frac} (expected > 2x the volume share of 0.125)"
        );
        // ... but not everything: the periphery exists.
        assert!(frac < 0.98, "no periphery generated: {frac}");
    }

    #[test]
    fn scaled_spec_preserves_ratio() {
        let s = NeuroscienceSpec::scaled(0.01);
        let ratio = s.dendrite_cylinders as f64 / s.axon_cylinders as f64;
        assert!((ratio - 1_285_000.0 / 644_000.0).abs() < 0.05, "ratio = {ratio}");
        assert!(s.volume_side < NeuroscienceSpec::default().volume_side);
    }

    #[test]
    fn extent_covers_both_datasets() {
        let data = small_spec().generate(5);
        let e = data.extent().unwrap();
        assert!(e.contains(&data.axons.extent().unwrap()));
        assert!(e.contains(&data.dendrites.extent().unwrap()));
    }
}

//! Synthetic box datasets: uniform, Gaussian and clustered distributions.
//!
//! Reproduces Section 6.2 of the paper: boxes with uniformly random side lengths in
//! `[0, max_object_side]` are distributed inside a cubic space of `size` units per
//! dimension (1000 in the paper), following one of three centre distributions. The
//! clustered distribution picks up to 100 cluster locations uniformly at random and
//! scatters objects around them with a Gaussian (σ = 220 in the paper).

use crate::rng::SeededRng;
use serde::{Deserialize, Serialize};
use touch_geom::{Aabb, Dataset, Point3};

/// The cubic space the synthetic objects live in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Side length of the space per dimension (the paper uses 1000 space units).
    pub size: f64,
    /// Maximum side length of a generated box (the paper uses 1, i.e. sides are
    /// uniform in `[0, 1]`).
    pub max_object_side: f64,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig { size: 1000.0, max_object_side: 1.0 }
    }
}

impl SpaceConfig {
    /// The full extent of the space as a box anchored at the origin.
    pub fn extent(&self) -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(self.size))
    }
}

/// Distribution of box centres inside the space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SyntheticDistribution {
    /// Centres uniform in the space.
    Uniform,
    /// Centres normally distributed per axis (clamped to the space).
    Gaussian {
        /// Mean per axis (the paper uses 500).
        mean: f64,
        /// Standard deviation per axis (the paper uses 250).
        std_dev: f64,
    },
    /// Centres scattered around `clusters` uniformly-placed cluster centres with a
    /// per-axis Gaussian of `std_dev` (clamped to the space).
    Clustered {
        /// Number of cluster centres (the paper uses up to 100).
        clusters: usize,
        /// Standard deviation of the scatter around each centre (the paper uses 220).
        std_dev: f64,
    },
}

impl SyntheticDistribution {
    /// The paper's Gaussian configuration: μ = 500, σ = 250.
    pub fn paper_gaussian() -> Self {
        SyntheticDistribution::Gaussian { mean: 500.0, std_dev: 250.0 }
    }

    /// The paper's clustered configuration: 100 clusters, σ = 220.
    pub fn paper_clustered() -> Self {
        SyntheticDistribution::Clustered { clusters: 100, std_dev: 220.0 }
    }

    /// Short stable name used in report tables: `"uniform"`, `"gaussian"`, `"clustered"`.
    pub fn name(&self) -> &'static str {
        match self {
            SyntheticDistribution::Uniform => "uniform",
            SyntheticDistribution::Gaussian { .. } => "gaussian",
            SyntheticDistribution::Clustered { .. } => "clustered",
        }
    }
}

/// A complete specification of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of boxes to generate.
    pub count: usize,
    /// Distribution of the box centres.
    pub distribution: SyntheticDistribution,
    /// The space and object-size configuration.
    pub space: SpaceConfig,
}

impl SyntheticSpec {
    /// A spec with the paper's default space (1000³, object sides ≤ 1).
    pub fn new(count: usize, distribution: SyntheticDistribution) -> Self {
        SyntheticSpec { count, distribution, space: SpaceConfig::default() }
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut ds = Dataset::with_capacity(self.count);
        let cluster_centres = self.sample_cluster_centres(&mut rng);
        for _ in 0..self.count {
            let centre = self.sample_centre(&mut rng, &cluster_centres);
            let half = Point3::new(
                0.5 * rng.uniform(0.0, self.space.max_object_side),
                0.5 * rng.uniform(0.0, self.space.max_object_side),
                0.5 * rng.uniform(0.0, self.space.max_object_side),
            );
            ds.push_mbr(Aabb::from_corners(centre - half, centre + half));
        }
        ds
    }

    pub(crate) fn sample_cluster_centres(&self, rng: &mut SeededRng) -> Vec<Point3> {
        match self.distribution {
            SyntheticDistribution::Clustered { clusters, .. } => (0..clusters.max(1))
                .map(|_| {
                    Point3::new(
                        rng.uniform(0.0, self.space.size),
                        rng.uniform(0.0, self.space.size),
                        rng.uniform(0.0, self.space.size),
                    )
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    pub(crate) fn sample_centre(&self, rng: &mut SeededRng, cluster_centres: &[Point3]) -> Point3 {
        let size = self.space.size;
        let clamp = |v: f64| v.clamp(0.0, size);
        match self.distribution {
            SyntheticDistribution::Uniform => {
                Point3::new(rng.uniform(0.0, size), rng.uniform(0.0, size), rng.uniform(0.0, size))
            }
            SyntheticDistribution::Gaussian { mean, std_dev } => Point3::new(
                clamp(rng.normal(mean, std_dev)),
                clamp(rng.normal(mean, std_dev)),
                clamp(rng.normal(mean, std_dev)),
            ),
            SyntheticDistribution::Clustered { std_dev, .. } => {
                let c = cluster_centres[rng.index(cluster_centres.len())];
                Point3::new(
                    clamp(c.x + rng.normal(0.0, std_dev)),
                    clamp(c.y + rng.normal(0.0, std_dev)),
                    clamp(c.z + rng.normal(0.0, std_dev)),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let ds = SyntheticSpec::new(500, SyntheticDistribution::Uniform).generate(1);
        assert_eq!(ds.len(), 500);
        assert!(ds.iter().enumerate().all(|(i, o)| o.id as usize == i));
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = SyntheticSpec::new(200, SyntheticDistribution::paper_gaussian());
        let a = spec.generate(99);
        let b = spec.generate(99);
        assert_eq!(a.objects(), b.objects());
        let c = spec.generate(100);
        assert_ne!(a.objects(), c.objects());
    }

    #[test]
    fn boxes_respect_space_and_size_bounds() {
        for dist in [
            SyntheticDistribution::Uniform,
            SyntheticDistribution::paper_gaussian(),
            SyntheticDistribution::paper_clustered(),
        ] {
            let spec = SyntheticSpec::new(300, dist);
            let ds = spec.generate(7);
            let space = spec.space;
            for o in ds.iter() {
                for axis in 0..3 {
                    let side = o.mbr.side(axis);
                    assert!(side >= 0.0 && side <= space.max_object_side + 1e-9);
                    // centres are clamped to the space; boxes can stick out at most
                    // by half an object side.
                    assert!(o.mbr.min.coord(axis) >= -space.max_object_side);
                    assert!(o.mbr.max.coord(axis) <= space.size + space.max_object_side);
                }
            }
        }
    }

    #[test]
    fn gaussian_is_denser_in_the_middle_than_uniform() {
        let n = 4000;
        let uni = SyntheticSpec::new(n, SyntheticDistribution::Uniform).generate(3);
        let gau = SyntheticSpec::new(n, SyntheticDistribution::paper_gaussian()).generate(3);
        let central = Aabb::new(Point3::splat(350.0), Point3::splat(650.0));
        let count =
            |ds: &Dataset| ds.iter().filter(|o| central.contains_point(&o.mbr.center())).count();
        assert!(
            count(&gau) > count(&uni),
            "gaussian should concentrate mass near the centre ({} vs {})",
            count(&gau),
            count(&uni)
        );
    }

    #[test]
    fn clustered_objects_concentrate_around_few_locations() {
        let n = 3000;
        let spec = SyntheticSpec {
            count: n,
            distribution: SyntheticDistribution::Clustered { clusters: 5, std_dev: 10.0 },
            space: SpaceConfig::default(),
        };
        let ds = spec.generate(13);
        // With 5 tight clusters the average pairwise-to-centre spread is far below the
        // uniform expectation; check that the occupied extent of most objects is tiny
        // compared to the space by measuring mean nearest-cluster distance indirectly:
        // the dataset extent is the full space but the volume covered by a 20-unit
        // neighbourhood of each object's centre is small. Simplest robust check:
        // many objects share nearly identical centres (clustering).
        let mut close_pairs = 0;
        let objs = ds.objects();
        for i in (0..objs.len()).step_by(50) {
            for j in (0..objs.len()).step_by(50) {
                if i < j && objs[i].mbr.center().distance(objs[j].mbr.center()) < 40.0 {
                    close_pairs += 1;
                }
            }
        }
        assert!(close_pairs > 50, "clustered data should have many close pairs, got {close_pairs}");
    }

    #[test]
    fn distribution_names_are_stable() {
        assert_eq!(SyntheticDistribution::Uniform.name(), "uniform");
        assert_eq!(SyntheticDistribution::paper_gaussian().name(), "gaussian");
        assert_eq!(SyntheticDistribution::paper_clustered().name(), "clustered");
    }
}

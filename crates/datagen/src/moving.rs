//! Moving-object workloads: seed-stable initial states for tick-loop simulations.
//!
//! A moving-object workload is the *initial condition* of a simulated world —
//! per-entity positions, velocities and collision radii — not a static box
//! dataset: the simulation layer (`touch-sim`) owns the integration loop and
//! derives a fresh MBR dataset from the positions every tick. Spawn locations
//! reuse the synthetic centre distributions of [`SyntheticSpec`] (uniform,
//! Gaussian, clustered), so a clustered world starts with the same hot spots the
//! paper's clustered datasets stress.
//!
//! Generation is deterministic given a seed, with a **pinned draw order** per
//! entity — position (through the spawn distribution), then velocity, then
//! radius — so the exact initial state is part of the format contract and unit
//! tests can pin first-tick positions.

use crate::rng::SeededRng;
use crate::synthetic::{SpaceConfig, SyntheticDistribution, SyntheticSpec};
use serde::{Deserialize, Serialize};
use touch_geom::Point3;

/// Distribution of the per-entity initial velocities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VelocityDistribution {
    /// A uniformly random direction scaled by a speed uniform in
    /// `[0, max_speed)`: an isotropic crowd with bounded velocity.
    Uniform {
        /// Upper bound of the speed (space units per tick of `dt = 1`).
        max_speed: f64,
    },
    /// Each velocity component drawn from a zero-mean Gaussian: a thermal
    /// ensemble with unbounded (but exponentially rare) outliers.
    Gaussian {
        /// Standard deviation of each velocity component.
        std_dev: f64,
    },
}

impl VelocityDistribution {
    /// Short stable name used in report tables: `"uniform"` or `"gaussian"`.
    pub fn name(&self) -> &'static str {
        match self {
            VelocityDistribution::Uniform { .. } => "uniform",
            VelocityDistribution::Gaussian { .. } => "gaussian",
        }
    }

    fn sample(&self, rng: &mut SeededRng) -> Point3 {
        match *self {
            VelocityDistribution::Uniform { max_speed } => {
                let dir = rng.unit_vector();
                let speed = rng.uniform(0.0, max_speed);
                Point3::new(dir[0] * speed, dir[1] * speed, dir[2] * speed)
            }
            VelocityDistribution::Gaussian { std_dev } => Point3::new(
                rng.normal(0.0, std_dev),
                rng.normal(0.0, std_dev),
                rng.normal(0.0, std_dev),
            ),
        }
    }
}

/// A complete specification of a moving-object workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovingObjectsSpec {
    /// Number of entities.
    pub count: usize,
    /// Distribution of the spawn locations (same vocabulary as the static
    /// synthetic datasets).
    pub spawn: SyntheticDistribution,
    /// Distribution of the initial velocities.
    pub velocity: VelocityDistribution,
    /// Collision radii are uniform in `[min_radius, max_radius)`.
    pub min_radius: f64,
    /// Upper bound of the collision radius.
    pub max_radius: f64,
    /// The cubic space the entities live (and bounce) in.
    pub space: SpaceConfig,
}

impl MovingObjectsSpec {
    /// A clustered crowd with uniform velocities — the default tick-loop
    /// workload: spawn hot spots exercise TOUCH's data-oriented partitioning,
    /// motion disperses them over time.
    pub fn new(count: usize) -> Self {
        MovingObjectsSpec {
            count,
            spawn: SyntheticDistribution::paper_clustered(),
            velocity: VelocityDistribution::Uniform { max_speed: 1.0 },
            min_radius: 0.25,
            max_radius: 0.5,
            space: SpaceConfig::default(),
        }
    }

    /// Generates the initial state deterministically from `seed`.
    ///
    /// Draw order per entity — spawn position, velocity, radius — is pinned;
    /// cluster centres (when the spawn distribution is clustered) are drawn
    /// first, exactly as in [`SyntheticSpec::generate`].
    pub fn generate(&self, seed: u64) -> MovingObjects {
        assert!(
            self.min_radius <= self.max_radius,
            "radius range must be ordered: {} > {}",
            self.min_radius,
            self.max_radius
        );
        let mut rng = SeededRng::new(seed);
        // Reuse the synthetic sampler for the spawn locations so the clustered
        // layout is literally the paper's.
        let spec = SyntheticSpec { count: self.count, distribution: self.spawn, space: self.space };
        let centres = spec.sample_cluster_centres(&mut rng);
        let mut out = MovingObjects {
            positions: Vec::with_capacity(self.count),
            velocities: Vec::with_capacity(self.count),
            radii: Vec::with_capacity(self.count),
        };
        for _ in 0..self.count {
            out.positions.push(spec.sample_centre(&mut rng, &centres));
            out.velocities.push(self.velocity.sample(&mut rng));
            out.radii.push(rng.uniform(self.min_radius, self.max_radius));
        }
        out
    }
}

/// The generated initial state of a moving-object world: three parallel arrays
/// indexed by entity id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingObjects {
    /// Entity centre positions.
    pub positions: Vec<Point3>,
    /// Entity velocities (space units per unit time).
    pub velocities: Vec<Point3>,
    /// Entity collision radii.
    pub radii: Vec<f64>,
}

impl MovingObjects {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the workload holds no entities.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(count: usize) -> MovingObjectsSpec {
        MovingObjectsSpec::new(count)
    }

    #[test]
    fn generates_parallel_arrays_of_the_requested_count() {
        let w = spec(200).generate(1);
        assert_eq!(w.len(), 200);
        assert_eq!(w.velocities.len(), 200);
        assert_eq!(w.radii.len(), 200);
        assert!(!w.is_empty());
        assert!(MovingObjects { positions: vec![], velocities: vec![], radii: vec![] }.is_empty());
    }

    #[test]
    fn seed_stable_and_seeds_differ() {
        let a = spec(300).generate(42);
        let b = spec(300).generate(42);
        assert_eq!(a, b, "same seed must reproduce the exact state");
        let c = spec(300).generate(43);
        assert_ne!(a.positions, c.positions);
    }

    /// The draw order — cluster centres, then per entity position / velocity /
    /// radius — is a format contract: this pins entity 0's state against a
    /// manual replay of the documented order.
    #[test]
    fn draw_order_is_pinned() {
        let s = spec(5);
        let generated = s.generate(7);

        let mut rng = SeededRng::new(7);
        let spec = SyntheticSpec { count: 5, distribution: s.spawn, space: s.space };
        let centres = spec.sample_cluster_centres(&mut rng);
        for i in 0..5 {
            let pos = spec.sample_centre(&mut rng, &centres);
            let vel = s.velocity.sample(&mut rng);
            let radius = rng.uniform(s.min_radius, s.max_radius);
            assert_eq!(generated.positions[i], pos, "entity {i} position");
            assert_eq!(generated.velocities[i], vel, "entity {i} velocity");
            assert_eq!(generated.radii[i], radius, "entity {i} radius");
        }
    }

    #[test]
    fn radii_respect_the_configured_range() {
        let mut s = spec(500);
        s.min_radius = 1.0;
        s.max_radius = 2.0;
        let w = s.generate(3);
        assert!(w.radii.iter().all(|&r| (1.0..2.0).contains(&r)));
    }

    #[test]
    fn uniform_velocities_are_speed_bounded_and_gaussian_are_not_constant() {
        let mut s = spec(400);
        s.velocity = VelocityDistribution::Uniform { max_speed: 2.0 };
        let w = s.generate(5);
        for v in &w.velocities {
            let speed = (v.x * v.x + v.y * v.y + v.z * v.z).sqrt();
            assert!(speed < 2.0 + 1e-9, "speed {speed} exceeds the bound");
        }

        s.velocity = VelocityDistribution::Gaussian { std_dev: 1.0 };
        let g = s.generate(5);
        assert!(g.velocities.iter().any(|v| v.x.abs() > 1e-6));
        assert_eq!(VelocityDistribution::Uniform { max_speed: 1.0 }.name(), "uniform");
        assert_eq!(VelocityDistribution::Gaussian { std_dev: 1.0 }.name(), "gaussian");
    }

    #[test]
    fn clustered_spawn_concentrates_entities() {
        let mut s = spec(1500);
        s.spawn = SyntheticDistribution::Clustered { clusters: 4, std_dev: 8.0 };
        let w = s.generate(11);
        let mut close_pairs = 0;
        for i in (0..w.len()).step_by(25) {
            for j in (0..w.len()).step_by(25) {
                if i < j && w.positions[i].distance(w.positions[j]) < 30.0 {
                    close_pairs += 1;
                }
            }
        }
        assert!(close_pairs > 50, "clustered spawns should pack entities, got {close_pairs}");
    }
}

//! # touch-datagen — workload generators for the TOUCH evaluation
//!
//! The paper evaluates TOUCH on two families of datasets (Section 6.2):
//!
//! * **Synthetic 3-D boxes** in a 1000³ space, with side lengths drawn uniformly from
//!   `[0, 1]`, distributed
//!   * *uniformly*,
//!   * as a *Gaussian* (μ = 500, σ = 250 per axis), or
//!   * *clustered* (up to 100 uniformly placed cluster centres, objects scattered
//!     around them with σ = 220),
//!
//!   in sizes from 10 K to 9.6 M objects.
//! * A **neuroscience** dataset: a rat-brain model subset with 644 K axon cylinders
//!   (dataset A) and 1.285 M dendrite cylinders (dataset B) inside a 285 µm³ volume.
//!
//! The real neuroscience model is proprietary; [`NeuroscienceSpec`] generates a
//! synthetic substitute — branching cylinder morphologies with a dense core and sparse
//! periphery — that preserves the properties the paper's evaluation relies on
//! (axon:dendrite ratio, elongated thin MBRs, a significant share of dataset B outside
//! the extent of dataset A so that TOUCH's filtering has comparable impact). See
//! DESIGN.md §4 for the substitution rationale.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod moving;
mod neuroscience;
mod rng;
mod synthetic;

pub use moving::{MovingObjects, MovingObjectsSpec, VelocityDistribution};
pub use neuroscience::{NeuroscienceDatasets, NeuroscienceSpec};
pub use rng::SeededRng;
pub use synthetic::{SpaceConfig, SyntheticDistribution, SyntheticSpec};

use touch_geom::Dataset;

/// Convenience: generates the paper's uniform dataset of `count` boxes with `seed`.
pub fn uniform(count: usize, seed: u64) -> Dataset {
    SyntheticSpec::new(count, SyntheticDistribution::Uniform).generate(seed)
}

/// Convenience: generates the paper's Gaussian dataset (μ = 500, σ = 250).
pub fn gaussian(count: usize, seed: u64) -> Dataset {
    SyntheticSpec::new(count, SyntheticDistribution::paper_gaussian()).generate(seed)
}

/// Convenience: generates the paper's clustered dataset (≤ 100 clusters, σ = 220).
pub fn clustered(count: usize, seed: u64) -> Dataset {
    SyntheticSpec::new(count, SyntheticDistribution::paper_clustered()).generate(seed)
}

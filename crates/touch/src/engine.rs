//! Engine selection for [`JoinQuery`](touch_core::JoinQuery): the [`Engine`] and
//! [`Baseline`] enums.
//!
//! `touch-core` cannot name the parallel/streaming engines or the baselines (they
//! live in downstream crates), so the facade provides the closed selector that
//! spans the whole workspace. `Engine` itself implements
//! [`SpatialJoinAlgorithm`] by delegating to the selected engine, which means it
//! plugs into `JoinQuery::engine(...)` through the blanket
//! [`touch_core::IntoEngine`] impl — and doubles as a serialisable-ish "engine
//! id" for per-query engine selection in services.

use touch_baselines::{
    IndexedNestedLoopJoin, NestedLoopJoin, OctreeJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin,
    S3Join, SeededTreeJoin,
};
use touch_core::{PairSink, SpatialJoinAlgorithm, TouchConfig, TouchJoin};
use touch_geom::Dataset;
use touch_metrics::RunReport;
use touch_parallel::{ParallelConfig, ParallelTouchJoin};
use touch_streaming::{OneShotStreaming, StreamingConfig};

/// One of the paper's competitor algorithms, in its evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Nested loop join (§2.1).
    NestedLoop,
    /// Plane-sweep join (§2.1).
    PlaneSweep,
    /// PBSM with 500 grid cells per dimension (§2.2.3).
    Pbsm500,
    /// PBSM with 100 grid cells per dimension (§2.2.3).
    Pbsm100,
    /// Size Separation Spatial Join (§2.2.3).
    S3,
    /// Indexed nested loop over an R-tree on dataset A (§2.2.2).
    IndexedNestedLoop,
    /// Synchronous R-tree traversal, both datasets indexed (§2.2.1).
    RTree,
    /// Octree double-index traversal (related work, §2.2.1).
    Octree,
    /// Seeded-tree join (related work, §2.2.2).
    SeededTree,
}

impl Baseline {
    /// Every baseline, in the order of the paper's Figure 8 suite (the two
    /// related-work algorithms last).
    pub const ALL: [Baseline; 9] = [
        Baseline::NestedLoop,
        Baseline::PlaneSweep,
        Baseline::Pbsm500,
        Baseline::Pbsm100,
        Baseline::S3,
        Baseline::IndexedNestedLoop,
        Baseline::RTree,
        Baseline::Octree,
        Baseline::SeededTree,
    ];

    /// Instantiates the baseline in its paper configuration.
    pub fn build(self) -> Box<dyn SpatialJoinAlgorithm> {
        match self {
            Baseline::NestedLoop => Box::new(NestedLoopJoin::new()),
            Baseline::PlaneSweep => Box::new(PlaneSweepJoin::new()),
            Baseline::Pbsm500 => Box::new(PbsmJoin::pbsm_500()),
            Baseline::Pbsm100 => Box::new(PbsmJoin::pbsm_100()),
            Baseline::S3 => Box::new(S3Join::paper_default()),
            Baseline::IndexedNestedLoop => Box::new(IndexedNestedLoopJoin::paper_default()),
            Baseline::RTree => Box::new(RTreeSyncJoin::paper_default()),
            Baseline::Octree => Box::new(OctreeJoin::with_defaults()),
            Baseline::SeededTree => Box::new(SeededTreeJoin::paper_comparable()),
        }
    }
}

/// The engine a [`JoinQuery`](touch_core::JoinQuery) executes on: the single
/// selector spanning every join implementation of the workspace.
///
/// ```
/// use touch::{CountingSink, Engine, JoinQuery, ParallelConfig, Predicate};
/// use touch::{Aabb, Dataset, Point3};
///
/// let a: Dataset = (0..100)
///     .map(|i| {
///         let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
///         Aabb::new(min, min + Point3::splat(1.0))
///     })
///     .collect();
/// let b: Dataset = (0..100)
///     .map(|i| {
///         let min = Point3::new(i as f64 * 3.0 + 1.5, 0.0, 0.0);
///         Aabb::new(min, min + Point3::splat(1.0))
///     })
///     .collect();
///
/// let mut sink = CountingSink::new();
/// let report = JoinQuery::new(&a, &b)
///     .predicate(Predicate::WithinDistance(1.0))
///     .engine(Engine::Parallel(ParallelConfig::with_threads(2)))
///     .run(&mut sink);
/// assert_eq!(report.result_pairs(), sink.count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// The sequential TOUCH join ([`TouchJoin`]).
    Touch(TouchConfig),
    /// The multi-threaded TOUCH join ([`ParallelTouchJoin`]).
    Parallel(ParallelConfig),
    /// The streaming engine run one-shot: build the tree, push B as one epoch
    /// ([`OneShotStreaming`]).
    Streaming(StreamingConfig),
    /// One of the paper's competitor algorithms.
    Baseline(Baseline),
}

impl Engine {
    /// The default TOUCH engine in the paper's configuration.
    pub fn touch() -> Self {
        Engine::Touch(TouchConfig::default())
    }

    /// The parallel engine with auto-detected thread count.
    pub fn parallel() -> Self {
        Engine::Parallel(ParallelConfig::default())
    }

    /// Instantiates the selected engine.
    pub fn build(&self) -> Box<dyn SpatialJoinAlgorithm> {
        match *self {
            Engine::Touch(cfg) => Box::new(TouchJoin::new(cfg)),
            Engine::Parallel(cfg) => Box::new(ParallelTouchJoin::new(cfg)),
            Engine::Streaming(cfg) => Box::new(OneShotStreaming::new(cfg)),
            Engine::Baseline(baseline) => baseline.build(),
        }
    }
}

impl SpatialJoinAlgorithm for Engine {
    fn name(&self) -> String {
        self.build().name()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        self.build().join_into(a, b, sink, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::{collect_join, CollectingSink, JoinQuery};
    use touch_geom::Point3;

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = touch_geom::Point3::new(next() * 40.0, next() * 40.0, next() * 40.0);
            touch_geom::Aabb::new(min, min + Point3::splat(0.3 + next() * 2.0))
        }))
    }

    #[test]
    fn every_engine_variant_agrees_through_join_query() {
        let a = sample(120, 1);
        let b = sample(150, 2);
        let (expected, _) = collect_join(&TouchJoin::default(), &a, &b);
        let engines = [
            Engine::touch(),
            Engine::Parallel(ParallelConfig::with_threads(2)),
            Engine::Streaming(StreamingConfig::default()),
            Engine::Baseline(Baseline::RTree),
        ];
        for engine in engines {
            let mut sink = CollectingSink::new();
            let report = JoinQuery::new(&a, &b).engine(engine).run(&mut sink);
            assert_eq!(sink.sorted_pairs(), expected, "engine {engine:?}");
            assert_eq!(report.algorithm, engine.name());
        }
    }

    #[test]
    fn baseline_names_match_the_paper() {
        let names: Vec<String> = Baseline::ALL.iter().map(|b| b.build().name()).collect();
        assert_eq!(
            names,
            vec![
                "NL",
                "PS",
                "PBSM-500",
                "PBSM-100",
                "S3",
                "Indexed NL",
                "RTree",
                "Octree",
                "Seeded tree"
            ]
        );
    }
}

//! Engine selection for [`JoinQuery`](touch_core::JoinQuery): the [`Engine`] and
//! [`Baseline`] enums.
//!
//! `touch-core` cannot name the parallel/streaming engines or the baselines (they
//! live in downstream crates), so the facade provides the closed selector that
//! spans the whole workspace. `Engine` itself implements
//! [`SpatialJoinAlgorithm`] by delegating to the selected engine, which means it
//! plugs into `JoinQuery::engine(...)` through the blanket
//! [`touch_core::IntoEngine`] impl — and doubles as a serialisable-ish "engine
//! id" for per-query engine selection in services.

use touch_baselines::{
    IndexedNestedLoopJoin, NestedLoopJoin, OctreeJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin,
    S3Join, SeededTreeJoin,
};
use touch_core::{
    DatasetStats, ExecControl, ExecutionStrategy, JoinError, JoinPlan, JoinPlanner, PairSink,
    PlanEnv, SpatialJoinAlgorithm, TouchConfig, TouchJoin,
};
use touch_geom::Dataset;
use touch_metrics::{RunReport, TraceSink};
use touch_parallel::{ParallelConfig, ParallelTouchJoin};
use touch_streaming::{OneShotStreaming, StreamingConfig};

/// One of the paper's competitor algorithms, in its evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Nested loop join (§2.1).
    NestedLoop,
    /// Plane-sweep join (§2.1).
    PlaneSweep,
    /// PBSM with 500 grid cells per dimension (§2.2.3).
    Pbsm500,
    /// PBSM with 100 grid cells per dimension (§2.2.3).
    Pbsm100,
    /// Size Separation Spatial Join (§2.2.3).
    S3,
    /// Indexed nested loop over an R-tree on dataset A (§2.2.2).
    IndexedNestedLoop,
    /// Synchronous R-tree traversal, both datasets indexed (§2.2.1).
    RTree,
    /// Octree double-index traversal (related work, §2.2.1).
    Octree,
    /// Seeded-tree join (related work, §2.2.2).
    SeededTree,
}

impl Baseline {
    /// Every baseline, in the order of the paper's Figure 8 suite (the two
    /// related-work algorithms last).
    pub const ALL: [Baseline; 9] = [
        Baseline::NestedLoop,
        Baseline::PlaneSweep,
        Baseline::Pbsm500,
        Baseline::Pbsm100,
        Baseline::S3,
        Baseline::IndexedNestedLoop,
        Baseline::RTree,
        Baseline::Octree,
        Baseline::SeededTree,
    ];

    /// Instantiates the baseline in its paper configuration.
    pub fn build(self) -> Box<dyn SpatialJoinAlgorithm> {
        match self {
            Baseline::NestedLoop => Box::new(NestedLoopJoin::new()),
            Baseline::PlaneSweep => Box::new(PlaneSweepJoin::new()),
            Baseline::Pbsm500 => Box::new(PbsmJoin::pbsm_500()),
            Baseline::Pbsm100 => Box::new(PbsmJoin::pbsm_100()),
            Baseline::S3 => Box::new(S3Join::paper_default()),
            Baseline::IndexedNestedLoop => Box::new(IndexedNestedLoopJoin::paper_default()),
            Baseline::RTree => Box::new(RTreeSyncJoin::paper_default()),
            Baseline::Octree => Box::new(OctreeJoin::with_defaults()),
            Baseline::SeededTree => Box::new(SeededTreeJoin::paper_comparable()),
        }
    }
}

/// The engine a [`JoinQuery`](touch_core::JoinQuery) executes on: the single
/// selector spanning every join implementation of the workspace.
///
/// ```
/// use touch::{CountingSink, Engine, JoinQuery, ParallelConfig, Predicate};
/// use touch::{Aabb, Dataset, Point3};
///
/// let a: Dataset = (0..100)
///     .map(|i| {
///         let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
///         Aabb::new(min, min + Point3::splat(1.0))
///     })
///     .collect();
/// let b: Dataset = (0..100)
///     .map(|i| {
///         let min = Point3::new(i as f64 * 3.0 + 1.5, 0.0, 0.0);
///         Aabb::new(min, min + Point3::splat(1.0))
///     })
///     .collect();
///
/// let mut sink = CountingSink::new();
/// let report = JoinQuery::new(&a, &b)
///     .predicate(Predicate::WithinDistance(1.0))
///     .engine(Engine::Parallel(ParallelConfig::with_threads(2)))
///     .run(&mut sink);
/// assert_eq!(report.result_pairs(), sink.count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Engine {
    /// **Automatic planning** (the default): collect [`DatasetStats`] for both
    /// inputs, derive every TOUCH knob with the [`JoinPlanner`] cost model, and
    /// dispatch to the sequential, parallel or streaming engine — whichever the
    /// plan selects for this query on this machine ([`AutoEngine`]).
    #[default]
    Auto,
    /// A pre-computed, fully resolved [`JoinPlan`] — executed verbatim by the
    /// engine its strategy names. This is the explicit form of what
    /// [`Engine::Auto`] does internally, and the hook the planner equivalence
    /// suite uses to pin `Auto` against the engine it resolves to.
    Planned(JoinPlan),
    /// The sequential TOUCH join ([`TouchJoin`]).
    Touch(TouchConfig),
    /// The multi-threaded TOUCH join ([`ParallelTouchJoin`]).
    Parallel(ParallelConfig),
    /// The streaming engine run one-shot: build the tree, push B as one epoch
    /// ([`OneShotStreaming`]).
    Streaming(StreamingConfig),
    /// One of the paper's competitor algorithms.
    Baseline(Baseline),
}

impl Engine {
    /// The default TOUCH engine in the paper's configuration.
    pub fn touch() -> Self {
        Engine::Touch(TouchConfig::default())
    }

    /// The parallel engine with auto-detected thread count.
    pub fn parallel() -> Self {
        Engine::Parallel(ParallelConfig::default())
    }

    /// Instantiates the selected engine.
    pub fn build(&self) -> Box<dyn SpatialJoinAlgorithm> {
        match *self {
            Engine::Auto => Box::new(AutoEngine::new()),
            Engine::Planned(plan) => AutoEngine::resolve(plan),
            Engine::Touch(cfg) => Box::new(TouchJoin::new(cfg)),
            Engine::Parallel(cfg) => Box::new(ParallelTouchJoin::new(cfg)),
            Engine::Streaming(cfg) => Box::new(OneShotStreaming::new(cfg)),
            Engine::Baseline(baseline) => baseline.build(),
        }
    }
}

impl SpatialJoinAlgorithm for Engine {
    fn name(&self) -> String {
        self.build().name()
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        self.build().plan_for(a, b)
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        self.build().join_into(a, b, sink, report)
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        self.build().join_traced(a, b, sink, report, trace)
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        self.build().plan_self_for(a)
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        self.build().join_self_into(a, base, sink, report)
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        self.build().join_self_traced(a, base, sink, report, trace)
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        self.build().try_join_into(a, b, sink, report, ctl)
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        self.build().try_join_self_into(a, base, sink, report, ctl)
    }
}

/// The workspace-wide auto-planning engine behind [`Engine::Auto`].
///
/// Where `touch-core`'s [`touch_core::AutoJoin`] can only execute its plans
/// sequentially (the parallel and streaming engines live downstream of it),
/// this engine spans the whole workspace: it collects [`DatasetStats`] for both
/// inputs (one cheap linear pass each, measured and recorded as
/// `PlanSummary::stats_time` on the report), plans with the machine's available
/// parallelism and the sink's pair budget, and dispatches to
/// [`TouchJoin`], [`ParallelTouchJoin`] or [`OneShotStreaming`] — whichever the
/// plan's strategy names. The executed plan is recorded on
/// [`RunReport::plan`] and the resolved engine's name is appended to the
/// report's algorithm label (e.g. `"TOUCH-AUTO → TOUCH-P4"`).
///
/// Because a [`JoinPlan`] pins every algorithmic decision, the dispatched run is
/// bit-identical — pairs *and* counters — to running `Engine::Planned(plan)`
/// (or the matching engine's `from_plan` constructor) directly; the planner
/// equivalence suite locks this down at 1/2/4/8 threads.
#[derive(Debug, Clone)]
pub struct AutoEngine {
    planner: JoinPlanner,
    env: PlanEnv,
}

impl AutoEngine {
    /// An auto engine planning with the default [`JoinPlanner`] and the
    /// machine's detected parallelism.
    pub fn new() -> Self {
        AutoEngine { planner: JoinPlanner::default(), env: PlanEnv::detect() }
    }

    /// An auto engine planning for an explicit worker budget (used by the
    /// equivalence suites to exercise every strategy deterministically).
    pub fn with_threads(threads: usize) -> Self {
        AutoEngine { planner: JoinPlanner::default(), env: PlanEnv::detect().with_threads(threads) }
    }

    /// An auto engine with a custom planner and environment.
    pub fn with_planner(planner: JoinPlanner, env: PlanEnv) -> Self {
        AutoEngine { planner, env }
    }

    /// The planner this engine consults.
    pub fn planner(&self) -> &JoinPlanner {
        &self.planner
    }

    /// Instantiates the engine a resolved plan's strategy names.
    pub fn resolve(plan: JoinPlan) -> Box<dyn SpatialJoinAlgorithm> {
        match plan.strategy {
            ExecutionStrategy::Sequential => Box::new(TouchJoin::from_plan(plan)),
            ExecutionStrategy::Parallel { .. } => Box::new(ParallelTouchJoin::from_plan(plan)),
            ExecutionStrategy::Streaming { .. } => Box::new(OneShotStreaming::from_plan(plan)),
        }
    }
}

impl Default for AutoEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SpatialJoinAlgorithm for AutoEngine {
    fn name(&self) -> String {
        "TOUCH-AUTO".to_string()
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        let (sa, sb) = (DatasetStats::from_dataset(a), DatasetStats::from_dataset(b));
        Some(self.planner.plan(&sa, &sb, &self.env))
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        self.join_traced(a, b, sink, report, &touch_metrics::NoTrace)
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        let stats_start = std::time::Instant::now();
        let (sa, sb) = (DatasetStats::from_dataset(a), DatasetStats::from_dataset(b));
        let stats_time = stats_start.elapsed();
        let mut env = self.env.with_pair_limit(sink.pair_limit());
        env.epsilon = report.epsilon;
        let plan = self.planner.plan(&sa, &sb, &env);
        let engine = Self::resolve(plan);
        report.algorithm = format!("TOUCH-AUTO → {}", engine.name());
        engine.join_traced(a, b, sink, report, trace);
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        let sa = DatasetStats::from_dataset(a);
        Some(self.planner.plan_self(&sa, &self.env))
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        self.join_self_traced(a, base, sink, report, &touch_metrics::NoTrace)
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        // Self-joins are costed on the single input's statistics (work estimate
        // halved — see `JoinPlanner::plan_self`); the dispatched engine then runs
        // its in-kernel index-order filter, so pairs and counters stay identical
        // to the explicitly selected engine at every width.
        let stats_start = std::time::Instant::now();
        let sa = DatasetStats::from_dataset(a);
        let stats_time = stats_start.elapsed();
        let mut env = self.env.with_pair_limit(sink.pair_limit());
        env.epsilon = report.epsilon;
        let plan = self.planner.plan_self(&sa, &env);
        let engine = Self::resolve(plan);
        report.algorithm = format!("TOUCH-AUTO → {}", engine.name());
        engine.join_self_traced(a, base, sink, report, trace);
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        // Check before the stats pass so a pre-cancelled run skips even
        // planning; the resolved engine then owns all finer-grained polling.
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(());
        }
        let stats_start = std::time::Instant::now();
        let (sa, sb) = (DatasetStats::from_dataset(a), DatasetStats::from_dataset(b));
        let stats_time = stats_start.elapsed();
        let mut env = self.env.with_pair_limit(sink.pair_limit());
        env.epsilon = report.epsilon;
        let plan = self.planner.plan(&sa, &sb, &env);
        let engine = Self::resolve(plan);
        report.algorithm = format!("TOUCH-AUTO → {}", engine.name());
        engine.try_join_into(a, b, sink, report, ctl)?;
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
        Ok(())
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            return Ok(());
        }
        let stats_start = std::time::Instant::now();
        let sa = DatasetStats::from_dataset(a);
        let stats_time = stats_start.elapsed();
        let mut env = self.env.with_pair_limit(sink.pair_limit());
        env.epsilon = report.epsilon;
        let plan = self.planner.plan_self(&sa, &env);
        let engine = Self::resolve(plan);
        report.algorithm = format!("TOUCH-AUTO → {}", engine.name());
        engine.try_join_self_into(a, base, sink, report, ctl)?;
        if let Some(summary) = &mut report.plan {
            summary.stats_time = stats_time;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::{collect_join, CollectingSink, JoinQuery};
    use touch_geom::Point3;

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = touch_geom::Point3::new(next() * 40.0, next() * 40.0, next() * 40.0);
            touch_geom::Aabb::new(min, min + Point3::splat(0.3 + next() * 2.0))
        }))
    }

    #[test]
    fn every_engine_variant_agrees_through_join_query() {
        let a = sample(120, 1);
        let b = sample(150, 2);
        let (expected, _) = collect_join(&TouchJoin::default(), &a, &b);
        let engines = [
            Engine::touch(),
            Engine::Parallel(ParallelConfig::with_threads(2)),
            Engine::Streaming(StreamingConfig::default()),
            Engine::Baseline(Baseline::RTree),
        ];
        for engine in engines {
            let mut sink = CollectingSink::new();
            let report = JoinQuery::new(&a, &b).engine(engine).run(&mut sink);
            assert_eq!(sink.sorted_pairs(), expected, "engine {engine:?}");
            assert_eq!(report.algorithm, engine.name());
        }
    }

    #[test]
    fn baseline_names_match_the_paper() {
        let names: Vec<String> = Baseline::ALL.iter().map(|b| b.build().name()).collect();
        assert_eq!(
            names,
            vec![
                "NL",
                "PS",
                "PBSM-500",
                "PBSM-100",
                "S3",
                "Indexed NL",
                "RTree",
                "Octree",
                "Seeded tree"
            ]
        );
    }
}

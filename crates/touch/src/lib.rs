//! # touch — in-memory spatial joins by hierarchical data-oriented partitioning
//!
//! This is the facade crate of the TOUCH workspace: it re-exports the complete public
//! API so that applications depend on a single crate.
//!
//! * [`geom`] — geometry kernel: [`Aabb`] (MBRs), [`Point3`], [`Cylinder`],
//!   [`Dataset`],
//! * [`datagen`] — workload generators (uniform / Gaussian / clustered boxes,
//!   synthetic neuron morphologies),
//! * [`index`] — indexing substrates (STR packing, packed R-tree, uniform and
//!   hierarchical grids),
//! * [`core`] — the TOUCH algorithm itself ([`TouchJoin`]) and the join interface
//!   ([`SpatialJoinAlgorithm`], [`ResultSink`], [`distance_join`]),
//! * [`parallel`] — the multi-threaded execution subsystem ([`ParallelTouchJoin`]),
//!   deterministically equivalent to [`TouchJoin`] at every thread count,
//! * [`streaming`] — the batched/streaming engine ([`StreamingTouchJoin`]): one
//!   persistent tree over A serving epoch after epoch of B, any epoch split exactly
//!   reproducing the one-shot join,
//! * [`baselines`] — the competitor algorithms of the paper's evaluation,
//! * [`metrics`] — counters, timers and [`RunReport`]s.
//!
//! ## Quickstart
//!
//! ```
//! use touch::{distance_join, Dataset, Aabb, Point3, ResultSink, TouchJoin};
//!
//! // Dataset A: a row of unit boxes. Dataset B: the same row, shifted by 1.5 units.
//! let a: Dataset = (0..100)
//!     .map(|i| {
//!         let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
//!         Aabb::new(min, min + Point3::splat(1.0))
//!     })
//!     .collect();
//! let b: Dataset = (0..100)
//!     .map(|i| {
//!         let min = Point3::new(i as f64 * 3.0 + 1.5, 0.0, 0.0);
//!         Aabb::new(min, min + Point3::splat(1.0))
//!     })
//!     .collect();
//!
//! // Find every pair within distance 1.0 of each other.
//! let mut sink = ResultSink::collecting();
//! let report = distance_join(&TouchJoin::default(), &a, &b, 1.0, &mut sink);
//!
//! assert_eq!(report.result_pairs() as usize, sink.pairs().len());
//! assert!(report.counters.comparisons < (a.len() * b.len()) as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use touch_baselines as baselines;
pub use touch_core as core;
pub use touch_datagen as datagen;
pub use touch_geom as geom;
pub use touch_index as index;
pub use touch_metrics as metrics;
pub use touch_parallel as parallel;
pub use touch_streaming as streaming;

// The most common types, re-exported at the top level for convenience.
pub use touch_baselines::{
    IndexedNestedLoopJoin, NestedLoopJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin, S3Join,
};
pub use touch_core::{
    collect_join, count_join, distance_join, JoinOrder, LocalJoinParams, LocalJoinStrategy,
    ResultSink, ShardedSink, SinkShard, SpatialJoinAlgorithm, TouchConfig, TouchJoin, TouchTree,
};
pub use touch_datagen::{NeuroscienceSpec, SyntheticDistribution, SyntheticSpec};
pub use touch_geom::{Aabb, Cylinder, Dataset, ObjectId, Point3, SpatialObject};
pub use touch_metrics::{Counters, Phase, RunReport};
pub use touch_parallel::{ParallelConfig, ParallelTouchJoin};
pub use touch_streaming::{EpochReport, EpochSummary, StreamingConfig, StreamingTouchJoin};

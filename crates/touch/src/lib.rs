//! # touch — in-memory spatial joins by hierarchical data-oriented partitioning
//!
//! This is the facade crate of the TOUCH workspace: it re-exports the complete public
//! API so that applications depend on a single crate.
//!
//! * [`geom`] — geometry kernel: [`Aabb`] (MBRs), [`Point3`], [`Cylinder`],
//!   [`Dataset`],
//! * [`datagen`] — workload generators (uniform / Gaussian / clustered boxes,
//!   synthetic neuron morphologies),
//! * [`index`] — indexing substrates (STR packing, packed R-tree, uniform and
//!   hierarchical grids),
//! * [`core`] — the TOUCH algorithm ([`TouchJoin`]) and the unified query API:
//!   the [`JoinQuery`] builder, the [`Predicate`] enum and the [`PairSink`]
//!   result-consumer trait with its standard implementations ([`CountingSink`],
//!   [`CollectingSink`], [`CallbackSink`], [`FirstKSink`]) — plus the planning
//!   layer: [`DatasetStats`], the [`JoinPlanner`] cost model and the
//!   [`JoinPlan`] every engine executes,
//! * [`parallel`] — the multi-threaded execution subsystem ([`ParallelTouchJoin`]),
//!   deterministically equivalent to [`TouchJoin`] at every thread count,
//! * [`streaming`] — the batched/streaming engine ([`StreamingTouchJoin`]): one
//!   persistent tree over A serving epoch after epoch of B, any epoch split exactly
//!   reproducing the one-shot join — including sliding-window epochs that *evict*
//!   the oldest batches instead of resetting,
//! * [`serve`] — the concurrent serving layer ([`JoinServer`]): a mutable A-side
//!   behind lock-free generation snapshots, queried by any number of
//!   [`SnapshotReader`] threads while the writer buffers mutations and publishes
//!   the next generation atomically,
//! * [`sim`] — the tick-loop simulation layer ([`TickEngine`]): a moving-object
//!   [`World`] re-joined with itself (a planned ε self-join) every tick, with
//!   plan, tree memory and scratch reused across ticks — optionally republished
//!   through the serving layer each tick ([`ServeTickLoop`]),
//! * [`baselines`] — the competitor algorithms of the paper's evaluation,
//! * [`metrics`] — counters, timers and [`RunReport`]s.
//!
//! On top of the re-exports the facade defines [`Engine`] and [`Baseline`] — the
//! closed selector enums that let one [`JoinQuery`] dispatch over every engine and
//! baseline in the workspace — and [`AutoEngine`], the workspace-wide automatic
//! planner behind [`Engine::Auto`] (the default): statistics in, plan out,
//! dispatched to whichever engine the plan's strategy names.
//!
//! ## Quickstart
//!
//! Every join — any engine, any predicate, any result consumer — goes through the
//! [`JoinQuery`] builder:
//!
//! ```
//! use touch::{Aabb, CollectingSink, Dataset, JoinQuery, Point3, Predicate};
//!
//! // Dataset A: a row of unit boxes. Dataset B: the same row, shifted by 1.5 units.
//! let a: Dataset = (0..100)
//!     .map(|i| {
//!         let min = Point3::new(i as f64 * 3.0, 0.0, 0.0);
//!         Aabb::new(min, min + Point3::splat(1.0))
//!     })
//!     .collect();
//! let b: Dataset = (0..100)
//!     .map(|i| {
//!         let min = Point3::new(i as f64 * 3.0 + 1.5, 0.0, 0.0);
//!         Aabb::new(min, min + Point3::splat(1.0))
//!     })
//!     .collect();
//!
//! // Find every pair within distance 1.0 of each other. No engine is named, so
//! // the query plans automatically: dataset statistics are collected, every
//! // TOUCH knob is derived from them, and the plan is recorded on the report.
//! let mut sink = CollectingSink::new();
//! let report = JoinQuery::new(&a, &b)
//!     .predicate(Predicate::WithinDistance(1.0))
//!     .run(&mut sink);
//!
//! assert_eq!(report.result_pairs() as usize, sink.pairs().len());
//! assert!(report.counters.comparisons < (a.len() * b.len()) as u64);
//! ```
//!
//! Swap the engine without touching the rest of the query:
//!
//! ```
//! use touch::{Baseline, CountingSink, Engine, JoinQuery, ParallelConfig};
//! # use touch::{Aabb, Dataset, Point3};
//! # let a: Dataset = (0..60).map(|i| {
//! #     let min = Point3::new(i as f64 * 2.0, 0.0, 0.0);
//! #     Aabb::new(min, min + Point3::splat(1.0))
//! # }).collect();
//! # let b = a.clone();
//! let mut touch = CountingSink::new();
//! let mut rtree = CountingSink::new();
//! let t = JoinQuery::new(&a, &b).engine(Engine::touch()).run(&mut touch);
//! let r = JoinQuery::new(&a, &b).engine(Engine::Baseline(Baseline::RTree)).run(&mut rtree);
//! assert_eq!(touch.count(), rtree.count());
//! assert_eq!(t.result_pairs(), r.result_pairs());
//! ```
//!
//! And swap the result consumer without touching the engine — e.g. stream pairs
//! into a callback with zero materialisation, or stop after the first match:
//!
//! ```
//! use touch::{CallbackSink, FirstKSink, JoinQuery};
//! # use touch::{Aabb, Dataset, Point3};
//! # let a: Dataset = (0..60).map(|i| {
//! #     let min = Point3::new(i as f64 * 2.0, 0.0, 0.0);
//! #     Aabb::new(min, min + Point3::splat(1.0))
//! # }).collect();
//! # let b = a.clone();
//! let mut streamed = 0u64;
//! let mut callback = CallbackSink::new(|_a_id, _b_id| streamed += 1);
//! let _ = JoinQuery::new(&a, &b).run(&mut callback);
//!
//! let mut exists = FirstKSink::new(1); // stops the engine after one pair
//! let report = JoinQuery::new(&a, &b).run(&mut exists);
//! assert_eq!(exists.count(), 1);
//! assert!(report.counters.comparisons < (a.len() * b.len()) as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;

pub use engine::{AutoEngine, Baseline, Engine};

pub use touch_baselines as baselines;
pub use touch_core as core;
pub use touch_datagen as datagen;
pub use touch_geom as geom;
pub use touch_index as index;
pub use touch_metrics as metrics;
pub use touch_parallel as parallel;
pub use touch_serve as serve;
pub use touch_sim as sim;
pub use touch_streaming as streaming;

// The most common types, re-exported at the top level for convenience.
pub use touch_baselines::{
    IndexedNestedLoopJoin, NestedLoopJoin, OctreeJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin,
    S3Join, SeededTreeJoin,
};
pub use touch_core::{
    collect_join, count_join, distance_join, AdaptiveParams, AssignmentBuffer, AutoJoin,
    CallbackSink, CancelCause, CancelToken, CollectingSink, CountingSink, DatasetStats,
    ExecControl, ExecutionStrategy, FirstKSink, IntoEngine, JoinError, JoinOrder, JoinPlan,
    JoinPlanner, JoinQuery, LocalJoinParams, LocalJoinScratch, LocalJoinStrategy, PairSink,
    PlanEnv, Predicate, ScratchPool, ShardedSink, SinkShard, SpatialJoinAlgorithm, TouchConfig,
    TouchJoin, TouchTree,
};
pub use touch_datagen::{
    MovingObjectsSpec, NeuroscienceSpec, SyntheticDistribution, SyntheticSpec, VelocityDistribution,
};
pub use touch_geom::{
    Aabb, Cylinder, Dataset, InvalidGeometry, ObjectId, Point3, SpatialObject, ValidationPolicy,
};
pub use touch_metrics::{
    Completion, Counters, ExecTrace, FaultAction, FaultPlan, Histogram, NoTrace, Phase,
    PlanSummary, RunReport, Seam, TickSummary, TraceEvent, TraceSink, TraceSummary, WorkerStats,
};
pub use touch_parallel::{ParallelConfig, ParallelTouchJoin, ReaderPool};
pub use touch_serve::{
    BoundedSink, GenCell, Generation, JoinServer, OverflowPolicy, ServeConfig, SnapshotReader,
};
pub use touch_sim::{ServeTickLoop, TickConfig, TickEngine, TickRecord, TickReport, World};
pub use touch_streaming::{
    EpochReport, EpochSummary, OneShotStreaming, StreamingConfig, StreamingTouchJoin,
};

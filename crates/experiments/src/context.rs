//! Experiment context: scale factor, seeds, output directory.

use std::path::PathBuf;

/// Shared configuration of an experiment run.
#[derive(Debug, Clone)]
pub struct Context {
    /// Fraction of the paper's dataset cardinalities to generate (1.0 = paper scale).
    pub scale: f64,
    /// Seed for dataset A generators.
    pub seed_a: u64,
    /// Seed for dataset B generators.
    pub seed_b: u64,
    /// Directory CSV results are written to (`None` = don't write files).
    pub output_dir: Option<PathBuf>,
    /// Print tables to stdout while running.
    pub verbose: bool,
    /// Path an execution trace (Chrome `trace_events` JSON) is written to, for
    /// binaries that support tracing (`None` = don't trace).
    pub trace: Option<PathBuf>,
}

impl Context {
    /// The default scale: 1 % of the paper's cardinalities, which keeps the full
    /// `run_all` sweep in the minutes range on a laptop while preserving selectivity
    /// and algorithm orderings.
    pub const DEFAULT_SCALE: f64 = 0.01;

    /// A context with the default scale and no file output.
    pub fn new(scale: f64) -> Self {
        Context {
            scale,
            seed_a: 20130622,
            seed_b: 20130627,
            output_dir: None,
            verbose: false,
            trace: None,
        }
    }

    /// A quiet, tiny-scale context used by unit tests.
    pub fn for_tests() -> Self {
        Context::new(0.0008)
    }

    /// Sets the output directory for CSV files.
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Enables progress printing.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Scales one of the paper's dataset cardinalities, never dropping below 64
    /// objects so that even extreme scales exercise real joins.
    pub fn scaled_count(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(64)
    }

    /// Parses a context from command-line arguments of the experiment binaries:
    /// `--scale <f>`, `--out <dir>`, `--quiet`, `--seed-a <n>`, `--seed-b <n>`,
    /// `--trace <path>`.
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut ctx = Context::new(Self::DEFAULT_SCALE).with_verbose(true);
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            let take_value = |i: usize| -> Result<&String, String> {
                args.get(i + 1).ok_or_else(|| format!("missing value after {}", args[i]))
            };
            match args[i].as_str() {
                "--scale" => {
                    ctx.scale =
                        take_value(i)?.parse().map_err(|e| format!("invalid --scale: {e}"))?;
                    i += 2;
                }
                "--out" => {
                    ctx.output_dir = Some(PathBuf::from(take_value(i)?));
                    i += 2;
                }
                "--seed-a" => {
                    ctx.seed_a =
                        take_value(i)?.parse().map_err(|e| format!("invalid --seed-a: {e}"))?;
                    i += 2;
                }
                "--seed-b" => {
                    ctx.seed_b =
                        take_value(i)?.parse().map_err(|e| format!("invalid --seed-b: {e}"))?;
                    i += 2;
                }
                "--trace" => {
                    ctx.trace = Some(PathBuf::from(take_value(i)?));
                    i += 2;
                }
                "--quiet" => {
                    ctx.verbose = false;
                    i += 1;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        if !(ctx.scale > 0.0 && ctx.scale <= 1.0) {
            return Err(format!("--scale must be in (0, 1], got {}", ctx.scale));
        }
        Ok(ctx)
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new(Self::DEFAULT_SCALE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_count_has_a_floor() {
        let ctx = Context::new(0.01);
        assert_eq!(ctx.scaled_count(1_600_000), 16_000);
        assert_eq!(ctx.scaled_count(100), 64);
    }

    #[test]
    fn parses_arguments() {
        let ctx = Context::from_args(
            [
                "--scale",
                "0.05",
                "--out",
                "/tmp/results",
                "--quiet",
                "--seed-a",
                "7",
                "--trace",
                "/tmp/trace.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(ctx.scale, 0.05);
        assert_eq!(ctx.output_dir, Some(PathBuf::from("/tmp/results")));
        assert!(!ctx.verbose);
        assert_eq!(ctx.seed_a, 7);
        assert_eq!(ctx.trace, Some(PathBuf::from("/tmp/trace.json")));
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(Context::from_args(["--scale"].iter().map(|s| s.to_string())).is_err());
        assert!(Context::from_args(["--scale", "2.0"].iter().map(|s| s.to_string())).is_err());
        assert!(Context::from_args(["--bogus"].iter().map(|s| s.to_string())).is_err());
    }
}

//! Figure 12 — impact of the distance threshold ε.
//!
//! Two 1.6 M-object datasets of each distribution are joined with ε = 5 and ε = 10.
//! The paper's finding: for most approaches doubling ε roughly doubles execution
//! time; the PBSM configurations degrade super-linearly because a larger ε causes
//! more replication.

use crate::{scaled_large_suite, workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery};
use touch_datagen::SyntheticDistribution;

const PAPER_N: usize = 1_600_000;
const EPSILONS: [f64; 2] = [5.0, 10.0];

/// Runs the ε sweep over all three distributions and the large-scale suite.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "figure12_epsilon",
        "Figure 12: execution time for eps = 5 and eps = 10 on all distributions",
    );
    let suite = scaled_large_suite(ctx.scale);

    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = workload::synthetic(ctx, PAPER_N, dist, ctx.seed_a);
        let b = workload::synthetic(ctx, PAPER_N, dist, ctx.seed_b);
        for eps in EPSILONS {
            for algo in &suite {
                let report = JoinQuery::new(&a, &b)
                    .within_distance(eps)
                    .engine(algo.as_ref())
                    .run(&mut CountingSink::new());
                table.push(Row::new(
                    vec![("distribution", dist.name().to_string()), ("eps", format!("{eps}"))],
                    report,
                ));
            }
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_epsilon_increases_work_for_every_algorithm() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 3 * 2 * 6);
        // Per distribution, compare each algorithm's eps=5 row with its eps=10 row.
        for dist_chunk in table.rows.chunks(12) {
            let (eps5, eps10) = dist_chunk.split_at(6);
            for (lo, hi) in eps5.iter().zip(hi_rows(eps10)) {
                assert_eq!(lo.report.algorithm, hi.report.algorithm);
                assert!(
                    hi.report.result_pairs() >= lo.report.result_pairs(),
                    "{}: eps=10 must find at least as many pairs",
                    lo.report.algorithm
                );
                assert!(
                    hi.report.counters.comparisons >= lo.report.counters.comparisons,
                    "{}: eps=10 must not reduce comparisons",
                    lo.report.algorithm
                );
            }
        }
    }

    fn hi_rows(rows: &[crate::Row]) -> impl Iterator<Item = &crate::Row> {
        rows.iter()
    }
}

//! Figure 16 — the neuroscience datasets: time, comparisons and memory.
//!
//! Dataset A = 644 K axon cylinders, dataset B = 1.285 M dendrite cylinders, joined
//! with ε = 5 and ε = 10. TOUCH outperforms every other approach in both time and
//! memory; PBSM-500 is the closest in time but needs far more memory; and filtering
//! removes 26.6 % (ε = 5) / 21.2 % (ε = 10) of dataset B because the tissue is dense
//! in the centre and sparse at the periphery.

use crate::{scaled_large_suite, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery};
use touch_datagen::NeuroscienceSpec;

const EPSILONS: [f64; 2] = [5.0, 10.0];

/// Runs the neuroscience comparison for both ε values.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "figure16_neuroscience",
        "Figure 16: neuroscience datasets, eps = 5 and 10 (time / comparisons / memory)",
    );
    let data = NeuroscienceSpec::scaled(ctx.scale).generate(ctx.seed_a);
    let suite = scaled_large_suite(ctx.scale);

    for eps in EPSILONS {
        for algo in &suite {
            let report = JoinQuery::new(&data.axons, &data.dendrites)
                .within_distance(eps)
                .engine(algo.as_ref())
                .run(&mut CountingSink::new());
            let filtered_pct =
                100.0 * report.counters.filtered as f64 / data.dendrites.len() as f64;
            table.push(Row::new(
                vec![("eps", format!("{eps}")), ("filtered_pct", format!("{filtered_pct:.2}"))],
                report,
            ));
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithms_agree_and_touch_filters_a_substantial_share() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 2 * 6);
        for chunk in table.rows.chunks(6) {
            let expected = chunk[0].report.result_pairs();
            for row in chunk {
                assert_eq!(row.report.result_pairs(), expected, "{}", row.report.algorithm);
            }
            let touch = chunk.iter().find(|r| r.report.algorithm == "TOUCH").unwrap();
            let pbsm = chunk.iter().find(|r| r.report.algorithm == "PBSM-500").unwrap();
            assert!(touch.report.memory_bytes < pbsm.report.memory_bytes);
            // The synthetic tissue has a sparse periphery, so TOUCH must filter a
            // visible share of the dendrites (the paper reports 21-27 %).
            let filtered_pct: f64 = touch
                .labels
                .iter()
                .find(|(k, _)| k == "filtered_pct")
                .map(|(_, v)| v.parse().unwrap())
                .unwrap_or(0.0);
            let _ = filtered_pct; // value inspected below per-eps
            assert!(touch.report.counters.filtered > 0, "TOUCH must filter some dendrites");
        }
    }
}

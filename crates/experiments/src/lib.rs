//! # touch-experiments — regenerating the TOUCH (SIGMOD 2013) evaluation
//!
//! One module (and one binary under `src/bin/`) per table / figure of the paper's
//! Section 6, plus an ablation study of TOUCH's own design knobs:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — join selectivity of the datasets |
//! | [`loading`] | §6.3 — data loading vs. join time |
//! | [`figure8`] | Figure 8 — small uniform datasets, all 8 algorithms |
//! | [`figure9_11`] | Figures 9/10/11 — large uniform/Gaussian/clustered datasets |
//! | [`figure12`] | Figure 12 — impact of the distance threshold ε |
//! | [`figure13`] | Figure 13 — TOUCH filtering capability |
//! | [`figure14`] | Figure 14 — impact of the TOUCH fanout |
//! | [`figure15`] | Figure 15 — neuroscience density scaling |
//! | [`figure16`] | Figure 16 — neuroscience datasets, time / comparisons / memory |
//! | [`ablation`] | beyond the paper: TOUCH local-join strategy and join order |
//! | [`planner`] | beyond the paper: automatic planning (`Engine::Auto`) vs fixed configurations |
//! | [`scaling`] | beyond the paper: `touch-parallel` thread scaling at 1/2/4/8 threads |
//! | [`streaming`] | beyond the paper: `touch-streaming` epoch amortisation vs. per-batch rebuild |
//! | [`tick`] | beyond the paper: `touch-sim` tick-loop simulation, kernel vs. serve integration |
//!
//! ## Scaling
//!
//! The paper's largest runs (1.6 M × 9.6 M objects, ε = 5, on a 64 GB server) take
//! hours per algorithm. Every experiment here therefore takes a *scale factor*
//! (default [`Context::DEFAULT_SCALE`]) and scales the workload at **constant
//! density** (see [`workload`]): cardinalities shrink by the factor, spatial extents
//! by its cube root, while object sizes and ε keep the paper's absolute values. This
//! preserves per-object neighbourhood structure — selectivity, filtering rates, grid
//! occupancy — and therefore the relative behaviour of the algorithms (who wins, by
//! roughly what factor, where the crossovers are). The grid resolutions of PBSM and
//! of TOUCH's local join are scaled with the cube root of the factor so the absolute
//! cell size stays at the paper's value. Running with `--scale 1.0` reproduces the
//! paper's exact workload.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
mod context;
pub mod figure12;
pub mod figure13;
pub mod figure14;
pub mod figure15;
pub mod figure16;
pub mod figure8;
pub mod figure9_11;
pub mod loading;
pub mod planner;
pub mod scaling;
pub mod streaming;
mod suite;
mod table;
pub mod table1;
pub mod tick;
pub mod workload;

pub use context::Context;
pub use suite::{scaled_large_suite, scaled_resolution, scaled_small_suite};
pub use table::{ExperimentTable, Row};

/// Runs every experiment at the context's scale and returns the resulting tables in
/// paper order. This is what the `run_all` binary executes.
pub fn run_all(ctx: &Context) -> Vec<ExperimentTable> {
    vec![
        table1::run(ctx),
        loading::run(ctx),
        figure8::run(ctx),
        figure9_11::run(ctx, touch_datagen::SyntheticDistribution::Uniform),
        figure9_11::run(ctx, touch_datagen::SyntheticDistribution::paper_gaussian()),
        figure9_11::run(ctx, touch_datagen::SyntheticDistribution::paper_clustered()),
        figure12::run(ctx),
        figure13::run(ctx),
        figure14::run(ctx),
        figure15::run(ctx),
        figure16::run(ctx),
        ablation::run(ctx),
        planner::run(ctx),
        scaling::run(ctx),
        streaming::run(ctx),
        tick::run(ctx),
    ]
}

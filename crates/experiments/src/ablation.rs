//! Ablation study of TOUCH's design choices (beyond the paper's parameter
//! discussion in Section 5.2).
//!
//! Three knobs are isolated on a fixed uniform workload (A = 1.6 M, B = 3.2 M,
//! ε = 5):
//!
//! * the **local-join strategy** — the paper's per-node grid vs. a plane-sweep vs.
//!   the naive all-pairs scan,
//! * the **join order** — building the hierarchy on the smaller dataset (the paper's
//!   recommendation) vs. forcing it onto either input,
//! * the **number of partitions** (leaf buckets) the hierarchy is built from.

use crate::{workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinOrder, JoinQuery, LocalJoinStrategy, TouchConfig, TouchJoin};
use touch_datagen::SyntheticDistribution;

const PAPER_A: usize = 1_600_000;
const PAPER_B: usize = 3_200_000;
const EPS: f64 = 5.0;

/// Runs the ablation sweep.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "ablation_touch",
        "Ablation: TOUCH local-join strategy, join order and partition count (uniform, eps = 5)",
    );
    let a = workload::synthetic(ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
    let b = workload::synthetic(ctx, PAPER_B, SyntheticDistribution::Uniform, ctx.seed_b);

    let mut run_config = |label: (&str, String), config: TouchConfig| {
        let algo = TouchJoin::new(config);
        let report =
            JoinQuery::new(&a, &b).within_distance(EPS).engine(&algo).run(&mut CountingSink::new());
        table.push(Row::new(vec![("knob", label.0.to_string()), ("value", label.1)], report));
    };

    // Local-join strategy.
    for strategy in
        [LocalJoinStrategy::Grid, LocalJoinStrategy::PlaneSweep, LocalJoinStrategy::AllPairs]
    {
        run_config(
            ("local_join", strategy.name().to_string()),
            TouchConfig { local_join: strategy, ..TouchConfig::default() },
        );
    }

    // Join order.
    for (name, order) in [
        ("smaller-as-tree", JoinOrder::SmallerAsTree),
        ("tree-on-A", JoinOrder::TreeOnA),
        ("tree-on-B", JoinOrder::TreeOnB),
    ] {
        run_config(
            ("join_order", name.to_string()),
            TouchConfig { join_order: order, ..TouchConfig::default() },
        );
    }

    // Partition count.
    for partitions in [256, 1024, 4096] {
        run_config(
            ("partitions", partitions.to_string()),
            TouchConfig { partitions, ..TouchConfig::default() },
        );
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_produces_identical_results() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 3 + 3 + 3);
        let expected = table.rows[0].report.result_pairs();
        assert!(expected > 0);
        for row in &table.rows {
            assert_eq!(
                row.report.result_pairs(),
                expected,
                "variant {:?} changed the result",
                row.labels
            );
        }
    }

    #[test]
    fn grid_local_join_needs_no_more_comparisons_than_all_pairs() {
        let table = run(&Context::for_tests());
        let grid = &table.rows[0];
        let all_pairs = &table.rows[2];
        assert_eq!(grid.labels[1].1, "grid");
        assert_eq!(all_pairs.labels[1].1, "all-pairs");
        assert!(
            grid.report.counters.comparisons <= all_pairs.report.counters.comparisons,
            "grid {} vs all-pairs {}",
            grid.report.counters.comparisons,
            all_pairs.report.counters.comparisons
        );
    }
}

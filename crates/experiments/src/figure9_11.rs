//! Figures 9, 10 and 11 — large synthetic datasets (uniform, Gaussian, clustered).
//!
//! Dataset A is fixed at 1.6 M objects, dataset B grows from 1.6 M to 9.6 M in steps
//! of 1.6 M, ε = 5. The six large-scale algorithms (TOUCH, PBSM-500, PBSM-100, S3,
//! INL, RTree) are measured on comparisons (chart a), execution time (chart b) and
//! memory (chart c). The paper's findings: TOUCH is about an order of magnitude
//! faster than PBSM-500, which in turn is an order of magnitude faster than the rest
//! but needs roughly two orders of magnitude more memory.

use crate::{scaled_large_suite, workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery};
use touch_datagen::SyntheticDistribution;

const PAPER_A: usize = 1_600_000;
/// The paper sweeps B from 1.6 M to 9.6 M in six steps.
pub const PAPER_B_STEPS: [usize; 6] =
    [1_600_000, 3_200_000, 4_800_000, 6_400_000, 8_000_000, 9_600_000];
const EPS: f64 = 5.0;

/// Runs one of the three figures, selected by the dataset distribution
/// (uniform → Figure 9, Gaussian → Figure 10, clustered → Figure 11).
pub fn run(ctx: &Context, dist: SyntheticDistribution) -> ExperimentTable {
    let figure = match dist {
        SyntheticDistribution::Uniform => "figure9",
        SyntheticDistribution::Gaussian { .. } => "figure10",
        SyntheticDistribution::Clustered { .. } => "figure11",
    };
    let mut table = ExperimentTable::new(
        format!("{figure}_{}", dist.name()),
        format!(
            "Figures 9-11: large {} datasets, increasing |B|, eps = 5 (comparisons / time / memory)",
            dist.name()
        ),
    );
    let a = workload::synthetic(ctx, PAPER_A, dist, ctx.seed_a);
    let suite = scaled_large_suite(ctx.scale);

    for paper_b in PAPER_B_STEPS {
        let b = workload::synthetic(ctx, paper_b, dist, ctx.seed_b);
        for algo in &suite {
            let report = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(algo.as_ref())
                .run(&mut CountingSink::new());
            table.push(Row::new(
                vec![
                    ("distribution", dist.name().to_string()),
                    ("b_objects", format!("{}", b.len())),
                ],
                report,
            ));
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(dist: SyntheticDistribution) -> ExperimentTable {
        // Keep the unit test fast: only exercise the first |B| step by using a very
        // small scale through Context::for_tests(), then slice the table.
        run(&Context::for_tests(), dist)
    }

    #[test]
    fn algorithms_agree_and_touch_uses_less_memory_than_pbsm500() {
        let table = small_run(SyntheticDistribution::Uniform);
        assert_eq!(table.rows.len(), PAPER_B_STEPS.len() * 6);
        for chunk in table.rows.chunks(6) {
            let expected = chunk[0].report.result_pairs();
            for row in chunk {
                assert_eq!(row.report.result_pairs(), expected, "{}", row.report.algorithm);
            }
            let pbsm500 = chunk.iter().find(|r| r.report.algorithm == "PBSM-500").unwrap();
            let touch = chunk.iter().find(|r| r.report.algorithm == "TOUCH").unwrap();
            assert!(
                touch.report.memory_bytes < pbsm500.report.memory_bytes,
                "TOUCH must use less memory than PBSM-500"
            );
        }
    }

    #[test]
    fn clustered_runs_keep_the_algorithms_in_agreement() {
        let table = small_run(SyntheticDistribution::paper_clustered());
        assert_eq!(table.rows.len(), PAPER_B_STEPS.len() * 6);
        for chunk in table.rows.chunks(6) {
            let expected = chunk[0].report.result_pairs();
            assert!(expected > 0, "clustered data is dense enough to produce results");
            for row in chunk {
                assert_eq!(row.report.result_pairs(), expected, "{}", row.report.algorithm);
            }
        }
    }
}

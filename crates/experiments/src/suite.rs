//! Algorithm suites with resolutions scaled to the experiment's workload size.

use touch_baselines::{
    IndexedNestedLoopJoin, NestedLoopJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin, S3Join,
};
use touch_core::{SpatialJoinAlgorithm, TouchJoin};

/// Scales one of the paper's grid resolutions (cells per dimension) to a workload
/// that is `scale ×` the paper's cardinality.
///
/// Object density per unit volume scales linearly with the cardinality (the space is
/// kept fixed), so keeping the *objects per grid cell* constant — the quantity that
/// drives PBSM's and the local join's behaviour — means scaling the number of cells
/// per dimension with the cube root of the scale factor.
pub fn scaled_resolution(paper_cells_per_dim: usize, scale: f64) -> usize {
    ((paper_cells_per_dim as f64 * scale.cbrt()).round() as usize).max(4)
}

/// PBSM-500 and PBSM-100 with resolutions scaled for `scale`, keeping the paper's
/// labels so the output tables read like the paper's figures.
fn scaled_pbsms(scale: f64) -> (PbsmJoin, PbsmJoin) {
    (
        PbsmJoin::with_label(scaled_resolution(500, scale), "PBSM-500"),
        PbsmJoin::with_label(scaled_resolution(100, scale), "PBSM-100"),
    )
}

/// TOUCH with its local-join grid resolution scaled for `scale`.
fn scaled_touch(scale: f64) -> TouchJoin {
    TouchJoin::new(touch_core::TouchConfig {
        local_cells_per_dim: scaled_resolution(500, scale),
        ..Default::default()
    })
}

/// The paper's full suite (Figure 8): NL, PS, PBSM-500, PBSM-100, S3, INL, RTree and
/// TOUCH, with grid resolutions scaled for `scale`.
pub fn scaled_small_suite(scale: f64) -> Vec<Box<dyn SpatialJoinAlgorithm>> {
    let (pbsm500, pbsm100) = scaled_pbsms(scale);
    vec![
        Box::new(NestedLoopJoin::new()),
        Box::new(PlaneSweepJoin::new()),
        Box::new(pbsm500),
        Box::new(pbsm100),
        Box::new(S3Join::paper_default()),
        Box::new(IndexedNestedLoopJoin::paper_default()),
        Box::new(RTreeSyncJoin::paper_default()),
        Box::new(scaled_touch(scale)),
    ]
}

/// The paper's large-dataset suite (Figures 9–12, 15, 16): as above but without the
/// quadratic NL and PS.
pub fn scaled_large_suite(scale: f64) -> Vec<Box<dyn SpatialJoinAlgorithm>> {
    let (pbsm500, pbsm100) = scaled_pbsms(scale);
    vec![
        Box::new(pbsm500),
        Box::new(pbsm100),
        Box::new(S3Join::paper_default()),
        Box::new(IndexedNestedLoopJoin::paper_default()),
        Box::new(RTreeSyncJoin::paper_default()),
        Box::new(scaled_touch(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_scaling_preserves_objects_per_cell() {
        assert_eq!(scaled_resolution(500, 1.0), 500);
        assert_eq!(scaled_resolution(100, 1.0), 100);
        // At 1 % of the objects, ~21.5 % of the cells per dimension keeps objects
        // per cell constant (0.01^(1/3) ≈ 0.215).
        assert_eq!(scaled_resolution(500, 0.01), 108);
        // Never degenerate.
        assert_eq!(scaled_resolution(100, 1e-9), 4);
    }

    #[test]
    fn suites_have_paper_names() {
        let small: Vec<String> = scaled_small_suite(0.01).iter().map(|a| a.name()).collect();
        assert_eq!(
            small,
            vec!["NL", "PS", "PBSM-500", "PBSM-100", "S3", "Indexed NL", "RTree", "TOUCH"]
        );
        let large: Vec<String> = scaled_large_suite(0.01).iter().map(|a| a.name()).collect();
        assert_eq!(large.len(), 6);
        assert!(!large.contains(&"NL".to_string()));
    }
}

//! Tick-loop simulation — beyond the paper: the motivating application closed
//! into a loop.
//!
//! The paper motivates TOUCH with a simulation that re-runs the join every
//! step (Section 1). This experiment measures exactly that regime with
//! `touch-sim`: a moving-object world re-joined with itself (planned ε
//! self-join) every tick, comparing three integration styles on the same
//! world and seed —
//!
//! * **kernel / sequential** — [`TickEngine`] pinned to one thread,
//! * **kernel / parallel** — [`TickEngine`] with auto-detected workers,
//! * **serve** — [`ServeTickLoop`], republishing the world through the
//!   concurrent serving layer every tick.
//!
//! Expectations: all three rows report the **same total pair count** (the
//! simulation determinism contract — any divergence would compound tick over
//! tick); the parallel row sustains the highest ticks/sec once the world is
//! large enough to amortise fork/join; the serve row pays the serving layer's
//! publish/snapshot overhead for its concurrency guarantees.

use crate::{Context, ExperimentTable, Row};
use touch::{ServeTickLoop, TickConfig, TickEngine, World};
use touch_metrics::{RunReport, TickSummary};

/// Entity count of the unscaled run (the ISSUE's lower target; scale beyond
/// 1.0 for the multi-million-entity regime).
pub const PAPER_ENTITIES: usize = 100_000;
/// Ticks per row: enough for the latency histogram to have a tail.
pub const TICKS: usize = 25;
/// Collision distance (space units in the default 1000³ world).
pub const EPS: f64 = 5.0;

/// Runs the three integration styles over the identical world and seed.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "tick_loop",
        "Tick loop (beyond the paper): moving-object self-join, kernel vs. serve",
    );
    let entities = ctx.scaled_count(PAPER_ENTITIES).max(50);

    let kernel = |threads: usize| -> TickSummary {
        let config = TickConfig::default().with_epsilon(EPS).with_threads(threads).counting_only();
        let mut engine = TickEngine::new(World::random(entities, ctx.seed_a), config);
        engine.run(TICKS);
        engine.summary().clone()
    };

    let mut rows: Vec<(&str, TickSummary)> =
        vec![("kernel/seq", kernel(1)), ("kernel/par", kernel(0))];
    let mut serve = ServeTickLoop::new(
        World::random(entities, ctx.seed_a),
        TickConfig::default().with_epsilon(EPS),
    );
    serve.run(TICKS);
    rows.push(("serve", serve.summary().clone()));

    for (mode, summary) in rows.drain(..) {
        let mut report = RunReport::new(format!("tick:{mode}"), entities, entities);
        report.epsilon = EPS;
        report.counters.results = summary.pairs;
        let labels = vec![
            ("mode", mode.to_string()),
            ("ticks_per_sec", format!("{:.1}", summary.ticks_per_sec())),
            ("p50_us", format!("{}", summary.p50_us())),
            ("p99_us", format!("{}", summary.p99_us())),
        ];
        report.ticks = Some(summary);
        table.push(Row::new(labels, report));
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_agree_on_the_pair_total() {
        let table = run(&Context::for_tests());
        let totals: Vec<u64> = table.rows.iter().map(|r| r.report.counters.results).collect();
        assert_eq!(totals.len(), 3);
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "modes diverged: {totals:?}");
        for row in &table.rows {
            let ticks = row.report.ticks.as_ref().expect("tick rows carry a tick summary");
            assert_eq!(ticks.ticks, TICKS);
        }
    }
}

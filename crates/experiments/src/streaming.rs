//! Streaming amortisation — beyond the paper: the `touch-streaming` engine serving
//! dataset B in epochs against a persistent tree.
//!
//! The paper's joins are one-shot: every query pays the tree build. The serving
//! scenario the streaming engine targets inverts that — dataset A is long-lived and
//! B arrives in batches — so the build is paid once and amortised over the stream.
//! This experiment measures exactly that: Figure 8's uniform workload (A = 10 K,
//! B = 160 K scaled, ε = 10) is pushed through one persistent tree in 1 / 4 / 16 /
//! 64 epochs, against the *rebuild* alternative of running the one-shot
//! [`TouchJoin`] on every batch separately.
//!
//! Expectations: the amortised build share per epoch falls as `build / k`; the
//! rebuild alternative pays `k` builds plus `k` partial assignments, so its total
//! grows with the epoch count while the streaming total stays near-flat; result
//! counts are identical in every row (the epoch-equivalence guarantee). Rebuilding
//! also re-sorts A every batch, so the speedup column grows with `k`.

use crate::{workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinOrder, SpatialJoinAlgorithm, TouchConfig, TouchJoin};
use touch_datagen::SyntheticDistribution;
use touch_geom::Dataset;
use touch_metrics::format_duration;
use touch_streaming::{StreamingConfig, StreamingTouchJoin};

const PAPER_A: usize = 10_000;
const PAPER_B: usize = 160_000;
const EPS: f64 = 10.0;
/// Epoch counts the experiment sweeps.
pub const EPOCH_STEPS: [usize; 4] = [1, 4, 16, 64];

/// The shared algorithmic configuration: the tree lives on A (the streaming
/// engine's only mode), with the scaled local-join resolution every other
/// experiment uses.
fn touch_cfg(ctx: &Context) -> TouchConfig {
    TouchConfig {
        join_order: JoinOrder::TreeOnA,
        local_cells_per_dim: crate::scaled_resolution(500, ctx.scale),
        ..TouchConfig::default()
    }
}

/// Runs the amortisation sweep: one persistent tree streaming B in
/// [`EPOCH_STEPS`] epochs, with the per-row amortised build cost and the measured
/// speedup over rebuilding the tree for every batch.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "streaming_epochs",
        "Streaming (beyond the paper): persistent-tree epochs vs. per-batch rebuild",
    );
    let a = workload::synthetic(ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
    let b = workload::synthetic(ctx, PAPER_B, SyntheticDistribution::Uniform, ctx.seed_b);
    // The ε-translation the rebuild baseline applies, done once up front so every
    // per-batch rebuild joins the same extended boxes the streaming engine indexes.
    let a_ext = a.extended(EPS);
    let cfg = touch_cfg(ctx);

    for epochs in EPOCH_STEPS {
        let batch = b.len().div_ceil(epochs).max(1);

        // Streaming: build the ε-extended tree once (`build_extended` stamps the
        // report ε up front), push every batch through the persistent tree.
        // Both sides run sequentially so the speedup column isolates build
        // amortisation — mixing in worker threads would conflate it with the
        // parallel subsystem's scaling (that comparison lives in `scaling`).
        let config = StreamingConfig { touch: cfg, ..StreamingConfig::default() };
        let mut engine = StreamingTouchJoin::build_extended(&a, EPS, config);
        let mut sink = CountingSink::new();
        for chunk in b.objects().chunks(batch) {
            let _ = engine.push_batch(chunk, &mut sink);
        }
        let report = engine.cumulative_report();
        let streaming_total = report.total_time().as_secs_f64();

        // The alternative: a one-shot TouchJoin per batch, rebuilding every time.
        let rebuild_total = rebuild_per_batch(&cfg, &a_ext, &b, batch);

        // `div_ceil` batching can push slightly fewer epochs than the step asked
        // for (e.g. 480 objects / 64 epochs → 60 batches of 8); label the rows
        // with what actually ran.
        let pushed = report.epochs.max(1);
        let amortised_build = engine.build_time().as_secs_f64() / pushed as f64;
        let speedup = rebuild_total / streaming_total.max(f64::EPSILON);
        table.push(Row::new(
            vec![
                ("epochs", format!("{pushed}")),
                (
                    "amortised_build",
                    format_duration(std::time::Duration::from_secs_f64(amortised_build)),
                ),
                ("rebuild_speedup", format!("{speedup:.2}")),
            ],
            report,
        ));
    }

    table
}

/// Total wall-clock of joining every batch with a fresh one-shot [`TouchJoin`]
/// (the tree is rebuilt per batch — what serving without the streaming engine
/// would cost).
fn rebuild_per_batch(cfg: &TouchConfig, a_ext: &Dataset, b: &Dataset, batch: usize) -> f64 {
    let algo = TouchJoin::new(*cfg);
    let mut total = 0.0;
    for chunk in b.objects().chunks(batch) {
        // Re-densify the ids: this baseline is timed, not compared pair-by-pair.
        let chunk_ds = Dataset::from_mbrs(chunk.iter().map(|o| o.mbr));
        let mut sink = CountingSink::new();
        let report = algo.join(a_ext, &chunk_ds, &mut sink);
        total += report.total_time().as_secs_f64();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_agree_on_the_result_count() {
        let ctx = Context::for_tests();
        let table = run(&ctx);
        assert_eq!(table.rows.len(), EPOCH_STEPS.len());
        let expected = table.rows[0].report.result_pairs();
        assert!(expected > 0, "the scaled workload must produce results");
        for (row, epochs) in table.rows.iter().zip(EPOCH_STEPS) {
            assert_eq!(
                row.report.result_pairs(),
                expected,
                "epochs = {epochs}: epoch-splitting changed the result count"
            );
            assert!(
                row.report.epochs >= 1 && row.report.epochs <= epochs,
                "cumulative report must count its pushed epochs"
            );
            assert_eq!(row.labels[0].1, format!("{}", row.report.epochs));
        }
    }

    #[test]
    fn rows_match_the_one_shot_distance_join() {
        let ctx = Context::for_tests();
        let a = workload::synthetic(&ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
        let b = workload::synthetic(&ctx, PAPER_B, SyntheticDistribution::Uniform, ctx.seed_b);
        let mut sink = CountingSink::new();
        let one_shot =
            touch_core::distance_join(&TouchJoin::new(touch_cfg(&ctx)), &a, &b, EPS, &mut sink);
        let table = run(&ctx);
        for row in &table.rows {
            assert_eq!(row.report.result_pairs(), one_shot.result_pairs());
            assert_eq!(row.report.epsilon, EPS);
        }
    }

    #[test]
    fn speedup_labels_are_numeric() {
        let table = run(&Context::for_tests());
        for row in &table.rows {
            assert_eq!(row.labels[1].0, "amortised_build");
            let speedup: f64 = row.labels[2].1.parse().expect("rebuild_speedup is numeric");
            assert!(speedup > 0.0);
        }
    }
}

//! Planner ablation (beyond the paper): automatic planning vs. fixed
//! configurations across the figure workloads.
//!
//! The statistics-driven planner (`touch::Engine::Auto`) claims that per-query
//! derived knobs and strategy selection are at least as good as any single
//! hand-set configuration. This experiment measures that claim on the three
//! synthetic distributions of Figures 9–11 (uniform, Gaussian, clustered) at
//! the paper's density: for each workload it runs
//!
//! * `auto` — `Engine::Auto` (statistics → plan → dispatched engine),
//! * `touch-paper` — the sequential engine in the paper's fixed configuration,
//! * `parallel-4` — the parallel engine at four workers, paper knobs,
//! * `streaming-4ep` — the streaming engine, paper knobs, probe side in four
//!   epochs,
//!
//! and reports counters, times and the plan column (what Auto chose). Every
//! variant must produce the same result count — the planner may only move the
//! *work*, never the answer.

use crate::{workload, Context, ExperimentTable, Row};
use touch::{AutoEngine, CountingSink, Engine, JoinQuery, ParallelConfig};
use touch_core::TouchConfig;
use touch_datagen::SyntheticDistribution;
use touch_streaming::{StreamingConfig, StreamingTouchJoin};

const PAPER_A: usize = 1_600_000;
const PAPER_B: usize = 3_200_000;
const EPS: f64 = 5.0;

/// Runs the planner ablation.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "planner_auto",
        "Planner ablation: Engine::Auto vs fixed configurations (uniform / Gaussian / clustered, eps = 5)",
    );

    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = workload::synthetic(ctx, PAPER_A, dist, ctx.seed_a);
        let b = workload::synthetic(ctx, PAPER_B, dist, ctx.seed_b);
        let mut push = |engine_label: &str, report: touch::RunReport| {
            table.push(Row::new(
                vec![
                    ("distribution", dist.name().to_string()),
                    ("engine", engine_label.to_string()),
                ],
                report,
            ));
        };

        // Auto at a pinned 4-thread budget, so the ablation is reproducible on
        // any machine (Engine::Auto itself would detect the local core count).
        let auto = AutoEngine::with_threads(4);
        push(
            "auto",
            JoinQuery::new(&a, &b).within_distance(EPS).engine(&auto).run(&mut CountingSink::new()),
        );

        push(
            "touch-paper",
            JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(Engine::Touch(TouchConfig::default()))
                .run(&mut CountingSink::new()),
        );

        push(
            "parallel-4",
            JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(Engine::Parallel(ParallelConfig::with_threads(4)))
                .run(&mut CountingSink::new()),
        );

        // Streaming in its natural habitat: the probe side arrives in epochs.
        let mut engine = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
        let mut sink = CountingSink::new();
        let chunk = b.len().div_ceil(4).max(1);
        for batch in b.objects().chunks(chunk) {
            let _ = engine.push_batch(batch, &mut sink);
        }
        push("streaming-4ep", engine.cumulative_report());
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_never_changes_the_answer_and_records_its_plan() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 3 * 4);
        for chunk in table.rows.chunks(4) {
            let auto = &chunk[0];
            assert_eq!(auto.labels[1].1, "auto");
            let expected = auto.report.result_pairs();
            assert!(expected > 0, "the figure workloads produce results");
            for row in chunk {
                assert_eq!(
                    row.report.result_pairs(),
                    expected,
                    "{:?} changed the result",
                    row.labels
                );
            }
            let plan = auto.report.plan.as_ref().expect("auto rows carry their plan");
            assert!(!plan.strategy.is_empty());
            assert!(
                auto.report.algorithm.starts_with("TOUCH-AUTO"),
                "got {}",
                auto.report.algorithm
            );
        }
    }

    #[test]
    fn auto_matches_the_resolved_fixed_engine_exactly() {
        // The ablation's core claim, verified at experiment scale: Auto's
        // counters equal the counters of explicitly executing its plan.
        let ctx = Context::for_tests();
        let a = workload::synthetic(&ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
        let b = workload::synthetic(&ctx, PAPER_B, SyntheticDistribution::Uniform, ctx.seed_b);
        let auto = AutoEngine::with_threads(4);
        let auto_report =
            JoinQuery::new(&a, &b).within_distance(EPS).engine(&auto).run(&mut CountingSink::new());
        let mut query = JoinQuery::new(&a, &b).within_distance(EPS).engine(&auto);
        let plan = query.plan().expect("auto plans");
        let fixed_report = JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(Engine::Planned(plan))
            .run(&mut CountingSink::new());
        assert_eq!(auto_report.counters, fixed_report.counters);
    }
}

//! Thread scaling — beyond the paper: the `touch-parallel` subsystem on a
//! Figure-8-scale uniform workload.
//!
//! The paper evaluates TOUCH single-threaded; this experiment measures how the
//! multi-threaded [`ParallelTouchJoin`] scales. The workload is Figure 8's largest
//! step (A = 10 K, B = 640 K, uniform, ε = 10, scaled like every other experiment),
//! joined once with the sequential [`TouchJoin`] as the baseline and then with
//! 1 / 2 / 4 / 8 worker threads. Every row carries the measured speedup over the
//! sequential baseline; each configuration is run [`REPEATS`] times and the fastest
//! run is kept (standard practice for wall-clock scaling numbers).
//!
//! Expectations: near-linear scaling of the join phase up to the physical core
//! count, throttled overall by the merge/assembly fractions (Amdahl); on a
//! single-core machine all speedups hover around 1×. The result *sets* are
//! identical in every row — the parallel subsystem is deterministically equivalent
//! to the sequential join.

use crate::{workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery, SpatialJoinAlgorithm, TouchJoin};
use touch_datagen::SyntheticDistribution;
use touch_metrics::{ExecTrace, RunReport};
use touch_parallel::ParallelTouchJoin;

const PAPER_A: usize = 10_000;
const PAPER_B: usize = 640_000;
const EPS: f64 = 10.0;
/// Thread counts the experiment sweeps.
pub const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];
/// Runs per configuration; the fastest is reported.
pub const REPEATS: usize = 3;

fn best_of(
    algo: &dyn SpatialJoinAlgorithm,
    a: &touch_geom::Dataset,
    b: &touch_geom::Dataset,
) -> RunReport {
    let mut best: Option<RunReport> = None;
    for _ in 0..REPEATS {
        let report =
            JoinQuery::new(a, b).within_distance(EPS).engine(algo).run(&mut CountingSink::new());
        let improved = match &best {
            None => true,
            Some(current) => report.total_time() < current.total_time(),
        };
        if improved {
            best = Some(report);
        }
    }
    best.expect("REPEATS > 0")
}

/// Runs the thread-scaling sweep: sequential TOUCH, then `touch-parallel` at
/// [`THREAD_STEPS`] threads, with per-row speedup over the sequential baseline.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "scaling_threads",
        "Thread scaling (beyond the paper): parallel TOUCH on Figure 8's largest workload",
    );
    let a = workload::synthetic(ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
    let b = workload::synthetic(ctx, PAPER_B, SyntheticDistribution::Uniform, ctx.seed_b);

    let baseline = best_of(&TouchJoin::default(), &a, &b);
    let baseline_time = baseline.total_time().as_secs_f64();
    // Label column is "workers" — "threads" is already a RunReport CSV column.
    table.push(Row::new(
        vec![("workers", "1 (seq)".to_string()), ("speedup", "1.00".to_string())],
        baseline,
    ));

    for threads in THREAD_STEPS {
        let report = best_of(&ParallelTouchJoin::with_threads(threads), &a, &b);
        let speedup = baseline_time / report.total_time().as_secs_f64().max(f64::EPSILON);
        table.push(Row::new(
            vec![("workers", format!("{threads}")), ("speedup", format!("{speedup:.2}"))],
            report,
        ));
    }

    // `--trace <path>`: one extra traced run at the widest sweep step, written
    // as a Chrome trace_events file (tracing is observational, so the timed
    // rows above stay untraced).
    if let Some(path) = &ctx.trace {
        let threads = *THREAD_STEPS.last().expect("THREAD_STEPS is non-empty");
        let trace = ExecTrace::new();
        let _ = JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(ParallelTouchJoin::with_threads(threads))
            .trace(&trace)
            .run(&mut CountingSink::new());
        match std::fs::write(path, trace.to_chrome_json()) {
            Ok(()) => {
                if ctx.verbose {
                    println!("{}", trace.text_profile());
                    println!("wrote Chrome trace ({threads} workers) to {}", path.display());
                }
            }
            Err(e) => eprintln!("cannot write trace to {}: {e}", path.display()),
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_agree_on_the_result_count() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 1 + THREAD_STEPS.len());
        let expected = table.rows[0].report.result_pairs();
        assert!(expected > 0, "the scaled workload must produce results");
        for row in &table.rows {
            assert_eq!(
                row.report.result_pairs(),
                expected,
                "{} (workers = {}) disagrees on the result count",
                row.report.algorithm,
                row.labels[0].1
            );
        }
    }

    #[test]
    fn parallel_rows_report_their_thread_count() {
        let table = run(&Context::for_tests());
        for (row, threads) in table.rows[1..].iter().zip(THREAD_STEPS) {
            assert_eq!(row.report.threads, threads);
            assert_eq!(row.labels[0].1, format!("{threads}"));
            let speedup: f64 = row.labels[1].1.parse().expect("speedup is numeric");
            assert!(speedup > 0.0);
        }
    }
}

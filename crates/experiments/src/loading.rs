//! §6.3 — loading the data vs. performing the join.
//!
//! The paper shows that reading the data into memory (≤ 2 s) is dwarfed by the join
//! itself (334–1512 s for PBSM-500 on 1.6 M × 1.6–9.6 M objects), so speeding up the
//! in-memory join is what matters. We reproduce the comparison by timing the
//! in-memory materialisation of the datasets against the PBSM-500 join on the same
//! workload.

use crate::{scaled_resolution, workload, Context, ExperimentTable, Row};
use std::time::Instant;
use touch_baselines::PbsmJoin;
use touch_core::{CountingSink, JoinQuery};
use touch_datagen::SyntheticDistribution;
use touch_geom::Dataset;

const PAPER_A: usize = 1_600_000;
const PAPER_B_STEPS: [usize; 3] = [1_600_000, 4_800_000, 9_600_000];
const EPS: f64 = 5.0;

/// Runs the loading-vs-join comparison.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "loading_vs_join",
        "Section 6.3: loading the data vs. the PBSM-500 join (uniform, eps = 5)",
    );
    let a = workload::synthetic(ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
    let pbsm = PbsmJoin::with_label(scaled_resolution(500, ctx.scale), "PBSM-500");

    for paper_b in PAPER_B_STEPS {
        let b = workload::synthetic(ctx, paper_b, SyntheticDistribution::Uniform, ctx.seed_b);

        // "Loading": materialising both datasets in memory from their raw MBRs —
        // the in-memory analogue of reading them from disk.
        let load_start = Instant::now();
        let loaded_a = Dataset::from_mbrs(a.iter().map(|o| o.mbr));
        let loaded_b = Dataset::from_mbrs(b.iter().map(|o| o.mbr));
        let load_time = load_start.elapsed();

        let report = JoinQuery::new(&loaded_a, &loaded_b)
            .within_distance(EPS)
            .engine(pbsm)
            .run(&mut CountingSink::new());
        let join_time = report.total_time();

        table.push(Row::new(
            vec![
                ("b_objects", format!("{}", loaded_b.len())),
                ("load_seconds", format!("{:.4}", load_time.as_secs_f64())),
                ("join_seconds", format!("{:.4}", join_time.as_secs_f64())),
                (
                    "join_over_load",
                    format!("{:.1}", join_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)),
                ),
            ],
            report,
        ));
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_dominates_loading() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), PAPER_B_STEPS.len());
        for row in &table.rows {
            let load: f64 = row.labels[1].1.parse().unwrap();
            let join: f64 = row.labels[2].1.parse().unwrap();
            assert!(
                join > load,
                "the join ({join}s) must dominate loading ({load}s) as in the paper"
            );
        }
    }
}

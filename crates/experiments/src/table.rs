//! Experiment result tables: rows of labelled [`RunReport`]s with CSV and markdown
//! rendering.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use touch_metrics::{format_count, format_duration, RunReport};

/// One measured data point of an experiment: the run report plus the experiment's own
/// labels (distribution, |B|, ε, fanout, …).
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment-specific labels, in column order.
    pub labels: Vec<(String, String)>,
    /// The measurement of this run.
    pub report: RunReport,
}

impl Row {
    /// Creates a row from labels (`(column, value)` pairs) and a report.
    pub fn new(labels: Vec<(&str, String)>, report: RunReport) -> Self {
        Row { labels: labels.into_iter().map(|(k, v)| (k.to_string(), v)).collect(), report }
    }
}

/// The complete result of one experiment: an identifier, a description and its rows.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Stable identifier used for file names (e.g. `"figure9_uniform"`).
    pub id: String,
    /// Human-readable title (e.g. `"Figure 9: large uniform datasets, eps = 5"`).
    pub title: String,
    /// Measured rows in presentation order.
    pub rows: Vec<Row>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentTable { id: id.into(), title: title.into(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the table as CSV (experiment labels first, then the standard
    /// [`RunReport`] columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let label_header: Vec<&str> = self
            .rows
            .first()
            .map(|r| r.labels.iter().map(|(k, _)| k.as_str()).collect())
            .unwrap_or_default();
        out.push_str(&label_header.join(","));
        if !label_header.is_empty() {
            out.push(',');
        }
        out.push_str(RunReport::csv_header());
        out.push('\n');
        for row in &self.rows {
            let labels: Vec<&str> = row.labels.iter().map(|(_, v)| v.as_str()).collect();
            out.push_str(&labels.join(","));
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(&row.report.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Renders the table as a compact markdown table (the columns the paper plots:
    /// comparisons, execution time, memory, plus results/filtered).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        let label_header: Vec<String> = self
            .rows
            .first()
            .map(|r| r.labels.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default();
        let mut header: Vec<String> = label_header.clone();
        header.extend(
            ["algorithm", "comparisons", "results", "filtered", "memory", "time"]
                .iter()
                .map(|s| s.to_string()),
        );
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
        for row in &self.rows {
            let mut cells: Vec<String> = row.labels.iter().map(|(_, v)| v.clone()).collect();
            cells.push(row.report.algorithm.clone());
            cells.push(format_count(row.report.counters.comparisons));
            cells.push(format_count(row.report.counters.results));
            cells.push(format_count(row.report.counters.filtered));
            cells.push(format_bytes(row.report.memory_bytes));
            cells.push(format_duration(row.report.total_time()));
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out.push('\n');
        out
    }

    /// Writes the CSV rendering to `<dir>/<id>.csv`, creating the directory if needed.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut file = fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Convenience used by the experiment binaries: print (if `verbose`) and write
    /// the CSV (if an output directory is configured).
    pub fn finish(&self, ctx: &crate::Context) {
        if ctx.verbose {
            print!("{}", self.to_markdown());
        }
        if let Some(dir) = &ctx.output_dir {
            match self.write_csv(dir) {
                Ok(path) => {
                    if ctx.verbose {
                        println!("wrote {}", path.display());
                    }
                }
                Err(e) => eprintln!("failed to write {}: {e}", self.id),
            }
        }
    }
}

/// Formats a byte count for the markdown tables (`"1.5 MB"`, `"320 KB"`, …).
pub fn format_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.0} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ExperimentTable {
        let mut t = ExperimentTable::new("test_table", "A test table");
        let mut report = RunReport::new("TOUCH", 10, 20);
        report.counters.comparisons = 123;
        report.counters.results = 7;
        report.memory_bytes = 2048;
        t.push(Row::new(vec![("b_size", "20".into()), ("eps", "5".into())], report));
        t
    }

    #[test]
    fn csv_has_labels_and_report_columns() {
        let t = sample_table();
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("b_size,eps,algorithm,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("20,5,TOUCH,10,20,"));
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header and row arity must match"
        );
    }

    #[test]
    fn markdown_contains_title_and_formatted_values() {
        let t = sample_table();
        let md = t.to_markdown();
        assert!(md.contains("### A test table"));
        assert!(md.contains("| TOUCH |"));
        assert!(md.contains("123"));
        assert!(md.contains("2 KB"));
    }

    #[test]
    fn write_csv_creates_the_file() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("touch_experiments_test");
        let path = t.write_csv(&dir).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("TOUCH"));
        fs::remove_file(path).ok();
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2_048), "2 KB");
        assert_eq!(format_bytes(3_500_000), "3.5 MB");
        assert_eq!(format_bytes(7_250_000_000), "7.25 GB");
    }
}

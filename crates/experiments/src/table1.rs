//! Table 1 — join selectivity of the evaluation datasets.
//!
//! The paper characterises its datasets by the selectivity of the ε-distance join
//! (Equation 1: `|results| / (|A|·|B|)`): uniform, Gaussian and clustered synthetic
//! datasets of 160 K × 1.6 M objects for ε ∈ {5, 10}, plus the neuroscience dataset
//! (644 K axons × 1.285 M dendrites). Gaussian data is the most selective, followed
//! by clustered, then uniform; the neuroscience data sits above all synthetic ones.

use crate::{workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery, TouchJoin};
use touch_datagen::{NeuroscienceSpec, SyntheticDistribution};

/// Paper cardinalities for the synthetic rows of Table 1.
const PAPER_A: usize = 160_000;
const PAPER_B: usize = 1_600_000;
/// The two distance thresholds used throughout the paper.
pub const EPSILONS: [f64; 2] = [5.0, 10.0];

/// Runs the selectivity measurement and returns one row per (dataset, ε).
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table =
        ExperimentTable::new("table1_selectivity", "Table 1: selectivity of the datasets (x 1e-6)");
    let touch = TouchJoin::default();

    // Synthetic datasets.
    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = workload::synthetic(ctx, PAPER_A, dist, ctx.seed_a);
        let b = workload::synthetic(ctx, PAPER_B, dist, ctx.seed_b);
        for eps in EPSILONS {
            let report = JoinQuery::new(&a, &b)
                .within_distance(eps)
                .engine(&touch)
                .run(&mut CountingSink::new());
            table.push(Row::new(
                vec![
                    ("dataset", dist.name().to_string()),
                    ("eps", format!("{eps}")),
                    ("selectivity_e6", format!("{:.2}", report.selectivity() * 1e6)),
                ],
                report,
            ));
        }
    }

    // Neuroscience dataset.
    let neuro = NeuroscienceSpec::scaled(ctx.scale).generate(ctx.seed_a);
    for eps in EPSILONS {
        let report = JoinQuery::new(&neuro.axons, &neuro.dendrites)
            .within_distance(eps)
            .engine(&touch)
            .run(&mut CountingSink::new());
        table.push(Row::new(
            vec![
                ("dataset", "neuroscience".to_string()),
                ("eps", format!("{eps}")),
                ("selectivity_e6", format!("{:.2}", report.selectivity() * 1e6)),
            ],
            report,
        ));
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_eight_rows_with_consistent_selectivity() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 8);
        let total_pairs: u64 = table.rows.iter().map(|r| r.report.result_pairs()).sum();
        assert!(total_pairs > 0, "the selectivity table cannot be all zeros");
        for row in &table.rows {
            assert_eq!(row.report.algorithm, "TOUCH");
        }
        // The paper's ordering: for every dataset, eps = 10 is at least as selective
        // as eps = 5 (strictly more at paper scale).
        for pair in table.rows.chunks(2) {
            assert!(pair[1].report.selectivity() >= pair[0].report.selectivity());
        }
        // ... and the denser Gaussian dataset is more selective than the uniform one.
        let sel = |dataset: &str, eps: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r.labels[0].1 == dataset && r.labels[1].1 == eps)
                .unwrap()
                .report
                .selectivity()
        };
        assert!(sel("gaussian", "10") > sel("uniform", "10"));
    }
}

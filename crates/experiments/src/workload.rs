//! Workload construction with constant-density scaling.
//!
//! The experiments shrink the paper's workloads by a scale factor. Simply generating
//! fewer objects in the paper's 1000³ space would change the *density* — and with it
//! the selectivity, the filtering behaviour and the grid occupancies that the paper's
//! findings rest on. The harness therefore scales at **constant density**: object
//! counts shrink by the scale factor and every spatial parameter of the generators
//! (space side, Gaussian μ/σ, cluster scatter) shrinks by its cube root, while the
//! object sizes and ε keep their absolute values from the paper. Per-object structure
//! (how many neighbours an object has within ε, how many grid cells it overlaps) is
//! thereby preserved, which is what keeps the figures' *shapes* intact at laptop
//! scale.

use crate::Context;
use touch_datagen::{SpaceConfig, SyntheticDistribution, SyntheticSpec};
use touch_geom::Dataset;

/// Scales a spatial parameter (space side, σ, μ) with the cube root of the scale
/// factor so that object density stays at the paper's value.
pub fn scaled_length(paper_length: f64, scale: f64) -> f64 {
    paper_length * scale.cbrt()
}

/// The synthetic-dataset spec for `paper_count` objects of `dist`, scaled for `ctx`.
pub fn synthetic_spec(
    ctx: &Context,
    paper_count: usize,
    dist: SyntheticDistribution,
) -> SyntheticSpec {
    let s = ctx.scale;
    let scaled_dist = match dist {
        SyntheticDistribution::Uniform => SyntheticDistribution::Uniform,
        SyntheticDistribution::Gaussian { mean, std_dev } => SyntheticDistribution::Gaussian {
            mean: scaled_length(mean, s),
            std_dev: scaled_length(std_dev, s),
        },
        SyntheticDistribution::Clustered { clusters, std_dev } => {
            SyntheticDistribution::Clustered { clusters, std_dev: scaled_length(std_dev, s) }
        }
    };
    SyntheticSpec {
        count: ctx.scaled_count(paper_count),
        distribution: scaled_dist,
        space: SpaceConfig {
            size: scaled_length(1000.0, s),
            max_object_side: 1.0, // object sizes keep their absolute (paper) value
        },
    }
}

/// Generates the synthetic dataset for `paper_count` objects of `dist` with `seed`,
/// scaled for `ctx`.
pub fn synthetic(
    ctx: &Context,
    paper_count: usize,
    dist: SyntheticDistribution,
    seed: u64,
) -> Dataset {
    synthetic_spec(ctx, paper_count, dist).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_preserved_across_scales() {
        let paper_count = 1_600_000;
        for scale in [1.0, 0.1, 0.01] {
            let ctx = Context::new(scale);
            let spec = synthetic_spec(&ctx, paper_count, SyntheticDistribution::Uniform);
            let density = spec.count as f64 / spec.space.size.powi(3);
            let paper_density = paper_count as f64 / 1000.0f64.powi(3);
            assert!(
                (density / paper_density - 1.0).abs() < 0.05,
                "density at scale {scale} drifted: {density} vs {paper_density}"
            );
        }
    }

    #[test]
    fn distribution_parameters_scale_with_the_space() {
        let ctx = Context::new(0.001); // cbrt = 0.1
        let spec = synthetic_spec(&ctx, 100_000, SyntheticDistribution::paper_gaussian());
        match spec.distribution {
            SyntheticDistribution::Gaussian { mean, std_dev } => {
                assert!((mean - 50.0).abs() < 1e-9);
                assert!((std_dev - 25.0).abs() < 1e-9);
            }
            _ => panic!("distribution kind must be preserved"),
        }
        assert!((spec.space.size - 100.0).abs() < 1e-9);
        assert_eq!(spec.space.max_object_side, 1.0);
    }

    #[test]
    fn full_scale_is_the_paper_configuration() {
        let ctx = Context::new(1.0);
        let spec = synthetic_spec(&ctx, 160_000, SyntheticDistribution::paper_clustered());
        assert_eq!(spec.count, 160_000);
        assert_eq!(spec.space.size, 1000.0);
        match spec.distribution {
            SyntheticDistribution::Clustered { clusters, std_dev } => {
                assert_eq!(clusters, 100);
                assert!((std_dev - 220.0).abs() < 1e-9);
            }
            _ => panic!("distribution kind must be preserved"),
        }
    }
}

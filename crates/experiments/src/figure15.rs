//! Figure 15 — execution time for increasingly dense neuroscience datasets.
//!
//! The paper emulates growing model density by joining increasing random subsets
//! (20 %, 40 %, …, 100 %) of the axon and dendrite cylinder sets with ε = 5. TOUCH's
//! advantage grows with density: at the densest setting it is reported 8× faster than
//! PBSM-500 and ~50× faster than the best of the remaining approaches, while needing
//! an order of magnitude less memory than PBSM-500.

use crate::{scaled_large_suite, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery};
use touch_datagen::NeuroscienceSpec;

const EPS: f64 = 5.0;
/// The density steps of the paper.
pub const PERCENTAGES: [usize; 5] = [20, 40, 60, 80, 100];

/// Runs the density sweep over the large-scale suite.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "figure15_density",
        "Figure 15: execution time for increasingly dense neuroscience datasets (eps = 5)",
    );
    let data = NeuroscienceSpec::scaled(ctx.scale).generate(ctx.seed_a);
    let suite = scaled_large_suite(ctx.scale);

    for pct in PERCENTAGES {
        let a = data.axons.take_prefix(data.axons.len() * pct / 100);
        let b = data.dendrites.take_prefix(data.dendrites.len() * pct / 100);
        for algo in &suite {
            let report = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(algo.as_ref())
                .run(&mut CountingSink::new());
            table.push(Row::new(
                vec![("percentage", format!("{pct}")), ("a_objects", format!("{}", a.len()))],
                report,
            ));
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_increases_results_and_algorithms_agree() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), PERCENTAGES.len() * 6);
        let mut last_results = 0;
        for chunk in table.rows.chunks(6) {
            let expected = chunk[0].report.result_pairs();
            for row in chunk {
                assert_eq!(row.report.result_pairs(), expected, "{}", row.report.algorithm);
            }
            assert!(expected >= last_results, "denser subsets must produce at least as many pairs");
            last_results = expected;
        }
        assert!(last_results > 0, "the densest setting must produce results");
    }
}

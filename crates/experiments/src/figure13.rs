//! Figure 13 — TOUCH's filtering capability.
//!
//! Dataset A is fixed at 1.6 M objects, dataset B grows from 1.6 M to 9.6 M, ε = 5.
//! The figure reports how many objects of dataset B TOUCH filters (discards during
//! assignment because they overlap no leaf MBR) for each distribution. The paper's
//! finding: the less uniform the data, the more objects are filtered — nothing for
//! uniform data, a small share for Gaussian, several hundred thousand objects for
//! clustered data, and > 26 % for the neuroscience dataset.

use crate::{workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery, TouchJoin};
use touch_datagen::SyntheticDistribution;

const PAPER_A: usize = 1_600_000;
const PAPER_B_STEPS: [usize; 6] =
    [1_600_000, 3_200_000, 4_800_000, 6_400_000, 8_000_000, 9_600_000];
const EPS: f64 = 5.0;

/// Runs the filtering measurement: TOUCH only, all three distributions.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "figure13_filtering",
        "Figure 13: number of B objects filtered by TOUCH (eps = 5)",
    );
    let touch = TouchJoin::default();

    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = workload::synthetic(ctx, PAPER_A, dist, ctx.seed_a);
        for paper_b in PAPER_B_STEPS {
            let b = workload::synthetic(ctx, paper_b, dist, ctx.seed_b);
            let report = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(&touch)
                .run(&mut CountingSink::new());
            let filtered_pct = 100.0 * report.counters.filtered as f64 / b.len() as f64;
            table.push(Row::new(
                vec![
                    ("distribution", dist.name().to_string()),
                    ("b_objects", format!("{}", b.len())),
                    ("filtered", format!("{}", report.counters.filtered)),
                    ("filtered_pct", format!("{filtered_pct:.2}")),
                ],
                report,
            ));
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_consistent_filtering_counts() {
        // The skew-dependent *magnitude* of filtering (clustered ≫ Gaussian ≫ uniform)
        // only emerges once the space is large relative to ε, i.e. at --scale ≳ 0.1;
        // see EXPERIMENTS.md. At unit-test scale we verify the structural properties:
        // the sweep shape, that filtered counts never exceed |B|, and that the derived
        // percentage column is consistent with the raw counter.
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), 3 * PAPER_B_STEPS.len());
        for row in &table.rows {
            assert_eq!(row.report.algorithm, "TOUCH");
            let b_objects: u64 = row.labels[1].1.parse().unwrap();
            let filtered: u64 = row.labels[2].1.parse().unwrap();
            let pct: f64 = row.labels[3].1.parse().unwrap();
            assert_eq!(filtered, row.report.counters.filtered);
            assert!(filtered <= b_objects);
            assert!((pct - 100.0 * filtered as f64 / b_objects as f64).abs() < 0.01);
        }
    }
}

//! Figure 14 — impact of TOUCH's fanout parameter.
//!
//! Dataset A = 1.6 M, dataset B = 9.6 M, ε = 5, fanout swept from 2 to 20. The paper
//! finds (a) a smaller fanout lets TOUCH filter slightly more objects (Gaussian and
//! clustered data only — uniform data never filters), and (b) a smaller fanout gives
//! a taller tree, better-distributed assignments and therefore noticeably fewer
//! comparisons (≈ 1.5× between fanout 2 and fanout 20).

use crate::{workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery, TouchJoin};
use touch_datagen::SyntheticDistribution;

const PAPER_A: usize = 1_600_000;
const PAPER_B: usize = 9_600_000;
const EPS: f64 = 5.0;
/// The fanouts the paper sweeps.
pub const FANOUTS: [usize; 10] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20];

/// Runs the fanout sweep for all three distributions.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "figure14_fanout",
        "Figure 14: impact of the TOUCH fanout on filtering and comparisons (eps = 5)",
    );

    for dist in [
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ] {
        let a = workload::synthetic(ctx, PAPER_A, dist, ctx.seed_a);
        let b = workload::synthetic(ctx, PAPER_B, dist, ctx.seed_b);
        for fanout in FANOUTS {
            let touch = TouchJoin::with_fanout(fanout);
            let report = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(&touch)
                .run(&mut CountingSink::new());
            table.push(Row::new(
                vec![
                    ("distribution", dist.name().to_string()),
                    ("fanout", format!("{fanout}")),
                    ("filtered", format!("{}", report.counters.filtered)),
                ],
                report,
            ));
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fanout_needs_no_more_comparisons_than_large_fanout() {
        let ctx = Context::for_tests();
        let table = run(&ctx);
        assert_eq!(table.rows.len(), 3 * FANOUTS.len());
        for dist_chunk in table.rows.chunks(FANOUTS.len()) {
            let first = &dist_chunk[0]; // fanout 2
            let last = &dist_chunk[FANOUTS.len() - 1]; // fanout 20
                                                       // The paper's trend (fanout 2 needs ~1.5× fewer comparisons than
                                                       // fanout 20) is statistical: at the tiny test scale the two tree shapes
                                                       // can land within noise of each other, so allow a 10 % margin.
            assert!(
                first.report.counters.comparisons <= last.report.counters.comparisons * 11 / 10,
                "{}: fanout 2 ({}) needs far more comparisons than fanout 20 ({})",
                first.labels[0].1,
                first.report.counters.comparisons,
                last.report.counters.comparisons
            );
            // All fanouts must agree on the result count.
            let expected = first.report.result_pairs();
            for row in dist_chunk {
                assert_eq!(row.report.result_pairs(), expected);
            }
        }
    }
}

//! Figure 8 — small uniform datasets, all eight algorithms.
//!
//! Dataset A has 10 K objects, dataset B grows from 160 K to 640 K in steps of 160 K,
//! ε = 10, uniform distribution. The paper's findings: TOUCH and PBSM drastically
//! outperform the nested loop and the plane-sweep in both comparisons and time, and
//! execution time tracks the number of comparisons.

use crate::{scaled_small_suite, workload, Context, ExperimentTable, Row};
use touch_core::{CountingSink, JoinQuery};
use touch_datagen::SyntheticDistribution;

const PAPER_A: usize = 10_000;
const PAPER_B_STEPS: [usize; 4] = [160_000, 320_000, 480_000, 640_000];
const EPS: f64 = 10.0;

/// Runs the Figure 8 sweep: every algorithm × every size of dataset B.
pub fn run(ctx: &Context) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "figure8_small_uniform",
        "Figure 8: small uniform datasets, increasing |B|, eps = 10",
    );
    let a = workload::synthetic(ctx, PAPER_A, SyntheticDistribution::Uniform, ctx.seed_a);
    let suite = scaled_small_suite(ctx.scale);

    for paper_b in PAPER_B_STEPS {
        let b = workload::synthetic(ctx, paper_b, SyntheticDistribution::Uniform, ctx.seed_b);
        for algo in &suite {
            let report = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(algo.as_ref())
                .run(&mut CountingSink::new());
            table.push(Row::new(
                vec![("b_objects", format!("{}", b.len())), ("eps", format!("{EPS}"))],
                report,
            ));
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_agree_on_the_result_count() {
        let table = run(&Context::for_tests());
        assert_eq!(table.rows.len(), PAPER_B_STEPS.len() * 8);
        // Per |B| step, every algorithm must report the identical number of pairs.
        for chunk in table.rows.chunks(8) {
            let expected = chunk[0].report.result_pairs();
            for row in chunk {
                assert_eq!(
                    row.report.result_pairs(),
                    expected,
                    "{} disagrees on the result count",
                    row.report.algorithm
                );
            }
        }
    }

    #[test]
    fn touch_beats_the_nested_loop_on_comparisons() {
        let table = run(&Context::for_tests());
        for chunk in table.rows.chunks(8) {
            let nl = chunk.iter().find(|r| r.report.algorithm == "NL").unwrap();
            let touch = chunk.iter().find(|r| r.report.algorithm == "TOUCH").unwrap();
            assert!(
                touch.report.counters.comparisons < nl.report.counters.comparisons,
                "TOUCH must need fewer comparisons than the nested loop"
            );
        }
    }
}

//! Runs the thread-scaling experiment (parallel TOUCH at 1/2/4/8 threads vs. the
//! sequential baseline). Usage:
//! `cargo run -p touch-experiments --release --bin scaling -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::scaling::run(&ctx).finish(&ctx);
}

//! Regenerates Figure 13 (TOUCH filtering capability). Usage:
//! `cargo run -p touch-experiments --release --bin figure13 -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::figure13::run(&ctx).finish(&ctx);
}

//! Runs the tick-loop simulation experiment (kernel sequential / kernel
//! parallel / serve-backed integration of `touch-sim` over the same world).
//! Usage:
//! `cargo run -p touch-experiments --release --bin tick -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::tick::run(&ctx).finish(&ctx);
}

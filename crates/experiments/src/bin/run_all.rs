//! Runs every experiment of the TOUCH evaluation in paper order. Usage:
//! `cargo run -p touch-experiments --release --bin run_all -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    for table in touch_experiments::run_all(&ctx) {
        table.finish(&ctx);
    }
    if ctx.verbose {
        println!("all experiments finished in {:.1} s", started.elapsed().as_secs_f64());
    }
}

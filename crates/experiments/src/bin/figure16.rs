//! Regenerates Figure 16 (neuroscience datasets). Usage:
//! `cargo run -p touch-experiments --release --bin figure16 -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::figure16::run(&ctx).finish(&ctx);
}

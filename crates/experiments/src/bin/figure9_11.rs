//! Regenerates Figures 9/10/11 (large synthetic datasets). Usage:
//! `cargo run -p touch-experiments --release --bin figure9_11 -- [--dist uniform|gaussian|clustered] [--scale 0.01] [--out results]`
//!
//! Without `--dist`, all three figures are produced.

use touch_datagen::SyntheticDistribution;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Extract the figure-specific --dist flag before handing the rest to Context.
    let mut dists = vec![
        SyntheticDistribution::Uniform,
        SyntheticDistribution::paper_gaussian(),
        SyntheticDistribution::paper_clustered(),
    ];
    if let Some(pos) = args.iter().position(|a| a == "--dist") {
        let value = args.get(pos + 1).cloned().unwrap_or_default();
        dists = match value.as_str() {
            "uniform" => vec![SyntheticDistribution::Uniform],
            "gaussian" => vec![SyntheticDistribution::paper_gaussian()],
            "clustered" => vec![SyntheticDistribution::paper_clustered()],
            other => {
                eprintln!("unknown --dist value: {other}");
                std::process::exit(2);
            }
        };
        args.drain(pos..pos + 2);
    }
    let ctx = match touch_experiments::Context::from_args(args.into_iter()) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    for dist in dists {
        touch_experiments::figure9_11::run(&ctx, dist).finish(&ctx);
    }
}

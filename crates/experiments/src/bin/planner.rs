//! Runs the planner ablation (Engine::Auto vs fixed configurations).
//! Usage:
//! `cargo run -p touch-experiments --release --bin planner -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::planner::run(&ctx).finish(&ctx);
}

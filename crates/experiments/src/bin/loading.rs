//! Regenerates the §6.3 loading-vs-join comparison. Usage:
//! `cargo run -p touch-experiments --release --bin loading -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::loading::run(&ctx).finish(&ctx);
}

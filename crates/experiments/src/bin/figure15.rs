//! Regenerates Figure 15 (neuroscience density scaling). Usage:
//! `cargo run -p touch-experiments --release --bin figure15 -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::figure15::run(&ctx).finish(&ctx);
}

//! Runs the streaming amortisation experiment (persistent-tree epochs vs.
//! per-batch rebuild at 1/4/16/64 epochs). Usage:
//! `cargo run -p touch-experiments --release --bin streaming -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::streaming::run(&ctx).finish(&ctx);
}

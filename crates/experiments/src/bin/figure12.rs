//! Regenerates Figure 12 (impact of ε). Usage:
//! `cargo run -p touch-experiments --release --bin figure12 -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::figure12::run(&ctx).finish(&ctx);
}

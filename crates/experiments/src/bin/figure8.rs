//! Regenerates Figure 8 (small uniform datasets, all 8 algorithms). Usage:
//! `cargo run -p touch-experiments --release --bin figure8 -- [--scale 0.01] [--out results]`

fn main() {
    let ctx = match touch_experiments::Context::from_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    touch_experiments::figure8::run(&ctx).finish(&ctx);
}

//! A small, long-lived worker pool for **serving readers**.
//!
//! The work-stealing scheduler in [`crate::scheduler`] is built for one join's
//! fork/join phases: scoped threads, descending-cost deques, a barrier at the
//! end. A serving workload is the opposite shape — a fixed set of threads that
//! outlives any single query, each picking up independent jobs (snapshot joins
//! against `touch-serve` generations) as they arrive. [`ReaderPool`] is that
//! second shape: N threads sharing one queue, submission through
//! [`ReaderPool::execute`], shutdown by dropping the pool (the queue closes and
//! every worker drains what is left, then exits).
//!
//! Jobs are plain `FnOnce() + Send` closures; results travel through whatever
//! channel the caller captures in them. The pool deliberately has no result
//! plumbing, no panic recovery and no stealing — it is the thin serving-side
//! complement to the join-side machinery, not a replacement for it.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-width pool of long-lived worker threads draining one shared job
/// queue — the serving-side complement to the join-side work-stealing
/// scheduler, for jobs that outlive any single query (snapshot joins against
/// `touch-serve` generations). Jobs are plain `FnOnce() + Send` closures;
/// results travel through whatever channel the caller captures in them.
///
/// Dropping the pool is an orderly shutdown: the queue closes, every already
/// submitted job still runs, and the drop blocks until all workers have
/// exited. A job that panics poisons nothing — the panic unwinds its worker
/// thread only, and the drop surfaces it as a second panic so tests cannot
/// silently lose work (detached failure is not an option for equivalence
/// suites).
#[derive(Debug)]
pub struct ReaderPool {
    /// `Some` until drop: workers exit when every sender is gone.
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReaderPool {
    /// Spawns `threads` workers (at least one) around an empty queue.
    ///
    /// # Panics
    /// Panics if the OS refuses to spawn a thread — pool construction happens
    /// once at startup, where aborting beats limping along with fewer readers.
    #[allow(clippy::expect_used)]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("touch-reader-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the dequeue, never the job.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            // A sibling panicked while holding the lock
                            // mid-recv; the queue itself is untouched.
                            Err(poisoned) => poisoned.into_inner().recv(),
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // queue closed: pool is dropping
                        }
                    })
                    .expect("spawning a reader thread")
            })
            .collect();
        ReaderPool { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one job; some idle worker will run it. Never blocks.
    // Lifecycle invariants: the sender is only taken in `drop`, and the
    // workers only exit after the sender closes — neither expect can fire
    // while `self` is alive.
    #[allow(clippy::expect_used)]
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("the sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Submits every job in `jobs` and blocks until **all of them** finished —
    /// the fork/join convenience for tests and benchmarks. Jobs submitted by
    /// other threads in the meantime are unaffected.
    // A worker that panics mid-job is reported at drop; the completion channel
    // closing early is the same failure surfaced sooner — panic is the policy.
    #[allow(clippy::expect_used)]
    pub fn run_all(&self, jobs: Vec<Job>) {
        let (done, finished) = channel();
        let count = jobs.len();
        for job in jobs {
            let done = done.clone();
            self.execute(move || {
                job();
                let _ = done.send(());
            });
        }
        drop(done);
        for _ in 0..count {
            finished.recv().expect("a submitted job vanished");
        }
    }
}

impl Drop for ReaderPool {
    fn drop(&mut self) {
        // Closing the queue is the shutdown signal; then reap every worker.
        drop(self.sender.take());
        let mut failure = None;
        for worker in self.workers.drain(..) {
            if let Err(panic) = worker.join() {
                failure = Some(panic);
            }
        }
        if let Some(panic) = failure {
            if !std::thread::panicking() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_submitted_job_runs_exactly_once() {
        let pool = ReaderPool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // shutdown drains the queue
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn run_all_is_a_barrier() {
        let pool = ReaderPool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<super::Job> = (0..24)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as super::Job
            })
            .collect();
        pool.run_all(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 24, "run_all returned before its jobs");
    }

    #[test]
    fn jobs_really_spread_over_multiple_threads() {
        let pool = ReaderPool::new(2);
        let (tx, rx) = channel();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for _ in 0..2 {
            let tx = tx.clone();
            let barrier = Arc::clone(&barrier);
            pool.execute(move || {
                // Meeting at a barrier is only possible on distinct threads.
                barrier.wait();
                let _ = tx.send(std::thread::current().id());
            });
        }
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn zero_threads_rounds_up_to_one() {
        let pool = ReaderPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7usize).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "reader job panicked")]
    fn a_panicking_job_is_surfaced_at_drop() {
        let pool = ReaderPool::new(1);
        pool.execute(|| panic!("reader job panicked"));
        drop(pool);
    }
}

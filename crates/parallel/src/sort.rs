//! Multi-threaded Sort-Tile-Recursive (STR) partitioning.
//!
//! The tree-building phase of TOUCH is dominated by the STR sort of dataset A
//! (`O(n log n)` against the `O(n)` of bucket-MBR computation), so this module
//! parallelises exactly that. The structure of STR is reproduced from
//! [`touch_index::str_sort`] pass for pass:
//!
//! 1. the whole array is sorted by the x-centre — here with a **parallel stable
//!    merge sort** (per-thread stable chunk sorts + stable merges),
//! 2. the array is cut into vertical slabs, and each slab recurses on the remaining
//!    axes — here with the **slabs distributed over the worker threads** (they are
//!    disjoint sub-slices, so this is plain fork/join parallelism).
//!
//! Because every pass is *stable* and uses the same slab arithmetic as the
//! sequential implementation, [`par_str_sort`] produces **bit-identical tile order**
//! to `str_sort` for every thread count — the parallel join builds the exact same
//! tree as the sequential one, which is what makes its counters (not just its result
//! set) reproducible run-to-run and thread-count-to-thread-count.

use std::cmp::Ordering;
use touch_geom::{SpatialObject, DIMS};

/// Reorders `items` in place so that consecutive chunks of `cap` items form STR
/// tiles, using up to `threads` worker threads. Inputs of `seq_threshold` objects or
/// fewer are sorted sequentially (the merge overhead would outweigh the win).
///
/// Produces exactly the order of `touch_index::str_sort(items, |o| o.mbr.center(), cap)`.
/// Returns an upper bound on the peak auxiliary bytes the sort allocated (the merge
/// scratch buffers; 0 when every pass stayed sequential) so callers can fold the
/// transient footprint into their memory reports.
///
/// # Panics
/// Panics if `cap` is zero.
pub fn par_str_sort(
    items: &mut [SpatialObject],
    cap: usize,
    threads: usize,
    seq_threshold: usize,
) -> usize {
    assert!(cap > 0, "bucket capacity must be positive");
    str_axis(items, cap, 0, threads.max(1), seq_threshold.max(1))
}

// The sort workers run pure comparisons over slices — no panic sources short
// of allocation failure, where propagating the abort is the right outcome.
#[allow(clippy::expect_used)]
fn str_axis(
    items: &mut [SpatialObject],
    cap: usize,
    axis: usize,
    threads: usize,
    threshold: usize,
) -> usize {
    let n = items.len();
    if n <= cap {
        return 0;
    }
    // Below the sequential threshold nothing forks — neither the merge sort nor
    // the per-slab recursion; thread-spawn overhead would outweigh the work.
    let threads = if n <= threshold { 1 } else { threads };
    // The axis sort's scratch is freed before the slab recursion starts, so the
    // peak is the max of the two stages, not their sum.
    let sort_aux = par_sort_by_axis(items, axis, threads, threshold);
    if axis + 1 >= DIMS {
        return sort_aux;
    }
    // Same slab arithmetic as the sequential STR: S = ceil(P^(1/d_remaining)).
    let buckets = n.div_ceil(cap);
    let remaining_dims = (DIMS - axis) as f64;
    let slabs = (buckets as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slabs = slabs.clamp(1, buckets);
    let slab_size = n.div_ceil(slabs);

    // Cut into disjoint slab slices.
    let mut slices = Vec::with_capacity(slabs);
    let mut rest = items;
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        slices.push(head);
        rest = tail;
    }

    if threads <= 1 || slices.len() <= 1 {
        // Sequential slabs run one after another: peak = the largest single slab.
        let mut slab_aux = 0usize;
        for slab in slices {
            slab_aux = slab_aux.max(str_axis(slab, cap, axis + 1, 1, threshold));
        }
        return sort_aux.max(slab_aux);
    }

    // Fork/join: distribute the slabs round-robin over the workers; each slab
    // recurses sequentially (slab counts comfortably exceed thread counts for the
    // paper's 1024 partitions).
    let workers = threads.min(slices.len());
    let mut bundles: Vec<Vec<&mut [SpatialObject]>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, slab) in slices.into_iter().enumerate() {
        bundles[i % workers].push(slab);
    }
    let slab_aux: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = bundles
            .into_iter()
            .map(|bundle| {
                scope.spawn(move || {
                    let mut peak = 0usize;
                    for slab in bundle {
                        peak = peak.max(str_axis(slab, cap, axis + 1, 1, threshold));
                    }
                    peak
                })
            })
            .collect();
        // Bundles run concurrently, so their peaks can coexist: sum them.
        handles.into_iter().map(|h| h.join().expect("sort worker panicked")).sum()
    });
    sort_aux.max(slab_aux)
}

#[inline]
fn cmp_axis(a: &SpatialObject, b: &SpatialObject, axis: usize) -> Ordering {
    a.mbr.center().coord(axis).partial_cmp(&b.mbr.center().coord(axis)).unwrap_or(Ordering::Equal)
}

/// Stable parallel sort of `items` by MBR-centre coordinate `axis`: stable
/// per-thread chunk sorts, then stable bottom-up merging. Stability makes the result
/// identical to a sequential `sort_by` for any thread count. Returns the bytes of
/// merge scratch allocated (0 on the sequential path).
fn par_sort_by_axis(
    items: &mut [SpatialObject],
    axis: usize,
    threads: usize,
    threshold: usize,
) -> usize {
    let n = items.len();
    if threads <= 1 || n <= threshold {
        items.sort_by(|a, b| cmp_axis(a, b, axis));
        return 0;
    }

    // Chunk boundaries: `threads` nearly equal runs.
    let chunk = n.div_ceil(threads);
    let mut bounds = Vec::with_capacity(threads + 1);
    let mut at = 0;
    while at < n {
        bounds.push(at);
        at = (at + chunk).min(n);
    }
    bounds.push(n);

    // Sort the runs in parallel (disjoint sub-slices).
    std::thread::scope(|scope| {
        let mut rest = &mut *items;
        for window in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(window[1] - window[0]);
            scope.spawn(move || head.sort_by(|a, b| cmp_axis(a, b, axis)));
            rest = tail;
        }
    });

    merge_runs(items, bounds, axis);
    std::mem::size_of_val(items) // the scratch buffer merge_runs used
}

/// Bottom-up stable merging of the sorted runs delimited by `bounds`.
fn merge_runs(items: &mut [SpatialObject], mut bounds: Vec<usize>, axis: usize) {
    let mut scratch: Vec<SpatialObject> = Vec::with_capacity(items.len());
    while bounds.len() > 2 {
        scratch.clear();
        let mut new_bounds = Vec::with_capacity(bounds.len() / 2 + 2);
        new_bounds.push(0);
        let mut i = 0;
        // Merge adjacent run pairs.
        while i + 2 < bounds.len() {
            merge_two(
                &items[bounds[i]..bounds[i + 1]],
                &items[bounds[i + 1]..bounds[i + 2]],
                &mut scratch,
                axis,
            );
            new_bounds.push(scratch.len());
            i += 2;
        }
        // Odd run out: carried over unchanged.
        if i + 1 < bounds.len() {
            scratch.extend_from_slice(&items[bounds[i]..bounds[i + 1]]);
            new_bounds.push(scratch.len());
        }
        items.copy_from_slice(&scratch);
        bounds = new_bounds;
    }
}

/// Stable two-way merge: on equal keys the left run's element goes first.
fn merge_two(
    left: &[SpatialObject],
    right: &[SpatialObject],
    out: &mut Vec<SpatialObject>,
    axis: usize,
) {
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if cmp_axis(&left[i], &right[j], axis) != Ordering::Greater {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Dataset, Point3};
    use touch_index::str_sort;

    fn pseudo_random_objects(n: usize, seed: u64) -> Vec<SpatialObject> {
        // Deterministic LCG-scattered boxes, including duplicate centres to
        // exercise tie stability.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        let mut ds = Dataset::new();
        for i in 0..n {
            let min = if i % 7 == 0 {
                Point3::new(50.0, 50.0, 50.0) // repeated centre: tie-break stress
            } else {
                Point3::new(next(), next(), next())
            };
            ds.push_mbr(Aabb::new(min, min + Point3::splat(1.0)));
        }
        ds.objects().to_vec()
    }

    #[test]
    fn matches_sequential_str_sort_for_every_thread_count() {
        for n in [0usize, 1, 63, 64, 1000, 4097] {
            let original = pseudo_random_objects(n, 42);
            let mut expected = original.clone();
            let cap = n.div_ceil(16).max(1);
            str_sort(&mut expected, |o| o.mbr.center(), cap);
            for threads in [1, 2, 3, 8] {
                let mut actual = original.clone();
                // Tiny threshold so the parallel path actually runs.
                par_str_sort(&mut actual, cap, threads, 8);
                let expected_ids: Vec<u32> = expected.iter().map(|o| o.id).collect();
                let actual_ids: Vec<u32> = actual.iter().map(|o| o.id).collect();
                assert_eq!(
                    actual_ids, expected_ids,
                    "n = {n}, threads = {threads}: tile order must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn is_a_permutation() {
        let original = pseudo_random_objects(2500, 7);
        let mut sorted = original.clone();
        par_str_sort(&mut sorted, 40, 4, 16);
        let mut before: Vec<u32> = original.iter().map(|o| o.id).collect();
        let mut after: Vec<u32> = sorted.iter().map(|o| o.id).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn aux_bytes_reflect_the_merge_scratch() {
        let mut objs = pseudo_random_objects(2000, 9);
        // Parallel path: the x-axis merge sort allocates a full-size scratch.
        let aux = par_str_sort(&mut objs, 40, 4, 16);
        assert!(aux >= 2000 * std::mem::size_of::<SpatialObject>());
        // Sequential path (threshold above n): no scratch at all.
        let mut objs = pseudo_random_objects(2000, 9);
        assert_eq!(par_str_sort(&mut objs, 40, 4, 1_000_000), 0);
    }

    #[test]
    fn small_inputs_stay_below_threshold() {
        let mut objs = pseudo_random_objects(100, 3);
        let expected = {
            let mut e = objs.clone();
            str_sort(&mut e, |o| o.mbr.center(), 10);
            e.iter().map(|o| o.id).collect::<Vec<_>>()
        };
        par_str_sort(&mut objs, 10, 8, 8192); // threshold keeps it sequential
        assert_eq!(objs.iter().map(|o| o.id).collect::<Vec<_>>(), expected);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let mut objs = pseudo_random_objects(8, 1);
        par_str_sort(&mut objs, 0, 2, 1);
    }
}

//! # touch-parallel — multi-threaded execution subsystem for TOUCH
//!
//! The TOUCH join (see `touch-core`) is evaluated single-threaded in the paper, but
//! its three phases are embarrassingly parallel, the structure partition-parallel
//! spatial-join work (Tsitsigkos & Mamoulis 2019; Kipf et al. 2018) exploits to
//! saturate modern CPUs:
//!
//! * **tree building** — the STR sort dominates and parallelises as a stable merge
//!   sort plus independent per-slab recursion ([`sort::par_str_sort`]),
//! * **assignment** — each probe object descends the tree independently and
//!   read-only, so the probe dataset is processed in work-stealing chunks,
//! * **local joins** — each assigned node is an independent task, distributed over
//!   work-stealing deques ([`scheduler::StealQueues`]) in descending cost order.
//!
//! Workers never share mutable state: each owns a [`touch_core::SinkShard`] and a
//! [`touch_metrics::Counters`] set, merged at every phase's join point. Phases are
//! timed at their fork/join boundaries, so the reported
//! [`touch_metrics::PhaseTimer`] durations are wall clock and the familiar
//! `speedup = sequential_time / parallel_time` arithmetic holds.
//!
//! The headline guarantee: [`ParallelTouchJoin`] is **deterministic and exactly
//! equivalent** to the sequential [`touch_core::TouchJoin`] — for every thread
//! count it builds a bit-identical tree (the parallel STR sort is stable), performs
//! the identical assignment and local joins, and therefore reports the same sorted
//! result set *and the same counters*; only pair arrival order and wall-clock times
//! vary. This is verified by the workspace's cross-algorithm equivalence and
//! determinism test suites.
//!
//! ## Quick example
//!
//! ```
//! use touch_core::{collect_join, TouchJoin};
//! use touch_geom::{Aabb, Dataset, Point3};
//! use touch_parallel::ParallelTouchJoin;
//!
//! let a = Dataset::from_mbrs((0..500).map(|i| {
//!     let min = Point3::new((i % 50) as f64 * 2.0, (i / 50) as f64 * 2.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.5))
//! }));
//! let b = Dataset::from_mbrs((0..500).map(|i| {
//!     let min = Point3::new((i % 50) as f64 * 2.0 + 0.7, (i / 50) as f64 * 2.0 + 0.7, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.5))
//! }));
//!
//! let (parallel_pairs, report) = collect_join(&ParallelTouchJoin::with_threads(4), &a, &b);
//! let (sequential_pairs, _) = collect_join(&TouchJoin::default(), &a, &b);
//! assert_eq!(parallel_pairs, sequential_pairs);
//! assert_eq!(report.threads, 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod join;
pub mod phases;
mod pool;
pub mod scheduler;
pub mod sort;

pub use config::ParallelConfig;
pub use join::ParallelTouchJoin;
pub use pool::ReaderPool;

//! The reusable parallel building blocks of the three TOUCH phases.
//!
//! [`crate::ParallelTouchJoin`] composes these into a one-shot join; the
//! `touch-streaming` engine composes the same blocks into its per-epoch pipeline
//! (build once, then assignment + local join per pushed batch). Keeping the blocks
//! in one place guarantees the two subsystems can never diverge in how they
//! parallelise a phase.
//!
//! Every block preserves the determinism contract of the subsystem: for a fixed
//! input and [`touch_core::TouchConfig`], the produced tree, assignment and local
//! joins — and therefore the result set and all counters — are identical at every
//! worker count.

use crate::scheduler::StealQueues;
use crate::sort::par_str_sort;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use touch_core::{
    panic_message, CancelCause, ExecControl, JoinError, LocalJoinParams, LocalJoinScratch,
    PairSink, ScratchPool, ShardedSink, TouchTree,
};
use touch_geom::SpatialObject;
use touch_metrics::{Counters, NoTrace, Phase, TraceEvent, TraceSink};

/// What one fault-contained worker thread hands back: its partial work on
/// success (with the cancel cause it observed, if any), or the message of the
/// panic it contained.
type WorkerOutcome<T> = Result<(Counters, T, Option<CancelCause>), String>;

/// Folds per-worker outcomes into the phase result: counters of every
/// *successful* worker are merged into `counters` (a contained panic discards
/// that worker's partial tallies — they may be mid-update), successful
/// payloads are collected, and the first panicked worker (by index) becomes
/// [`JoinError::WorkerPanicked`] for `phase`.
fn fold_workers<T>(
    per_worker: Vec<WorkerOutcome<T>>,
    phase: Phase,
    counters: &mut Counters,
) -> Result<(Vec<T>, Option<CancelCause>), JoinError> {
    let mut payloads = Vec::with_capacity(per_worker.len());
    let mut cause = None;
    let mut panicked: Option<(usize, String)> = None;
    for (worker, outcome) in per_worker.into_iter().enumerate() {
        match outcome {
            Ok((local, payload, c)) => {
                counters.merge(&local);
                payloads.push(payload);
                cause = cause.or(c);
            }
            Err(detail) => {
                panicked.get_or_insert((worker, detail));
            }
        }
    }
    match panicked {
        Some((worker, detail)) => Err(JoinError::WorkerPanicked { phase, worker, detail }),
        None => Ok((payloads, cause)),
    }
}

/// Resolves a configured worker count: an explicit value is used as-is, `0`
/// auto-detects the machine's available parallelism (falling back to 1). The single
/// resolution rule shared by [`crate::ParallelConfig`] and the streaming engine's
/// configuration.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    }
}

/// Phase 1: builds the TOUCH hierarchy with the parallel stable STR sort
/// ([`par_str_sort`]) and [`TouchTree::from_tiled`]. Returns the tree and the
/// transient bytes of the sort scratch. Because the parallel sort is stable and
/// bit-identical to the sequential one, the tree is the same for every `threads`
/// value (including 1).
pub fn par_build_tree(
    objects: &[SpatialObject],
    partitions: usize,
    fanout: usize,
    threads: usize,
    sort_threshold: usize,
) -> (TouchTree, usize) {
    let mut items = objects.to_vec();
    let mut sort_aux = 0;
    if !items.is_empty() {
        let cap = TouchTree::leaf_capacity(items.len(), partitions);
        sort_aux = par_str_sort(&mut items, cap, threads, sort_threshold);
    }
    (TouchTree::from_tiled(items, partitions, fanout), sort_aux)
}

/// One worker's claim share of the assignment phase: the chunk index and the
/// `(node, object)` placements computed for it.
type ChunkBatch = (usize, Vec<(usize, SpatialObject)>);

/// Phase 2: computes assignment targets on `workers` threads (read-only tree
/// traversals over work-stealing chunk queues), then applies the batches in chunk
/// order so the per-node B-lists match the sequential [`TouchTree::assign`] exactly.
/// Returns the bytes of the transient batch buffers (0 on the sequential fallback).
pub fn par_assign(
    tree: &mut TouchTree,
    probe: &[SpatialObject],
    chunk_size: usize,
    workers: usize,
    counters: &mut Counters,
) -> usize {
    par_assign_traced(tree, probe, chunk_size, workers, counters, &NoTrace)
}

/// Traced form of [`par_assign`]: identical assignment (the untraced entry
/// point is this with a [`NoTrace`] sink), plus one
/// [`TraceEvent::AssignChunk`] span per claimed chunk — attributed to the
/// worker that computed it — and a [`TraceEvent::Steal`] per cross-queue
/// claim. The sequential fallback records the whole probe batch as a single
/// chunk on worker 0.
pub fn par_assign_traced(
    tree: &mut TouchTree,
    probe: &[SpatialObject],
    chunk_size: usize,
    workers: usize,
    counters: &mut Counters,
    trace: &dyn TraceSink,
) -> usize {
    let (aux, cause) =
        par_assign_ctl(tree, probe, chunk_size, workers, counters, ExecControl::with_trace(trace))
            .unwrap_or_else(|e| panic!("{e}"));
    debug_assert!(cause.is_none(), "never-triggering token cannot cancel");
    aux
}

/// The one parallel-assignment code path: [`par_assign_traced`] is this with a
/// never-triggering token, [`par_assign`] additionally with a disabled trace
/// sink.
///
/// Fault-tolerance contract (the parallel half of
/// [`SpatialJoinAlgorithm::try_join_into`](touch_core::SpatialJoinAlgorithm::try_join_into)):
///
/// * workers poll the cancel token per claimed chunk; on a trip every worker
///   stops claiming, the chunks already computed are still applied (in chunk
///   order) and the observed [`CancelCause`] is returned — the tree holds a
///   consistent subset of the full assignment,
/// * each worker's drain loop runs inside `catch_unwind`: one panicked worker
///   makes its siblings stop via a shared abort flag and surfaces as
///   `Err(`[`JoinError::WorkerPanicked`]`)` (lowest worker index wins); no
///   batch is applied to the tree and the panicked worker's partial counters
///   are discarded,
/// * with no trip and no panic the assignment is bit-identical to the
///   sequential [`TouchTree::assign`] at every worker count, as before.
pub fn par_assign_ctl(
    tree: &mut TouchTree,
    probe: &[SpatialObject],
    chunk_size: usize,
    workers: usize,
    counters: &mut Counters,
    ctl: ExecControl<'_>,
) -> Result<(usize, Option<CancelCause>), JoinError> {
    if probe.is_empty() {
        return Ok((0, None));
    }
    let trace = ctl.trace;
    let chunk_size = chunk_size.max(1);
    let chunk_count = probe.len().div_ceil(chunk_size);
    // Never spawn more workers than there are chunks to claim.
    let workers = workers.min(chunk_count);
    if workers <= 1 {
        let start_us = if trace.is_enabled() { trace.now_us() } else { 0 };
        // The chunk hook runs *inside* the catch region, mirroring the worker
        // loop below: a panicking trace sink surfaces as `WorkerPanicked`
        // instead of unwinding through the coordinator.
        let cause = touch_core::catch_phase(Phase::Assignment, 0, || {
            let cause = tree.assign_ctl(probe, counters, ctl.cancel);
            if trace.is_enabled() {
                trace.record(TraceEvent::AssignChunk {
                    chunk: 0,
                    worker: 0,
                    objects: probe.len(),
                    start_us,
                    duration_us: trace.now_us().saturating_sub(start_us),
                });
            }
            cause
        })?;
        return Ok((0, cause));
    }

    let queues = StealQueues::distribute(0..chunk_count, workers);
    let abort = AtomicBool::new(false);
    let tree_ref: &TouchTree = tree;
    let per_worker: Vec<WorkerOutcome<Vec<ChunkBatch>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (queues, abort) = (&queues, &abort);
                scope.spawn(move || {
                    let mut local = Counters::new();
                    let mut batches = Vec::new();
                    let mut cause = None;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        while !abort.load(Ordering::Relaxed) {
                            if let Some(c) = ctl.cancel.triggered() {
                                cause = Some(c);
                                break;
                            }
                            let Some((chunk, stolen_from)) = queues.claim_tracked(w) else {
                                break;
                            };
                            if trace.is_enabled() {
                                if let Some(victim) = stolen_from {
                                    trace.record(TraceEvent::Steal {
                                        worker: w,
                                        victim,
                                        at_us: trace.now_us(),
                                    });
                                }
                            }
                            let start_us = if trace.is_enabled() { trace.now_us() } else { 0 };
                            let lo = chunk * chunk_size;
                            let hi = (lo + chunk_size).min(probe.len());
                            let mut assigned = Vec::new();
                            for obj in &probe[lo..hi] {
                                match tree_ref.assignment_target(&obj.mbr, &mut local) {
                                    Some(node) => assigned.push((node, *obj)),
                                    None => local.record_filtered(),
                                }
                            }
                            if trace.is_enabled() {
                                trace.record(TraceEvent::AssignChunk {
                                    chunk,
                                    worker: w,
                                    objects: hi - lo,
                                    start_us,
                                    duration_us: trace.now_us().saturating_sub(start_us),
                                });
                            }
                            batches.push((chunk, assigned));
                        }
                    }));
                    match outcome {
                        Ok(()) => Ok((local, batches, cause)),
                        Err(payload) => {
                            abort.store(true, Ordering::Relaxed);
                            Err(panic_message(payload.as_ref()))
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // The worker closures contain every unwind via `catch_unwind`,
            // so `join` cannot fail — the expect documents that invariant.
            .map(|h| {
                #[allow(clippy::expect_used)]
                h.join().expect("fault-contained worker cannot panic")
            })
            .collect()
    });

    let (per_worker_batches, cause) = fold_workers(per_worker, Phase::Assignment, counters)?;
    let mut all_batches = Vec::with_capacity(chunk_count);
    for batches in per_worker_batches {
        all_batches.extend(batches);
    }
    // Peak transient footprint of this phase: every placement buffered at once,
    // just before application.
    let batch_elem = std::mem::size_of::<(usize, SpatialObject)>();
    let aux_bytes: usize =
        all_batches.iter().map(|(_, assigned)| assigned.capacity() * batch_elem).sum();
    // Apply in chunk order: B-objects land in their nodes in probe-dataset order,
    // exactly as the sequential assignment would have placed them.
    all_batches.sort_unstable_by_key(|(chunk, _)| *chunk);
    for (_, assigned) in all_batches {
        tree.extend_assigned(assigned);
    }
    Ok((aux_bytes, cause))
}

/// Phase 3: drains `work` through per-worker local joins, one worker per shard of
/// `sharded` with its own reusable [`LocalJoinScratch`]. The nodes are ordered by
/// descending estimated cost before distribution (round-robin seeding then spreads
/// the heavy nodes across workers, and owner pops and steals both take the largest
/// remaining task first — LPT); the sort happens in place, so a caller-retained
/// `work` buffer is reused without reallocating. Pairs are pushed as
/// `(tree_id, probe_id)`, or flipped when `swap_pairs` is set (the caller built the
/// tree on dataset B). When `self_join` is set the two sides are the same dataset
/// (aligned ids) and only pairs whose A-oriented ids satisfy `x < y` reach the
/// shards — identity pairs and mirrored duplicates are dropped **before** the
/// shared pair budget is spent, while the comparison/node-test counters stay
/// identical to the raw two-dataset run. Workers honour the sharded sink's
/// early-termination protocol: once a shard reports done (its share of a
/// [`PairSink::pair_limit`] budget is spent) the worker stops claiming nodes.
/// Returns the auxiliary bytes charged to the join phase: the sum over workers of
/// each worker's reserved scratch bytes (concurrent footprints coexist, unlike
/// the sequential join which charges a single scratch).
///
/// # Panics
/// Panics if `scratches` provides fewer scratches than `sharded` has shards.
#[allow(clippy::too_many_arguments)]
pub fn par_local_join(
    tree: &TouchTree,
    work: &mut [usize],
    params: &LocalJoinParams,
    swap_pairs: bool,
    self_join: bool,
    sharded: &mut ShardedSink,
    scratches: &mut [LocalJoinScratch],
    counters: &mut Counters,
) -> usize {
    par_local_join_traced(
        tree, work, params, swap_pairs, self_join, sharded, scratches, counters, &NoTrace,
    )
}

/// Traced form of [`par_local_join`]: identical join (the untraced entry point
/// is this with a [`NoTrace`] sink), plus a [`TraceEvent::NodeJoin`] span per
/// node — attributed to the worker that joined it — and a
/// [`TraceEvent::Steal`] per cross-queue claim.
#[allow(clippy::too_many_arguments)]
pub fn par_local_join_traced(
    tree: &TouchTree,
    work: &mut [usize],
    params: &LocalJoinParams,
    swap_pairs: bool,
    self_join: bool,
    sharded: &mut ShardedSink,
    scratches: &mut [LocalJoinScratch],
    counters: &mut Counters,
    trace: &dyn TraceSink,
) -> usize {
    let (aux, cause) = par_local_join_ctl(
        tree,
        work,
        params,
        swap_pairs,
        self_join,
        sharded,
        scratches,
        counters,
        ExecControl::with_trace(trace),
    )
    .unwrap_or_else(|e| panic!("{e}"));
    debug_assert!(cause.is_none(), "never-triggering token cannot cancel");
    aux
}

/// The one parallel local-join code path: [`par_local_join_traced`] is this
/// with a never-triggering token, [`par_local_join`] additionally with a
/// disabled trace sink.
///
/// Fault-tolerance contract: workers poll the cancel token per claimed node
/// (pairs already pushed into the shards stay — a cancelled run's shards hold
/// a subset of the full result); each worker's drain loop is contained by
/// `catch_unwind`, a panicked worker trips a shared abort flag and surfaces as
/// `Err(`[`JoinError::WorkerPanicked`]`)` with its partial counters discarded.
/// With no trip and no panic the join is bit-identical to
/// [`par_local_join_traced`].
#[allow(clippy::too_many_arguments)]
pub fn par_local_join_ctl(
    tree: &TouchTree,
    work: &mut [usize],
    params: &LocalJoinParams,
    swap_pairs: bool,
    self_join: bool,
    sharded: &mut ShardedSink,
    scratches: &mut [LocalJoinScratch],
    counters: &mut Counters,
    ctl: ExecControl<'_>,
) -> Result<(usize, Option<CancelCause>), JoinError> {
    assert!(
        scratches.len() >= sharded.shard_count(),
        "need one scratch per worker: {} shards, {} scratches",
        sharded.shard_count(),
        scratches.len()
    );
    let trace = ctl.trace;
    work.sort_by_key(|&idx| {
        let node = tree.node(idx);
        std::cmp::Reverse(node.a_count() as u64 * node.assigned_b().len() as u64)
    });
    let queues = StealQueues::distribute(work.iter().copied(), sharded.shard_count());
    let abort = AtomicBool::new(false);

    let per_worker: Vec<WorkerOutcome<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sharded
            .shards_mut()
            .iter_mut()
            .zip(scratches.iter_mut())
            .enumerate()
            .map(|(w, (shard, scratch))| {
                let (queues, abort) = (&queues, &abort);
                scope.spawn(move || {
                    let mut local = Counters::new();
                    let mut peak_aux = 0usize;
                    let mut cause = None;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        while !abort.load(Ordering::Relaxed) {
                            if let Some(c) = ctl.cancel.triggered() {
                                cause = Some(c);
                                break;
                            }
                            let Some((idx, stolen_from)) = queues.claim_tracked(w) else {
                                break;
                            };
                            if trace.is_enabled() {
                                if let Some(victim) = stolen_from {
                                    trace.record(TraceEvent::Steal {
                                        worker: w,
                                        victim,
                                        at_us: trace.now_us(),
                                    });
                                }
                            }
                            let aux = tree.local_join_node_traced(
                                idx,
                                params,
                                scratch,
                                &mut local,
                                &mut |tree_id, probe_id| {
                                    let (x, y) = if swap_pairs {
                                        (probe_id, tree_id)
                                    } else {
                                        (tree_id, probe_id)
                                    };
                                    if !self_join || x < y {
                                        shard.push(x, y);
                                    }
                                    !shard.is_done()
                                },
                                trace,
                                w,
                            );
                            peak_aux = peak_aux.max(aux);
                            if shard.is_done() {
                                break;
                            }
                        }
                    }));
                    match outcome {
                        Ok(()) => Ok((local, peak_aux, cause)),
                        Err(payload) => {
                            abort.store(true, Ordering::Relaxed);
                            Err(panic_message(payload.as_ref()))
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // The worker closures contain every unwind via `catch_unwind`,
            // so `join` cannot fail — the expect documents that invariant.
            .map(|h| {
                #[allow(clippy::expect_used)]
                h.join().expect("fault-contained worker cannot panic")
            })
            .collect()
    });

    let (peaks, cause) = fold_workers(per_worker, Phase::Join, counters)?;
    Ok((peaks.into_iter().sum(), cause))
}

/// The complete parallel join phase against any [`PairSink`]: fetches the work
/// list into the pool's reused buffer, caps the worker count at the available work
/// (never more shards than nodes to join), runs [`par_local_join`] over a
/// [`ShardedSink`] adapting the sink's mode and pair budget with one pooled
/// scratch per worker, merges the shards back and adds the pairs the sink
/// actually received to `counters.results` (not the shard totals — an
/// early-terminating sink may refuse part of the merge). The one place the
/// worker-capping/sharding decision lives,
/// so the one-shot join and the streaming engine cannot diverge on it. Returns the
/// auxiliary bytes charged to the join phase.
///
/// `pool` owns the per-worker scratches and the work-list buffer; a persistent
/// engine passes the same pool every epoch, so the join phase stops allocating
/// once the pool has warmed up. A one-shot join passes a fresh pool.
#[allow(clippy::too_many_arguments)]
pub fn par_join_into(
    tree: &TouchTree,
    params: &LocalJoinParams,
    threads: usize,
    swap_pairs: bool,
    self_join: bool,
    sink: &mut dyn PairSink,
    pool: &mut ScratchPool,
    counters: &mut Counters,
) -> usize {
    par_join_into_traced(
        tree, params, threads, swap_pairs, self_join, sink, pool, counters, &NoTrace,
    )
}

/// Traced form of [`par_join_into`]: identical join (the untraced entry point
/// is this with a [`NoTrace`] sink) running the sharded local joins through
/// [`par_local_join_traced`].
#[allow(clippy::too_many_arguments)]
pub fn par_join_into_traced(
    tree: &TouchTree,
    params: &LocalJoinParams,
    threads: usize,
    swap_pairs: bool,
    self_join: bool,
    sink: &mut dyn PairSink,
    pool: &mut ScratchPool,
    counters: &mut Counters,
    trace: &dyn TraceSink,
) -> usize {
    let (aux, cause) = par_join_into_ctl(
        tree,
        params,
        threads,
        swap_pairs,
        self_join,
        sink,
        pool,
        counters,
        ExecControl::with_trace(trace),
    )
    .unwrap_or_else(|e| panic!("{e}"));
    debug_assert!(cause.is_none(), "never-triggering token cannot cancel");
    aux
}

/// The one sharded join-phase code path: [`par_join_into_traced`] is this with
/// a never-triggering token. On an orderly exit — complete *or* cancelled —
/// the shards are merged into `sink` and the delivered pairs credited to
/// `counters.results`, so a cancelled run's sink holds a consistent subset of
/// the full result; on `Err` (a contained worker panic) the shards are
/// discarded and the sink receives nothing from this phase.
#[allow(clippy::too_many_arguments)]
pub fn par_join_into_ctl(
    tree: &TouchTree,
    params: &LocalJoinParams,
    threads: usize,
    swap_pairs: bool,
    self_join: bool,
    sink: &mut dyn PairSink,
    pool: &mut ScratchPool,
    counters: &mut Counters,
    ctl: ExecControl<'_>,
) -> Result<(usize, Option<CancelCause>), JoinError> {
    let mut work = pool.take_work();
    tree.nodes_with_assignments_into(&mut work);
    let workers = threads.min(work.len()).max(1);
    let mut sharded = ShardedSink::for_sink(sink, workers);
    let joined = par_local_join_ctl(
        tree,
        &mut work,
        params,
        swap_pairs,
        self_join,
        &mut sharded,
        pool.worker_scratches(workers),
        counters,
        ctl,
    );
    pool.restore_work(work);
    let (aux_bytes, cause) = joined?;
    // Credit only the pairs the sink actually received: a sink that became done
    // without declaring a pair budget makes merge_into stop delivering early.
    counters.results += sharded.merge_into(sink);
    Ok((aux_bytes, cause))
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::{LocalJoinKind, TouchConfig};
    use touch_geom::{Aabb, Dataset, Point3};

    fn lattice(side: usize, spacing: f64, box_side: f64, offset: f64) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(
                        x as f64 * spacing + offset,
                        y as f64 * spacing + offset,
                        z as f64 * spacing + offset,
                    );
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
                }
            }
        }
        ds
    }

    #[test]
    fn par_build_tree_matches_sequential_build() {
        let a = lattice(5, 1.5, 1.0, 0.0);
        let sequential = TouchTree::build(a.objects(), 16, 2);
        for threads in [1, 2, 4] {
            let (tree, _) = par_build_tree(a.objects(), 16, 2, threads, 8);
            assert_eq!(tree.node_count(), sequential.node_count(), "threads = {threads}");
            for idx in tree.node_indices() {
                assert_eq!(tree.node(idx).mbr, sequential.node(idx).mbr, "threads = {threads}");
            }
            assert_eq!(tree.a_objects(), sequential.a_objects(), "threads = {threads}");
        }
    }

    #[test]
    fn par_assign_matches_sequential_assign() {
        let a = lattice(4, 2.0, 1.0, 0.0);
        let b = lattice(5, 1.6, 0.9, 0.3);
        let mut sequential = TouchTree::build(a.objects(), 8, 2);
        let mut seq_counters = Counters::new();
        sequential.assign(b.objects(), &mut seq_counters);
        for workers in [1, 2, 4] {
            let mut tree = TouchTree::build(a.objects(), 8, 2);
            let mut counters = Counters::new();
            par_assign(&mut tree, b.objects(), 16, workers, &mut counters);
            assert_eq!(counters, seq_counters, "workers = {workers}");
            for idx in tree.node_indices() {
                assert_eq!(
                    tree.node(idx).assigned_b().len(),
                    sequential.node(idx).assigned_b().len(),
                    "workers = {workers}, node {idx}"
                );
            }
        }
    }

    #[test]
    fn par_local_join_matches_join_assigned() {
        let a = lattice(4, 1.5, 1.0, 0.0);
        let b = lattice(5, 1.2, 0.8, 0.2);
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut counters = Counters::new();
        tree.assign(b.objects(), &mut counters);
        let params = TouchConfig::default().local_join_params(0.5);
        assert_eq!(params.kind, LocalJoinKind::Grid);

        let mut seq_counters = Counters::new();
        let mut expected = Vec::new();
        tree.join_assigned(
            &params,
            &mut LocalJoinScratch::new(),
            &mut seq_counters,
            &mut |x, y| {
                expected.push((x, y));
                true
            },
        );
        expected.sort_unstable();

        for workers in [1, 3] {
            let mut sharded = ShardedSink::collecting(workers);
            let mut counters = Counters::new();
            let mut pool = ScratchPool::new();
            let mut work = tree.nodes_with_assignments();
            par_local_join(
                &tree,
                &mut work,
                &params,
                false,
                false,
                &mut sharded,
                pool.worker_scratches(workers),
                &mut counters,
            );
            let mut sink = touch_core::CollectingSink::new();
            sharded.merge_into(&mut sink);
            assert_eq!(sink.sorted_pairs(), expected, "workers = {workers}");
            assert_eq!(counters, seq_counters, "workers = {workers}");
        }
    }

    #[test]
    fn self_join_flag_keeps_each_unordered_pair_once() {
        let a = lattice(4, 1.2, 1.5, 0.0); // side > spacing: every neighbour pair overlaps
        let mut tree = TouchTree::build(a.objects(), 8, 2);
        let mut counters = Counters::new();
        tree.assign(a.objects(), &mut counters);
        let params = TouchConfig::default().local_join_params(0.5);

        // Brute-force unordered reference.
        let mut expected = Vec::new();
        for oa in a.iter() {
            for ob in a.iter() {
                if oa.id < ob.id && oa.mbr.intersects(&ob.mbr) {
                    expected.push((oa.id, ob.id));
                }
            }
        }
        expected.sort_unstable();
        assert!(!expected.is_empty());

        for workers in [1, 4] {
            let mut sink = touch_core::CollectingSink::new();
            let mut pool = ScratchPool::new();
            let mut counters = Counters::new();
            par_join_into(
                &tree,
                &params,
                workers,
                false,
                true,
                &mut sink,
                &mut pool,
                &mut counters,
            );
            assert_eq!(sink.sorted_pairs(), expected, "workers = {workers}");
            assert_eq!(counters.results, expected.len() as u64, "workers = {workers}");
        }
    }
}

//! Configuration of the parallel TOUCH join.

use serde::{Deserialize, Serialize};
use touch_core::{JoinPlanner, TouchConfig};

/// Configuration of [`crate::ParallelTouchJoin`].
///
/// Wraps the algorithmic knobs of the sequential join ([`TouchConfig`]) with the
/// execution knobs of the parallel subsystem. The defaults aim at "use the machine":
/// auto-detected thread count, assignment chunks small enough to load-balance but
/// large enough to amortise scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Number of worker threads; `0` means auto-detect
    /// ([`std::thread::available_parallelism`]).
    pub threads: usize,
    /// Number of probe objects per assignment work unit. Smaller chunks balance
    /// better, larger chunks schedule cheaper. Default: 4096.
    pub chunk_size: usize,
    /// Inputs smaller than this are STR-sorted sequentially during tree building —
    /// below it, the merge overhead of the parallel sort outweighs the win.
    /// Default: 8192.
    pub sort_threshold: usize,
    /// The algorithmic configuration shared with the sequential [`touch_core::TouchJoin`].
    pub touch: TouchConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        // The execution knobs share the planner's constants, so plans translated
        // from a default configuration and configurations synthesised from a
        // default plan can never drift apart.
        ParallelConfig {
            threads: 0,
            chunk_size: JoinPlanner::DEFAULT_CHUNK_SIZE,
            sort_threshold: JoinPlanner::DEFAULT_SORT_THRESHOLD,
            touch: TouchConfig::default(),
        }
    }
}

impl ParallelConfig {
    /// The default configuration pinned to an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads, ..ParallelConfig::default() }
    }

    /// Resolves the configured thread count: an explicit value is used as-is,
    /// `0` auto-detects the machine's available parallelism (falling back to 1).
    pub fn effective_threads(&self) -> usize {
        crate::phases::resolve_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ParallelConfig::default();
        assert_eq!(c.threads, 0);
        assert!(c.chunk_size > 0);
        assert!(c.sort_threshold > 0);
        assert_eq!(c.touch, TouchConfig::default());
        assert!(c.effective_threads() >= 1, "auto-detection must resolve to >= 1");
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(ParallelConfig::with_threads(5).effective_threads(), 5);
        assert_eq!(ParallelConfig::with_threads(1).effective_threads(), 1);
    }
}

//! The parallel TOUCH join: the three phases of Algorithm 1 executed on a thread
//! pool, with results and counters sharded per worker and merged at the end.

use crate::phases::{par_assign_ctl, par_build_tree, par_join_into_ctl};
use crate::ParallelConfig;
use touch_core::{
    catch_phase, time_phase_traced, ExecControl, ExecutionStrategy, JoinError, JoinPlan, PairSink,
    ScratchPool, SpatialJoinAlgorithm,
};
use touch_geom::Dataset;
use touch_metrics::{MemoryUsage, NoTrace, Phase, RunReport, TraceSink};

/// Multi-threaded TOUCH (implements [`SpatialJoinAlgorithm`]).
///
/// Algorithmically this is exactly [`touch_core::TouchJoin`] — same hierarchy, same
/// assignment rule, same local joins — executed on `threads` workers:
///
/// 1. **Build**: the STR sort of the tree dataset runs as a parallel stable merge
///    sort with slab-parallel recursion ([`crate::sort::par_str_sort`]), then the
///    hierarchy is assembled with [`touch_core::TouchTree::from_tiled`].
/// 2. **Assignment**: the probe dataset is cut into [`ParallelConfig::chunk_size`]
///    chunks; workers claim chunks from work-stealing queues and compute each
///    object's target node with the read-only [`touch_core::TouchTree::assignment_target`]; the
///    coordinator applies the batches in chunk order, reproducing the sequential
///    assignment exactly.
/// 3. **Join**: the nodes holding B-objects are sorted by estimated cost
///    (descending) and distributed over work-stealing deques
///    ([`crate::scheduler::StealQueues`]); each worker drains nodes through
///    [`touch_core::TouchTree::local_join_node`] into its own [`touch_core::SinkShard`] and
///    [`touch_metrics::Counters`], merged when the phase joins.
///
/// **Determinism**: because the parallel STR sort is stable and bit-identical to the
/// sequential sort, the tree, the assignment and every per-node local join are the
/// same for *every* thread count — the sorted result set **and all counters** equal
/// the sequential `TouchJoin` run configured with the same
/// [`touch_core::TouchConfig`]. Only the arrival order of pairs in the sink (and the
/// wall-clock phase times) vary between runs.
#[derive(Debug, Clone, Default)]
pub struct ParallelTouchJoin {
    config: ParallelConfig,
    plan: Option<JoinPlan>,
}

impl ParallelTouchJoin {
    /// Creates a parallel TOUCH join with the given configuration.
    pub fn new(config: ParallelConfig) -> Self {
        ParallelTouchJoin { config, plan: None }
    }

    /// Creates a parallel TOUCH join that executes a pre-computed, fully
    /// resolved [`JoinPlan`] (the planner's output): tree side, partitioning and
    /// grid sizing are pinned by the plan, the worker count comes from the
    /// plan's strategy. Like every `from_plan` constructor, the plan should be
    /// executed on the datasets it was planned for.
    pub fn from_plan(plan: JoinPlan) -> Self {
        ParallelTouchJoin {
            config: ParallelConfig {
                threads: plan.threads(),
                chunk_size: plan.chunk_size,
                sort_threshold: plan.sort_threshold,
                touch: plan.as_touch_config(),
            },
            plan: Some(plan),
        }
    }

    /// Default algorithmic configuration pinned to an explicit thread count
    /// (`with_threads(1)` is the sequential algorithm on the pool machinery).
    pub fn with_threads(threads: usize) -> Self {
        ParallelTouchJoin::new(ParallelConfig::with_threads(threads))
    }

    /// The configuration this join runs with (for a plan-pinned join, the
    /// equivalent explicit configuration).
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// The plan this join executes for datasets `a` and `b`: the pinned plan if
    /// one was provided, otherwise the faithful translation of the configuration.
    fn resolve_plan(&self, a: &Dataset, b: &Dataset) -> JoinPlan {
        self.plan.unwrap_or_else(|| {
            JoinPlan::from_touch_config(&self.config.touch, a, b)
                .with_strategy(ExecutionStrategy::Parallel {
                    threads: self.config.effective_threads(),
                })
                .with_execution(self.config.chunk_size, self.config.sort_threshold)
        })
    }
}

/// Executes a resolved [`JoinPlan`] on the work-stealing machinery: the single
/// code path behind [`ParallelTouchJoin::join_into`], shared by explicit
/// configurations and the planning layer so the two can never diverge.
fn execute_parallel(
    plan: &JoinPlan,
    a: &Dataset,
    b: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
) {
    execute_parallel_traced(plan, a, b, sink, report, &NoTrace);
}

/// Traced form of [`execute_parallel`]: the identical join (the untraced entry
/// point is this with a [`touch_metrics::NoTrace`] sink) plus phase spans,
/// per-chunk assignment spans, per-node join spans and steal events.
fn execute_parallel_traced(
    plan: &JoinPlan,
    a: &Dataset,
    b: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    trace: &dyn TraceSink,
) {
    execute_parallel_ctl(plan, a, b, sink, report, ExecControl::with_trace(trace), false)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// The one parallel execution path: [`execute_parallel_traced`] is this with a
/// never-triggering token; `self_join` selects the self-join form (the
/// index-order filter pushed into the worker emit closures, so shared pair
/// budgets are spent on post-filter pairs only).
///
/// The cooperation contract matches the sequential
/// `execute_sequential_ctl`: the token is polled between phases and — inside
/// [`par_assign_ctl`] / [`par_join_into_ctl`] — per chunk and per node by
/// every worker; a tripped token ends the run in an orderly way with the
/// partial report's completion stamped, a panicked worker is contained and
/// surfaced as `Err(`[`JoinError::WorkerPanicked`]`)` (its siblings stop via a
/// shared abort flag), and with an untriggered token the run is bit-identical
/// at every thread count.
fn execute_parallel_ctl(
    plan: &JoinPlan,
    a: &Dataset,
    b: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    ctl: ExecControl<'_>,
    self_join: bool,
) -> Result<(), JoinError> {
    report.plan = Some(plan.summary());
    let threads = plan.threads();
    report.threads = threads;
    let build_on_a = plan.build_on_a;
    let (tree_ds, probe_ds) = if build_on_a { (a, b) } else { (b, a) };
    if let Some(cause) = ctl.cancel.triggered() {
        report.completion = cause.completion();
        return Ok(());
    }

    // Phase 1: parallel STR sort, then hierarchy assembly (Algorithm 2). Each
    // phase is timed at its fork/join point, so the recorded duration is wall
    // clock — correct no matter how many workers ran inside. The sort has no
    // internal cancel points (it is memory-bound and brief relative to the
    // join), so the token is re-checked right after it.
    let (mut tree, sort_aux) = catch_phase(Phase::Build, 0, || {
        time_phase_traced(report, Phase::Build, ctl.trace, || {
            par_build_tree(
                tree_ds.objects(),
                plan.partitions,
                plan.fanout,
                threads,
                plan.sort_threshold,
            )
        })
    })?;
    if let Some(cause) = ctl.cancel.triggered() {
        report.memory_bytes = tree.memory_bytes() + sort_aux;
        report.completion = cause.completion();
        return Ok(());
    }

    // Phase 2: chunked parallel assignment (Algorithm 3).
    let mut counters = std::mem::take(&mut report.counters);
    let assigned = time_phase_traced(report, Phase::Assignment, ctl.trace, || {
        par_assign_ctl(&mut tree, probe_ds.objects(), plan.chunk_size, threads, &mut counters, ctl)
    });
    let assign_aux = match assigned {
        Ok((aux, None)) => aux,
        Ok((aux, Some(cause))) => {
            report.counters = counters;
            report.memory_bytes = tree.memory_bytes() + sort_aux + aux;
            report.completion = cause.completion();
            return Ok(());
        }
        Err(e) => {
            report.counters = counters;
            return Err(e);
        }
    };

    // Phase 3: work-stealing local joins (Algorithm 4). Grid sizing is pinned by
    // the plan — the same resolved parameters the sequential engine executes.
    let mut pool = ScratchPool::new();
    let joined = time_phase_traced(report, Phase::Join, ctl.trace, || {
        par_join_into_ctl(
            &tree,
            &plan.params,
            threads,
            !build_on_a,
            self_join,
            sink,
            &mut pool,
            &mut counters,
            ctl,
        )
    });
    match joined {
        Ok((aux_bytes, cause)) => {
            report.counters = counters;
            // Charge the transient buffers of every phase, not just the local
            // joins: unlike the sequential join, the parallel one buffers sort
            // scratch and assignment batches, and hiding them would flatter
            // TOUCH-P in the experiments' memory comparison.
            report.memory_bytes = tree.memory_bytes() + sort_aux + assign_aux + aux_bytes;
            if let Some(cause) = cause {
                report.completion = cause.completion();
            }
            Ok(())
        }
        Err(e) => {
            report.counters = counters;
            report.memory_bytes = tree.memory_bytes() + sort_aux + assign_aux;
            Err(e)
        }
    }
}

/// Self-join form of [`execute_parallel_traced`]: the identical three phases
/// over `a ⋈ base` (the possibly ε-extended view and the original dataset,
/// aligned ids) with the index-order filter pushed into the worker emit
/// closures via [`par_join_into_ctl`]'s `self_join` flag — shared pair
/// budgets are spent on post-filter pairs only, and pairs, counters and the
/// tree are bit-identical at every worker count.
fn execute_parallel_self_traced(
    plan: &JoinPlan,
    a: &Dataset,
    base: &Dataset,
    sink: &mut dyn PairSink,
    report: &mut RunReport,
    trace: &dyn TraceSink,
) {
    execute_parallel_ctl(plan, a, base, sink, report, ExecControl::with_trace(trace), true)
        .unwrap_or_else(|e| panic!("{e}"));
}

impl SpatialJoinAlgorithm for ParallelTouchJoin {
    fn name(&self) -> String {
        if self.config.threads > 0 {
            format!("TOUCH-P{}", self.config.threads)
        } else {
            "TOUCH-P".to_string()
        }
    }

    fn plan_for(&self, a: &Dataset, b: &Dataset) -> Option<JoinPlan> {
        Some(self.resolve_plan(a, b))
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        execute_parallel(&self.resolve_plan(a, b), a, b, sink, report);
    }

    fn join_traced(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        execute_parallel_traced(&self.resolve_plan(a, b), a, b, sink, report, trace);
    }

    fn plan_self_for(&self, a: &Dataset) -> Option<JoinPlan> {
        Some(self.resolve_plan(a, a))
    }

    fn join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
    ) {
        execute_parallel_self_traced(&self.resolve_plan(a, base), a, base, sink, report, &NoTrace);
    }

    fn join_self_traced(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        trace: &dyn TraceSink,
    ) {
        execute_parallel_self_traced(&self.resolve_plan(a, base), a, base, sink, report, trace);
    }

    fn try_join_into(
        &self,
        a: &Dataset,
        b: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        execute_parallel_ctl(&self.resolve_plan(a, b), a, b, sink, report, ctl, false)
    }

    fn try_join_self_into(
        &self,
        a: &Dataset,
        base: &Dataset,
        sink: &mut dyn PairSink,
        report: &mut RunReport,
        ctl: ExecControl<'_>,
    ) -> Result<(), JoinError> {
        execute_parallel_ctl(&self.resolve_plan(a, base), a, base, sink, report, ctl, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::{
        collect_join, distance_join, CountingSink, JoinOrder, LocalJoinStrategy, TouchConfig,
        TouchJoin,
    };
    use touch_geom::{Aabb, Point3};

    fn lattice(side: usize, spacing: f64, box_side: f64, offset: f64) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(
                        x as f64 * spacing + offset,
                        y as f64 * spacing + offset,
                        z as f64 * spacing + offset,
                    );
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
                }
            }
        }
        ds
    }

    fn brute_pairs(a: &Dataset, b: &Dataset) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr.intersects(&ob.mbr) {
                    out.push((oa.id, ob.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// A config that actually exercises the parallel paths on test-sized inputs.
    fn busy_config(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            chunk_size: 16,
            sort_threshold: 32,
            touch: TouchConfig { partitions: 16, ..TouchConfig::default() },
        }
    }

    #[test]
    fn matches_brute_force_for_every_thread_count() {
        let a = lattice(5, 1.5, 1.0, 0.0);
        let b = lattice(6, 1.3, 0.9, 0.4);
        let expected = brute_pairs(&a, &b);
        for threads in [1, 2, 3, 8] {
            let algo = ParallelTouchJoin::new(busy_config(threads));
            let (pairs, report) = collect_join(&algo, &a, &b);
            assert_eq!(pairs, expected, "threads = {threads}");
            assert_eq!(report.result_pairs(), expected.len() as u64);
            assert_eq!(report.threads, threads);
        }
    }

    #[test]
    fn is_bit_deterministic_against_the_sequential_join() {
        let a = lattice(5, 1.4, 1.0, 0.0);
        let b = lattice(6, 1.1, 0.8, 0.3);
        let touch_cfg = TouchConfig { partitions: 16, ..TouchConfig::default() };
        let (seq_pairs, seq_report) = collect_join(&TouchJoin::new(touch_cfg), &a, &b);
        for threads in [1, 2, 8] {
            let algo = ParallelTouchJoin::new(ParallelConfig {
                threads,
                chunk_size: 16,
                sort_threshold: 32,
                touch: touch_cfg,
            });
            let (pairs, report) = collect_join(&algo, &a, &b);
            assert_eq!(pairs, seq_pairs, "threads = {threads}: result set diverged");
            assert_eq!(
                report.counters, seq_report.counters,
                "threads = {threads}: counters diverged from the sequential join"
            );
        }
    }

    #[test]
    fn all_local_join_strategies_agree() {
        let a = lattice(4, 1.2, 1.0, 0.0);
        let b = lattice(5, 1.0, 0.7, 0.2);
        let expected = brute_pairs(&a, &b);
        for strategy in
            [LocalJoinStrategy::Grid, LocalJoinStrategy::PlaneSweep, LocalJoinStrategy::AllPairs]
        {
            let mut config = busy_config(4);
            config.touch.local_join = strategy;
            let (pairs, _) = collect_join(&ParallelTouchJoin::new(config), &a, &b);
            assert_eq!(pairs, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn join_order_does_not_change_results_or_orientation() {
        let a = lattice(4, 1.4, 1.0, 0.0);
        let b = lattice(6, 1.1, 0.8, 0.3); // larger than a
        let expected = brute_pairs(&a, &b);
        for order in [JoinOrder::SmallerAsTree, JoinOrder::TreeOnA, JoinOrder::TreeOnB] {
            let mut config = busy_config(4);
            config.touch.join_order = order;
            let (pairs, _) = collect_join(&ParallelTouchJoin::new(config), &a, &b);
            assert_eq!(pairs, expected, "join order {order:?}");
        }
    }

    #[test]
    fn empty_inputs_produce_empty_results() {
        let empty = Dataset::new();
        let b = lattice(3, 2.0, 1.0, 0.0);
        for threads in [1, 4] {
            let algo = ParallelTouchJoin::with_threads(threads);
            let (pairs, report) = collect_join(&algo, &empty, &b);
            assert!(pairs.is_empty());
            assert_eq!(report.result_pairs(), 0);
            let (pairs, report) = collect_join(&algo, &b, &empty);
            assert!(pairs.is_empty());
            // With an empty tree every probe object is filtered, like sequentially.
            assert_eq!(report.counters.filtered, b.len() as u64);
        }
    }

    #[test]
    fn self_join_matches_sequential_self_join_at_every_thread_count() {
        let a = lattice(5, 1.2, 1.5, 0.0); // side > spacing: every neighbour pair overlaps
        let touch_cfg = TouchConfig { partitions: 16, ..TouchConfig::default() };
        let mut seq_sink = touch_core::CollectingSink::new();
        let mut seq_report = RunReport::new("TOUCH", a.len(), a.len());
        TouchJoin::new(touch_cfg).join_self_into(&a, &a, &mut seq_sink, &mut seq_report);
        assert!(seq_report.result_pairs() > 0);
        assert!(seq_sink.sorted_pairs().iter().all(|&(x, y)| x < y));

        for threads in [1, 2, 8] {
            let algo = ParallelTouchJoin::new(ParallelConfig {
                threads,
                chunk_size: 16,
                sort_threshold: 32,
                touch: touch_cfg,
            });
            let mut sink = touch_core::CollectingSink::new();
            let mut report = RunReport::new(algo.name(), a.len(), a.len());
            algo.join_self_into(&a, &a, &mut sink, &mut report);
            assert_eq!(sink.sorted_pairs(), seq_sink.sorted_pairs(), "threads = {threads}");
            assert_eq!(report.counters, seq_report.counters, "threads = {threads}");
        }
    }

    #[test]
    fn distance_join_translation_works() {
        let a = lattice(3, 3.0, 1.0, 0.0);
        let b = lattice(3, 3.0, 1.0, 1.6); // gap of 0.6 between neighbours
        let algo = ParallelTouchJoin::new(busy_config(4));
        let mut sink = CountingSink::new();
        let miss = distance_join(&algo, &a, &b, 0.3, &mut sink);
        let mut sink = CountingSink::new();
        let hit = distance_join(&algo, &a, &b, 0.8, &mut sink);
        assert!(hit.result_pairs() > miss.result_pairs());
        assert_eq!(hit.epsilon, 0.8);
    }

    #[test]
    fn phase_times_and_name_are_reported() {
        let a = lattice(5, 1.5, 1.0, 0.0);
        let b = lattice(5, 1.5, 1.0, 0.2);
        let algo = ParallelTouchJoin::with_threads(2);
        assert_eq!(algo.name(), "TOUCH-P2");
        assert_eq!(ParallelTouchJoin::default().name(), "TOUCH-P");
        let mut sink = CountingSink::new();
        let report = algo.join(&a, &b, &mut sink);
        assert!(report.total_time() > std::time::Duration::ZERO);
        assert_eq!(report.threads, 2);
        assert!(report.memory_bytes > 0);
        assert_eq!(report.result_pairs(), sink.count());
    }
}

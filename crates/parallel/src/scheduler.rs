//! Work-stealing task distribution for the join phase.
//!
//! The local joins of TOUCH are independent per-node tasks of wildly varying size
//! (the root node of a skewed workload can hold orders of magnitude more work than a
//! leaf), so static splitting would leave threads idle. [`StealQueues`] implements a
//! work-stealing discipline tuned for *pre-costed* task sets: every worker owns a
//! deque seeded with a share of the tasks in descending cost order and pops from its
//! *own front* (largest first — the LPT heuristic); a worker that runs dry steals
//! from the *front* of a victim's deque, claiming the largest still-unclaimed task
//! so the biggest jobs start as early as possible and never pile up at the end of
//! the phase. (Classic Chase–Lev deques steal from the opposite end to reduce
//! owner/thief contention; with tasks this coarse — whole per-node joins — the
//! mutex contention is negligible and shortest-makespan ordering wins.)
//!
//! Tasks are claimed exactly once and never re-queued, so a worker that finds every
//! deque empty can terminate: no new work can appear.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Per-worker task deques with stealing.
///
/// `T` is the task type — for the join phase a node index, for tests anything
/// `Send`. The queues are populated once at construction and only ever drained.
#[derive(Debug)]
pub struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealQueues<T> {
    /// Distributes `tasks` round-robin over `workers` deques.
    ///
    /// Callers that know task costs should pass the tasks in **descending cost
    /// order**: round-robin then gives every worker a balanced starter set, and
    /// both own pops and steals (front-of-deque) pick up the biggest remaining
    /// tasks first.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn distribute(tasks: impl IntoIterator<Item = T>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            queues[i % workers].push_back(task);
        }
        StealQueues { queues: queues.into_iter().map(Mutex::new).collect() }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Claims the next task for `worker`: its own deque's front, or — once that is
    /// empty — the front of the first non-empty victim deque (the victim's largest
    /// remaining task, given descending-cost seeding). Returns `None` when every
    /// deque is empty, which is terminal (tasks are never re-queued).
    ///
    /// A poisoned deque lock is recovered, not propagated: a deque holds plain
    /// task values whose invariants a mid-`pop_front` panic cannot break, and
    /// the fault-tolerant join paths contain a panicked worker instead of
    /// aborting — its surviving siblings must still be able to drain (or
    /// observe the abort flag through) the queues.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn claim(&self, worker: usize) -> Option<T> {
        self.claim_tracked(worker).map(|(task, _)| task)
    }

    /// [`StealQueues::claim`] that additionally reports *where* the task came
    /// from: `None` for the worker's own deque, `Some(victim)` for a steal.
    /// This is what the execution-trace layer records as steal events; the
    /// claiming discipline is identical to `claim` (which is this, with the
    /// provenance dropped).
    ///
    /// # Panics
    /// Same as [`StealQueues::claim`].
    pub fn claim_tracked(&self, worker: usize) -> Option<(T, Option<usize>)> {
        let pop = |queue: &Mutex<VecDeque<T>>| {
            queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
        };
        if let Some(task) = pop(&self.queues[worker]) {
            return Some((task, None));
        }
        for offset in 1..self.queues.len() {
            let victim = (worker + offset) % self.queues.len();
            if let Some(task) = pop(&self.queues[victim]) {
                return Some((task, Some(victim)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distributes_round_robin() {
        let q = StealQueues::distribute(0..10, 3);
        assert_eq!(q.workers(), 3);
        // Worker 0 owns 0,3,6,9 and pops its own front first.
        assert_eq!(q.claim(0), Some(0));
        assert_eq!(q.claim(0), Some(3));
        assert_eq!(q.claim(1), Some(1));
    }

    #[test]
    fn claims_every_task_exactly_once() {
        let q = StealQueues::distribute(0..100, 4);
        let mut seen = HashSet::new();
        // Worker 2 drains everything: own queue first, then steals.
        while let Some(t) = q.claim(2) {
            assert!(seen.insert(t), "task {t} claimed twice");
        }
        assert_eq!(seen.len(), 100);
        for w in 0..4 {
            assert_eq!(q.claim(w), None, "drained queues must stay empty");
        }
    }

    #[test]
    fn steals_the_victims_largest_remaining_task() {
        // Tasks arrive in descending cost order, so lower value = costlier task.
        let q = StealQueues::distribute(0..8, 2);
        // Worker 1 owns 1,3,5,7. Drain it, then it steals worker 0's *front* (0),
        // the costliest task worker 0 has not started yet.
        for expected in [1, 3, 5, 7] {
            assert_eq!(q.claim(1), Some(expected));
        }
        assert_eq!(q.claim(1), Some(0), "steal must take the victim's largest task");
        assert_eq!(q.claim(0), Some(2), "owner continues with its next-largest");
    }

    #[test]
    fn claim_tracked_reports_the_victim() {
        let q = StealQueues::distribute(0..4, 2);
        // Worker 0 owns 0,2 — own pops carry no victim.
        assert_eq!(q.claim_tracked(0), Some((0, None)));
        assert_eq!(q.claim_tracked(0), Some((2, None)));
        // Its own deque is dry: the next claim is a steal from worker 1.
        assert_eq!(q.claim_tracked(0), Some((1, Some(1))));
        assert_eq!(q.claim_tracked(1), Some((3, None)));
        assert_eq!(q.claim_tracked(1), None);
    }

    #[test]
    fn concurrent_workers_partition_the_tasks() {
        let n = 10_000;
        let q = StealQueues::distribute(0..n, 8);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|w| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(t) = q.claim(w) {
                            mine.push(t);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "every task exactly once");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = StealQueues::distribute(0..3, 0);
    }
}

//! The simulated world: entity state plus the integration step.

use touch_datagen::{MovingObjects, MovingObjectsSpec, SpaceConfig};
use touch_geom::{Aabb, Dataset, Point3};

/// A moving-object world: `n` entities with positions, velocities and collision
/// radii, living in a cubic space whose walls they bounce off.
///
/// The world owns nothing but the entity state — the join machinery lives in
/// [`crate::TickEngine`], which derives a fresh MBR [`Dataset`] from the
/// positions every tick. Entity `i`'s dataset id is always `i`, so result pairs
/// are entity-index pairs.
///
/// Everything is deterministic: [`World::random`] draws its initial state from
/// the seeded `touch-datagen` streams, and [`World::step`] is pure f64
/// arithmetic with no data-dependent ordering, so two worlds built from the
/// same spec and seed stay bit-identical forever.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    positions: Vec<Point3>,
    velocities: Vec<Point3>,
    radii: Vec<f64>,
    space: SpaceConfig,
}

impl World {
    /// Builds a world from a generated initial state and the space it lives in.
    pub fn from_parts(objects: MovingObjects, space: SpaceConfig) -> Self {
        World {
            positions: objects.positions,
            velocities: objects.velocities,
            radii: objects.radii,
            space,
        }
    }

    /// Builds a world from a workload specification and a seed.
    pub fn from_spec(spec: &MovingObjectsSpec, seed: u64) -> Self {
        World::from_parts(spec.generate(seed), spec.space)
    }

    /// The default world: `count` entities, clustered spawn, uniform velocities
    /// (see [`MovingObjectsSpec::new`]), deterministic in `seed`.
    pub fn random(count: usize, seed: u64) -> Self {
        World::from_spec(&MovingObjectsSpec::new(count), seed)
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the world has no entities.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Entity positions (index = entity id).
    pub fn positions(&self) -> &[Point3] {
        &self.positions
    }

    /// Entity velocities (index = entity id).
    pub fn velocities(&self) -> &[Point3] {
        &self.velocities
    }

    /// Entity collision radii (index = entity id).
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// The cubic space the entities bounce in.
    pub fn space(&self) -> SpaceConfig {
        self.space
    }

    /// Advances every entity by `dt`: explicit Euler integration with a
    /// reflective bounce at the space walls.
    ///
    /// A coordinate that crosses a wall is mirrored back inside and the
    /// corresponding velocity component flips sign; a final clamp keeps even
    /// pathological velocities (`|v·dt| > size`) inside `[0, size]`, so the
    /// world extent — and with it the planner's density statistics — stays
    /// bounded.
    pub fn step(&mut self, dt: f64) {
        let size = self.space.size;
        for (p, v) in self.positions.iter_mut().zip(self.velocities.iter_mut()) {
            let (x, vx) = bounce(p.x, v.x, dt, size);
            let (y, vy) = bounce(p.y, v.y, dt, size);
            let (z, vz) = bounce(p.z, v.z, dt, size);
            *p = Point3::new(x, y, z);
            *v = Point3::new(vx, vy, vz);
        }
    }

    /// Rewrites `out` with the current collision boxes: entity `i` becomes the
    /// cube `position ± radius` with id `i`.
    ///
    /// Reuses `out`'s allocation ([`Dataset::clear`]), so the per-tick steady
    /// state allocates nothing.
    pub fn fill_dataset(&self, out: &mut Dataset) {
        out.clear();
        for (p, &r) in self.positions.iter().zip(self.radii.iter()) {
            out.push_mbr(Aabb::new(*p - Point3::splat(r), *p + Point3::splat(r)));
        }
    }
}

/// One axis of the Euler step: advance, mirror at the walls, flip the velocity
/// on a bounce, clamp as the backstop.
#[inline]
fn bounce(p: f64, v: f64, dt: f64, size: f64) -> (f64, f64) {
    let mut p = p + v * dt;
    let mut v = v;
    if p < 0.0 {
        p = -p;
        v = -v;
    }
    if p > size {
        p = 2.0 * size - p;
        v = -v;
    }
    (p.clamp(0.0, size), v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_world_is_seed_stable() {
        let a = World::random(100, 7);
        let b = World::random(100, 7);
        assert_eq!(a, b);
        let c = World::random(100, 8);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn step_keeps_entities_inside_the_space() {
        let mut w = World::random(200, 42);
        let size = w.space().size;
        for _ in 0..50 {
            w.step(10.0);
        }
        for p in w.positions() {
            for axis in 0..3 {
                let c = p.coord(axis);
                assert!((0.0..=size).contains(&c), "coordinate {c} escaped [0, {size}]");
            }
        }
    }

    #[test]
    fn bounce_reflects_and_flips_velocity() {
        // Crossing the lower wall mirrors the overshoot back inside.
        let (p, v) = bounce(1.0, -3.0, 1.0, 10.0);
        assert_eq!((p, v), (2.0, 3.0));
        // Crossing the upper wall likewise.
        let (p, v) = bounce(9.0, 3.0, 1.0, 10.0);
        assert_eq!((p, v), (8.0, -3.0));
        // Interior motion is plain Euler.
        let (p, v) = bounce(5.0, 1.5, 2.0, 10.0);
        assert_eq!((p, v), (8.0, 1.5));
    }

    #[test]
    fn fill_dataset_aligns_ids_with_entity_indices() {
        let w = World::random(50, 3);
        let mut ds = Dataset::new();
        w.fill_dataset(&mut ds);
        assert_eq!(ds.len(), 50);
        for (i, obj) in ds.iter().enumerate() {
            assert_eq!(obj.id as usize, i);
            let p = w.positions()[i];
            let r = w.radii()[i];
            assert_eq!(obj.mbr.min, p - Point3::splat(r));
            assert_eq!(obj.mbr.max, p + Point3::splat(r));
        }
        // Refilling reuses the allocation and replaces the contents.
        let before = ds.objects().as_ptr();
        w.fill_dataset(&mut ds);
        assert_eq!(ds.objects().as_ptr(), before);
    }
}

//! The tick engine: one planned ε self-join per simulation step, with all
//! per-tick memory reused across ticks.

use std::fmt::Write as _;
use std::time::Instant;

use touch_core::{
    catch_phase, deliver, CancelCause, CountingSink, DatasetStats, ExecControl, JoinError,
    JoinPlan, JoinPlanner, PairSink, PlanEnv, ScratchPool, TouchTree,
};
use touch_geom::{Dataset, ObjectId, SpatialObject};
use touch_metrics::{Counters, Phase, PlanSummary, TickSummary};
use touch_parallel::phases::{par_assign_ctl, par_join_into_ctl, resolve_threads};
use touch_parallel::sort::par_str_sort;

use crate::World;

/// Configuration of a tick loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickConfig {
    /// Collision/sensor distance: entities within `epsilon` of each other (box
    /// distance) are reported as a pair. `0.0` reports touching boxes only.
    pub epsilon: f64,
    /// Worker threads offered to the planner (0 = auto-detect). The plan decides
    /// how many it actually uses; the result set is identical at every count.
    pub threads: usize,
    /// Integration time step.
    pub dt: f64,
    /// `true` (the default) materialises the per-tick pair list — required by
    /// the determinism suite. `false` only counts pairs, the cheap mode for
    /// throughput measurements at large entity counts.
    pub collect_pairs: bool,
    /// Re-plan when the tree-side statistics drift by more than this relative
    /// fraction (count, density or mean volume) since the last plan. `0.0`
    /// re-plans every tick; `f64::INFINITY` never re-plans.
    pub replan_drift: f64,
}

impl Default for TickConfig {
    fn default() -> Self {
        TickConfig { epsilon: 0.0, threads: 1, dt: 1.0, collect_pairs: true, replan_drift: 0.5 }
    }
}

impl TickConfig {
    /// This configuration with a collision distance.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// This configuration with a worker-thread count (0 = auto-detect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration counting pairs instead of materialising them.
    pub fn counting_only(mut self) -> Self {
        self.collect_pairs = false;
        self
    }
}

/// The record of one completed tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickRecord {
    /// 1-based index of the tick.
    pub tick: usize,
    /// Collision/sensor pairs found this tick.
    pub pairs: u64,
    /// Wall-clock latency of the tick in microseconds (≥ 1).
    pub latency_us: u64,
    /// `true` if statistics drift triggered a re-plan this tick.
    pub replanned: bool,
}

/// The aggregated report of a tick-loop run: the latency/pair summary plus the
/// run's fixed parameters and the currently active plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// Latency distribution and exact tallies.
    pub summary: TickSummary,
    /// Collision distance of the run.
    pub epsilon: f64,
    /// Integration time step.
    pub dt: f64,
    /// Worker threads the active plan runs with.
    pub threads: usize,
    /// Summary of the plan active when the report was taken.
    pub plan: PlanSummary,
}

impl TickReport {
    /// Flat JSON rendering of the report (hand-rolled; the vendored serde is a
    /// no-op stub). The `ticks` object matches [`TickSummary::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"epsilon\":{},\"dt\":{},\"threads\":{},\"plan\":{},\"ticks\":{}}}",
            self.epsilon,
            self.dt,
            self.threads,
            touch_metrics::json_str(&self.plan.compact()),
            self.summary.to_json(),
        );
        out
    }

    /// CSV rendering: the [`TickSummary`] header line followed by its row.
    pub fn to_csv(&self) -> String {
        format!("{}\n{}\n", TickSummary::csv_header(), self.summary.to_csv_row())
    }
}

/// Drives a [`World`] with one planned self-join per tick.
///
/// Each [`TickEngine::tick`]:
///
/// 1. integrates positions ([`World::step`]),
/// 2. rebuilds the collision dataset and (for ε > 0) its ε-extension into
///    reused buffers,
/// 3. checks the tree-side [`DatasetStats`] against the stats the active plan
///    was derived from, re-planning only when the relative drift exceeds
///    [`TickConfig::replan_drift`],
/// 4. rebuilds the TOUCH hierarchy *into the buffer reclaimed from last tick's
///    tree* ([`TouchTree::into_items`]), assigns, and runs the self-join local
///    joins through a reused [`ScratchPool`],
/// 5. records the tick's wall-clock latency into the [`TickSummary`].
///
/// The per-tick pair set is bit-identical at every thread count and across the
/// sequential/parallel engines — the kernels' determinism contract — so the
/// simulation itself is reproducible: same world, same seed, same pairs, at any
/// parallelism.
#[derive(Debug)]
pub struct TickEngine {
    world: World,
    config: TickConfig,
    planner: JoinPlanner,
    env: PlanEnv,
    plan: JoinPlan,
    plan_stats: DatasetStats,
    dataset: Dataset,
    extended: Dataset,
    tree_buf: Vec<SpatialObject>,
    pool: ScratchPool,
    pairs: Vec<(ObjectId, ObjectId)>,
    summary: TickSummary,
    counters: Counters,
    ticks: usize,
}

impl TickEngine {
    /// Builds a tick engine over `world`, planning the self-join from the
    /// world's initial statistics.
    pub fn new(world: World, config: TickConfig) -> Self {
        let mut dataset = Dataset::new();
        world.fill_dataset(&mut dataset);
        let mut extended = Dataset::new();
        if config.epsilon > 0.0 {
            dataset.extend_into(config.epsilon, &mut extended);
        }
        let tree_side = if config.epsilon > 0.0 { &extended } else { &dataset };
        let plan_stats = DatasetStats::from_dataset(tree_side);
        let mut env = PlanEnv::sequential().with_threads(resolve_threads(config.threads));
        env.epsilon = config.epsilon;
        let planner = JoinPlanner::default();
        let plan = planner.plan_self(&plan_stats, &env);
        let entities = world.len();
        let engine = format!("tick:{}", plan.summary().strategy);
        TickEngine {
            world,
            config,
            planner,
            env,
            plan,
            plan_stats,
            dataset,
            extended,
            tree_buf: Vec::new(),
            pool: ScratchPool::new(),
            pairs: Vec::new(),
            summary: TickSummary::new(engine, entities),
            counters: Counters::new(),
            ticks: 0,
        }
    }

    /// Runs one tick: integrate, join, record. Returns the tick's record; the
    /// pair list (when collected) is available from [`TickEngine::pairs`].
    ///
    /// # Panics
    /// Panics if a join phase panics — use [`TickEngine::try_tick`] to contain
    /// that instead.
    pub fn tick(&mut self) -> TickRecord {
        self.try_tick(ExecControl::infallible()).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TickEngine::tick`]: polls `ctl.cancel` between and inside
    /// the join phases and contains phase panics.
    ///
    /// A tick is **all-or-nothing** — there is no meaningful "partial tick" —
    /// so a token tripping mid-tick returns [`JoinError::Cancelled`] /
    /// [`JoinError::DeadlineExceeded`] rather than a partial record:
    ///
    /// * a trip **before** the tick starts leaves the engine and world
    ///   completely untouched;
    /// * a trip (or contained panic) **mid-tick** abandons the tick — the
    ///   world has integrated one step, but no record is produced, nothing is
    ///   added to the summary or counters, the pair list is cleared and
    ///   [`TickEngine::ticks`] does not advance — and the engine stays fully
    ///   usable for the next tick.
    pub fn try_tick(&mut self, ctl: ExecControl<'_>) -> Result<TickRecord, JoinError> {
        if let Some(cause) = ctl.cancel.triggered() {
            return Err(cause.into_error());
        }
        let start = Instant::now();
        self.world.step(self.config.dt);
        self.world.fill_dataset(&mut self.dataset);
        let eps = self.config.epsilon;
        if eps > 0.0 {
            self.dataset.extend_into(eps, &mut self.extended);
        }
        // Re-plan only when the world has drifted: the stats pass is O(n), the
        // re-plan itself is O(1), and a stale plan is still correct — just
        // possibly mis-tuned.
        let stats = DatasetStats::from_objects(if eps > 0.0 {
            self.extended.objects()
        } else {
            self.dataset.objects()
        });
        let replanned = self.maybe_replan(&stats);
        let threads = self.plan.threads();

        // Rebuild the hierarchy into last tick's reclaimed item buffer. A
        // panicking build loses the buffer (the next tick re-allocates it) but
        // nothing else: the tree never existed, the engine state is pre-tick.
        let mut items = std::mem::take(&mut self.tree_buf);
        items.clear();
        items.extend_from_slice(if eps > 0.0 {
            self.extended.objects()
        } else {
            self.dataset.objects()
        });
        let partitions = self.plan.partitions;
        let fanout = self.plan.fanout;
        let sort_threshold = self.plan.sort_threshold;
        let mut tree = catch_phase(Phase::Build, 0, move || {
            if !items.is_empty() {
                let cap = TouchTree::leaf_capacity(items.len(), partitions);
                par_str_sort(&mut items, cap, threads, sort_threshold);
            }
            TouchTree::from_tiled(items, partitions, fanout)
        })?;

        let mut counters = Counters::new();
        let assigned = par_assign_ctl(
            &mut tree,
            self.dataset.objects(),
            self.plan.chunk_size,
            threads,
            &mut counters,
            ctl,
        );
        let assign_cause = match assigned {
            Ok((_, cause)) => cause,
            Err(e) => {
                self.tree_buf = tree.into_items();
                return Err(e);
            }
        };
        if let Some(cause) = assign_cause {
            self.tree_buf = tree.into_items();
            return Err(cause.into_error());
        }

        self.pairs.clear();
        let joined = if self.config.collect_pairs {
            let mut sink = VecPairSink { pairs: &mut self.pairs };
            run_self_join(&tree, &self.plan, threads, &mut sink, &mut self.pool, &mut counters, ctl)
        } else {
            let mut sink = CountingSink::default();
            run_self_join(&tree, &self.plan, threads, &mut sink, &mut self.pool, &mut counters, ctl)
        };
        self.tree_buf = tree.into_items();
        match joined {
            Ok(None) => {}
            // An abandoned tick must not leave a half-collected pair list
            // posing as a tick's output.
            Ok(Some(cause)) => {
                self.pairs.clear();
                return Err(cause.into_error());
            }
            Err(e) => {
                self.pairs.clear();
                return Err(e);
            }
        }
        if self.config.collect_pairs {
            // Sorting makes the list identical across thread counts; the *set*
            // already is, but parallel shard merge order is not.
            self.pairs.sort_unstable();
        }

        let latency_us = (start.elapsed().as_micros() as u64).max(1);
        let pairs = counters.results;
        self.counters.merge(&counters);
        self.summary.record(latency_us, pairs, replanned);
        self.ticks += 1;
        Ok(TickRecord { tick: self.ticks, pairs, latency_us, replanned })
    }

    /// Runs `ticks` ticks, returning the per-tick records.
    pub fn run(&mut self, ticks: usize) -> Vec<TickRecord> {
        (0..ticks).map(|_| self.tick()).collect()
    }

    /// Last tick's collision pairs as sorted entity-index pairs `(i, j)` with
    /// `i < j` (empty in counting-only mode).
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// The simulated world (positions reflect all ticks run so far).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Number of completed ticks — the `tick` field of the last returned
    /// [`TickRecord`]. An abandoned tick (fault or cancellation mid-tick)
    /// does not advance it.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// The currently active plan.
    pub fn plan(&self) -> &JoinPlan {
        &self.plan
    }

    /// The running latency/pair summary.
    pub fn summary(&self) -> &TickSummary {
        &self.summary
    }

    /// Work counters accumulated over every tick so far. Deterministic for a
    /// given world, seed and configuration — the regression gate's record of
    /// how much work the tick loop performs.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The aggregated report of the run so far.
    pub fn report(&self) -> TickReport {
        TickReport {
            summary: self.summary.clone(),
            epsilon: self.config.epsilon,
            dt: self.config.dt,
            threads: self.plan.threads(),
            plan: self.plan.summary(),
        }
    }

    /// Re-plans if `stats` drifted past the configured threshold; returns
    /// whether it did.
    fn maybe_replan(&mut self, stats: &DatasetStats) -> bool {
        let drift = relative_drift(self.plan_stats.count() as f64, stats.count() as f64)
            .max(relative_drift(self.plan_stats.density(), stats.density()))
            .max(relative_drift(self.plan_stats.mean_volume(), stats.mean_volume()));
        if drift <= self.config.replan_drift {
            return false;
        }
        self.plan = self.planner.plan_self(stats, &self.env);
        self.plan_stats = stats.clone();
        true
    }
}

/// Relative change from `old` to `new`, treating a zero baseline as infinite
/// drift (unless the value stayed zero).
fn relative_drift(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((new - old) / old).abs()
    }
}

/// Runs the self-join phase of one tick: sequential through
/// [`TouchTree::join_assigned_ctl`] with the in-closure `a < b` filter,
/// parallel through [`par_join_into_ctl`] with its in-kernel self-join flag.
/// Both credit `counters.results` with exactly the pairs the sink received,
/// poll `ctl.cancel` per node, and contain worker panics.
fn run_self_join(
    tree: &TouchTree,
    plan: &JoinPlan,
    threads: usize,
    sink: &mut dyn PairSink,
    pool: &mut ScratchPool,
    counters: &mut Counters,
    ctl: ExecControl<'_>,
) -> Result<Option<CancelCause>, JoinError> {
    if threads <= 1 {
        let mut results = 0u64;
        let joined = catch_phase(Phase::Join, 0, || {
            tree.join_assigned_ctl(
                &plan.params,
                pool.primary(),
                counters,
                &mut |a, b| {
                    if a < b {
                        deliver(sink, a, b, &mut results)
                    } else {
                        !sink.is_done()
                    }
                },
                ctl,
                0,
            )
        });
        counters.results += results;
        joined.map(|(_, cause)| cause)
    } else {
        par_join_into_ctl(tree, &plan.params, threads, false, true, sink, pool, counters, ctl)
            .map(|(_, cause)| cause)
    }
}

/// A sink appending into a borrowed pair vector — the tick loop's collecting
/// sink, reusing the engine's allocation across ticks.
struct VecPairSink<'a> {
    pairs: &'a mut Vec<(ObjectId, ObjectId)>,
}

impl PairSink for VecPairSink<'_> {
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.pairs.push((a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn brute_force(engine: &TickEngine, eps: f64) -> BTreeSet<(ObjectId, ObjectId)> {
        let mut ds = Dataset::new();
        engine.world().fill_dataset(&mut ds);
        let ext = ds.extended(eps);
        let mut pairs = BTreeSet::new();
        for x in ext.objects() {
            for y in ds.objects() {
                if x.id < y.id && x.mbr.intersects(&y.mbr) {
                    pairs.insert((x.id, y.id));
                }
            }
        }
        pairs
    }

    #[test]
    fn tick_pairs_match_brute_force_every_tick() {
        let config = TickConfig::default().with_epsilon(20.0);
        let mut engine = TickEngine::new(World::random(150, 11), config);
        for _ in 0..5 {
            let rec = engine.tick();
            let expected = brute_force(&engine, 20.0);
            let got: BTreeSet<_> = engine.pairs().iter().copied().collect();
            assert_eq!(got, expected, "tick {}", rec.tick);
            assert_eq!(rec.pairs as usize, expected.len(), "tick {}", rec.tick);
        }
    }

    #[test]
    fn pair_sets_are_identical_across_thread_counts() {
        let baseline: Vec<Vec<(ObjectId, ObjectId)>> = {
            let mut e =
                TickEngine::new(World::random(120, 5), TickConfig::default().with_epsilon(30.0));
            (0..4)
                .map(|_| {
                    e.tick();
                    e.pairs().to_vec()
                })
                .collect()
        };
        for threads in [2, 4] {
            let config = TickConfig::default().with_epsilon(30.0).with_threads(threads);
            let mut e = TickEngine::new(World::random(120, 5), config);
            for (t, expected) in baseline.iter().enumerate() {
                e.tick();
                assert_eq!(e.pairs(), &expected[..], "threads {threads}, tick {t}");
            }
        }
    }

    #[test]
    fn counting_mode_reports_the_same_totals() {
        let collect = {
            let mut e =
                TickEngine::new(World::random(100, 9), TickConfig::default().with_epsilon(25.0));
            e.run(3).iter().map(|r| r.pairs).collect::<Vec<_>>()
        };
        let mut e = TickEngine::new(
            World::random(100, 9),
            TickConfig::default().with_epsilon(25.0).counting_only(),
        );
        let counted: Vec<u64> = e.run(3).iter().map(|r| r.pairs).collect();
        assert_eq!(collect, counted);
        assert!(e.pairs().is_empty());
    }

    #[test]
    fn zero_drift_threshold_replans_every_tick() {
        let mut config = TickConfig::default().with_epsilon(10.0);
        config.replan_drift = 0.0;
        let mut e = TickEngine::new(World::random(80, 2), config);
        let records = e.run(3);
        assert!(records.iter().all(|r| r.replanned));
        assert_eq!(e.summary().replans, 3);

        // And an infinite threshold never re-plans.
        config.replan_drift = f64::INFINITY;
        let mut e = TickEngine::new(World::random(80, 2), config);
        assert!(e.run(3).iter().all(|r| !r.replanned));
    }

    #[test]
    fn report_renders_json_and_csv() {
        let mut e = TickEngine::new(World::random(60, 1), TickConfig::default().with_epsilon(15.0));
        e.run(2);
        let report = e.report();
        let json = report.to_json();
        assert!(json.starts_with("{\"epsilon\":15,"));
        assert!(json.contains("\"ticks\":{\"engine\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let csv = report.to_csv();
        assert!(csv.starts_with(TickSummary::csv_header()));
        assert_eq!(csv.lines().count(), 2);
    }
}

//! # touch-sim — tick-loop simulation driven by the TOUCH self-join
//!
//! The paper's motivating application (Section 1) is a spatial simulation that
//! re-runs the join every step: neuron interactions are detected, the model
//! state advances, and the join runs again on the moved geometry. This crate
//! closes that loop for the reproduction: a moving-object [`World`] (positions,
//! velocities, collision radii; reflective bounce at the space walls) driven by
//! a [`TickEngine`] that runs one planned ε **self-join** per tick and records
//! the per-tick latency distribution into a
//! [`TickSummary`](touch_metrics::TickSummary).
//!
//! What the tick loop exercises that one-shot queries do not:
//!
//! * **Memory reuse across ticks** — the dataset, its ε-extension, the tree's
//!   item buffer ([`touch_core::TouchTree::into_items`]) and the join scratch
//!   ([`touch_core::ScratchPool`]) are all recycled, so the steady state
//!   allocates nothing per tick.
//! * **Plan reuse with drift detection** — the self-join plan is derived once
//!   and only re-derived when the world's
//!   [`DatasetStats`](touch_core::DatasetStats) drift past a configured
//!   threshold ([`TickConfig::replan_drift`]).
//! * **Determinism under motion** — the per-tick pair set is bit-identical at
//!   every thread count and between the kernel-mode engine and the serve-backed
//!   loop (`tests/sim_determinism.rs`).
//!
//! Two integration styles:
//!
//! * [`TickEngine`] — kernel mode: drives the phase primitives directly
//!   (fastest, single consumer).
//! * [`ServeTickLoop`] — serve mode: republishes the world through
//!   [`touch_serve::JoinServer::publish`] each tick and joins via a snapshot
//!   reader, proving the simulation composes with the concurrent serving layer.
//!
//! ```
//! use touch_sim::{TickConfig, TickEngine, World};
//!
//! let world = World::random(500, 42);
//! let mut engine = TickEngine::new(world, TickConfig::default().with_epsilon(25.0));
//! for _ in 0..10 {
//!     engine.tick();
//!     // engine.pairs() = this tick's colliding entity pairs (i, j), i < j.
//! }
//! let report = engine.report();
//! assert_eq!(report.summary.ticks, 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod serve;
mod world;

pub use engine::{TickConfig, TickEngine, TickRecord, TickReport};
pub use serve::ServeTickLoop;
pub use world::World;

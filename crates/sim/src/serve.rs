//! The serve-backed tick loop: each tick republishes the world through
//! [`JoinServer::publish`] and reads the pairs back through a snapshot reader.
//!
//! This is the integration path a live system would use — the simulation is
//! just another writer on the serving layer's A-side, and collision queries are
//! ordinary snapshot reads that could run concurrently with other readers. The
//! kernel-mode [`crate::TickEngine`] is the faster choice when the join is the
//! only consumer; this loop exists to prove (and test) that both paths see the
//! same physics: the per-tick **pair set is identical** to kernel mode
//! (counters differ — the server's full-rebuild path does its own accounting).

use std::time::Instant;

use touch_core::PairSink;
use touch_geom::{Dataset, ObjectId};
use touch_metrics::TickSummary;
use touch_serve::{JoinServer, ServeConfig, SnapshotReader};

use crate::{TickConfig, TickRecord, World};

/// A tick loop that maintains the world inside a [`JoinServer`].
///
/// Every tick replaces the whole A-side — remove last tick's ids, insert the
/// new (ε-extended) collision boxes, [`JoinServer::publish`] — and then joins
/// the *unextended* boxes against the fresh snapshot. A full replacement always
/// exceeds the server's delta-fold limit, so each publish takes the bulk
/// rebuild path: exactly the fresh STR sort the kernel-mode engine performs.
///
/// Server-side ids are monotonic, so tick `t`'s insertions occupy a contiguous
/// id range; the reader's sink subtracts the range base to recover entity
/// indices and keeps each unordered pair once (`i < j`), making the emitted
/// pairs directly comparable with [`crate::TickEngine::pairs`].
#[derive(Debug)]
pub struct ServeTickLoop {
    world: World,
    config: TickConfig,
    server: JoinServer,
    reader: SnapshotReader,
    live: Vec<ObjectId>,
    dataset: Dataset,
    extended: Dataset,
    pairs: Vec<(ObjectId, ObjectId)>,
    summary: TickSummary,
    ticks: usize,
}

impl ServeTickLoop {
    /// Builds the loop: the server's generation 0 holds `world`'s initial
    /// (ε-extended) boxes. `config.threads` and `config.collect_pairs` are
    /// ignored — the serving layer plans its own rebuilds, and a snapshot read
    /// always materialises its pairs.
    pub fn new(world: World, config: TickConfig) -> Self {
        let mut dataset = Dataset::new();
        world.fill_dataset(&mut dataset);
        let mut extended = Dataset::new();
        let initial = if config.epsilon > 0.0 {
            dataset.extend_into(config.epsilon, &mut extended);
            &extended
        } else {
            &dataset
        };
        let server = JoinServer::new(initial, ServeConfig::default());
        let live: Vec<ObjectId> = (0..world.len() as ObjectId).collect();
        let reader = server.reader();
        let entities = world.len();
        ServeTickLoop {
            world,
            config,
            server,
            reader,
            live,
            dataset,
            extended,
            pairs: Vec::new(),
            summary: TickSummary::new("tick:serve", entities),
            ticks: 0,
        }
    }

    /// Runs one tick: integrate, republish the A-side, snapshot-join.
    pub fn tick(&mut self) -> TickRecord {
        let start = Instant::now();
        self.world.step(self.config.dt);
        self.world.fill_dataset(&mut self.dataset);
        let eps = self.config.epsilon;
        let boxes = if eps > 0.0 {
            self.dataset.extend_into(eps, &mut self.extended);
            &self.extended
        } else {
            &self.dataset
        };
        for &id in &self.live {
            self.server.remove(id);
        }
        self.live.clear();
        for obj in boxes.objects() {
            self.live.push(self.server.insert(obj.mbr));
        }
        self.server.publish();

        let base = self.live.first().copied().unwrap_or(0);
        self.pairs.clear();
        let mut sink = OffsetSelfSink { base, pairs: &mut self.pairs };
        let _ = self.reader.query(self.dataset.objects(), &mut sink);
        self.pairs.sort_unstable();

        let latency_us = (start.elapsed().as_micros() as u64).max(1);
        let pairs = self.pairs.len() as u64;
        self.summary.record(latency_us, pairs, false);
        self.ticks += 1;
        TickRecord { tick: self.ticks, pairs, latency_us, replanned: false }
    }

    /// Runs `ticks` ticks, returning the per-tick records.
    pub fn run(&mut self, ticks: usize) -> Vec<TickRecord> {
        (0..ticks).map(|_| self.tick()).collect()
    }

    /// Last tick's collision pairs as sorted entity-index pairs `(i, j)` with
    /// `i < j`.
    pub fn pairs(&self) -> &[(ObjectId, ObjectId)] {
        &self.pairs
    }

    /// The simulated world (positions reflect all ticks run so far).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The snapshot generation currently published by the server.
    pub fn generation(&self) -> u64 {
        self.server.generation()
    }

    /// The running latency/pair summary.
    pub fn summary(&self) -> &TickSummary {
        &self.summary
    }
}

/// Maps server-side tree ids back to entity indices and keeps each unordered
/// pair once.
///
/// The reader emits `(tree_id, probe_id)` where the tree id lives in this
/// tick's contiguous server range and the probe id is already an entity index
/// (the batch is the entity dataset). Both orientations of every entity pair
/// arrive — the tree holds all entities, the batch holds all entities — so the
/// `i < j` filter keeps exactly one.
struct OffsetSelfSink<'a> {
    base: ObjectId,
    pairs: &'a mut Vec<(ObjectId, ObjectId)>,
}

impl PairSink for OffsetSelfSink<'_> {
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        let entity = a - self.base;
        if entity < b {
            self.pairs.push((entity, b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TickEngine;

    #[test]
    fn serve_mode_sees_the_same_pairs_as_kernel_mode() {
        let config = TickConfig::default().with_epsilon(25.0);
        let mut kernel = TickEngine::new(World::random(130, 17), config);
        let mut serve = ServeTickLoop::new(World::random(130, 17), config);
        for t in 0..4 {
            let kr = kernel.tick();
            let sr = serve.tick();
            assert_eq!(kernel.pairs(), serve.pairs(), "tick {t}");
            assert_eq!(kr.pairs, sr.pairs, "tick {t}");
            assert_eq!(kernel.world(), serve.world(), "tick {t}");
        }
    }

    #[test]
    fn each_tick_advances_the_published_generation() {
        let mut serve = ServeTickLoop::new(World::random(40, 3), TickConfig::default());
        let g0 = serve.generation();
        serve.tick();
        let g1 = serve.generation();
        serve.tick();
        let g2 = serve.generation();
        assert!(g0 < g1 && g1 < g2);
    }
}

//! Bounded-memory result sinks for long-running serving workloads.
//!
//! A server answering queries for hours cannot hand every query an unbounded
//! [`CollectingSink`](touch_core::CollectingSink): one pathological query
//! materialising a billion pairs takes the process down. A [`BoundedSink`]
//! caps the buffered pairs at a fixed capacity and applies an
//! [`OverflowPolicy`] when the cap is reached — **spill** the full buffer to a
//! caller-supplied consumer and keep going (bounded memory, complete results),
//! or **truncate** by early-terminating the join through the standard
//! [`PairSink::is_done`] protocol (bounded memory *and* bounded work).

use touch_core::PairSink;
use touch_geom::ObjectId;

/// The spill consumer of a flushing [`BoundedSink`]: receives each full buffer
/// (and the final tail) exactly once, in arrival order.
type SpillFn<'a> = Box<dyn FnMut(&[(ObjectId, ObjectId)]) + 'a>;

/// What a [`BoundedSink`] does when its buffer reaches capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Hand the full buffer to the spill consumer and clear it; the join runs
    /// to completion and every pair reaches the consumer exactly once
    /// (remaining buffered pairs are spilled at [`PairSink::finish`]).
    Flush,
    /// Accept no pair beyond capacity: report done, so the engine stops the
    /// join early — the serving-side twin of
    /// [`FirstKSink`](touch_core::FirstKSink), phrased as a memory bound.
    Truncate,
}

/// A [`PairSink`] whose buffered memory never exceeds a fixed number of pairs
/// — **spill** complete results through a consumer at a fixed buffer size
/// ([`BoundedSink::flushing`]) or **truncate** and stop the join early
/// ([`BoundedSink::truncating`]).
pub struct BoundedSink<'a> {
    capacity: usize,
    buffer: Vec<(ObjectId, ObjectId)>,
    policy: OverflowPolicy,
    spill: Option<SpillFn<'a>>,
    /// Pairs handed to the spill consumer so far.
    spilled: u64,
}

impl std::fmt::Debug for BoundedSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedSink")
            .field("capacity", &self.capacity)
            .field("buffered", &self.buffer.len())
            .field("policy", &self.policy)
            .field("spilled", &self.spilled)
            .finish()
    }
}

impl<'a> BoundedSink<'a> {
    /// A spilling sink: holds at most `capacity` pairs (at least one) and
    /// hands full buffers to `spill` — a writer, a compressor, a shipping
    /// queue. Every accepted pair reaches `spill` exactly once, in arrival
    /// order, once the query layer calls [`PairSink::finish`].
    pub fn flushing(capacity: usize, spill: impl FnMut(&[(ObjectId, ObjectId)]) + 'a) -> Self {
        let capacity = capacity.max(1);
        BoundedSink {
            capacity,
            buffer: Vec::with_capacity(capacity),
            policy: OverflowPolicy::Flush,
            spill: Some(Box::new(spill)),
            spilled: 0,
        }
    }

    /// A truncating sink: keeps the first `capacity` pairs (at least one) and
    /// early-terminates the join once they have arrived.
    pub fn truncating(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedSink {
            capacity,
            buffer: Vec::with_capacity(capacity),
            policy: OverflowPolicy::Truncate,
            spill: None,
            spilled: 0,
        }
    }

    /// The buffer capacity in pairs — the memory bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Pairs currently buffered (≤ [`capacity`](BoundedSink::capacity)).
    pub fn buffered(&self) -> &[(ObjectId, ObjectId)] {
        &self.buffer
    }

    /// Pairs handed to the spill consumer so far (always 0 under
    /// [`OverflowPolicy::Truncate`]).
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Total pairs accepted: spilled + currently buffered.
    pub fn total(&self) -> u64 {
        self.spilled + self.buffer.len() as u64
    }

    /// Restores the sink for the next query: clears the buffer and the spill
    /// tally (capacity and policy are kept). As with
    /// [`FirstKSink::reset`](touch_core::FirstKSink::reset), a truncating
    /// sink's budget is consumed — reset it alongside whatever engine state
    /// the next query starts from.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.spilled = 0;
    }

    fn spill_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        if let Some(spill) = self.spill.as_mut() {
            spill(&self.buffer);
        }
        self.spilled += self.buffer.len() as u64;
        self.buffer.clear();
    }
}

impl PairSink for BoundedSink<'_> {
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        if self.policy == OverflowPolicy::Truncate && self.buffer.len() >= self.capacity {
            // Tolerated per the PairSink contract: done is permission to
            // stop, not an obligation — drop the overflow.
            return;
        }
        self.buffer.push((a, b));
        if self.policy == OverflowPolicy::Flush && self.buffer.len() >= self.capacity {
            self.spill_buffer();
        }
    }

    fn is_done(&self) -> bool {
        self.policy == OverflowPolicy::Truncate && self.buffer.len() >= self.capacity
    }

    fn pair_limit(&self) -> Option<u64> {
        match self.policy {
            OverflowPolicy::Flush => None,
            OverflowPolicy::Truncate => {
                Some((self.capacity - self.buffer.len().min(self.capacity)) as u64)
            }
        }
    }

    fn finish(&mut self) {
        if self.policy == OverflowPolicy::Flush {
            self.spill_buffer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut BoundedSink<'_>, n: u32) {
        let mut results = 0u64;
        for i in 0..n {
            if !touch_core::deliver(sink, i, i + 100, &mut results) {
                break;
            }
        }
        sink.finish();
    }

    #[test]
    fn flushing_never_buffers_past_capacity_and_loses_nothing() {
        let mut seen: Vec<(ObjectId, ObjectId)> = Vec::new();
        {
            let mut sink = BoundedSink::flushing(4, |chunk| seen.extend_from_slice(chunk));
            for i in 0..11u32 {
                sink.push(i, i);
                assert!(sink.buffered().len() <= 4, "buffer exceeded its bound");
            }
            assert_eq!(sink.spilled(), 8, "two full buffers spilled");
            sink.finish();
            assert_eq!(sink.total(), 11);
            assert!(sink.buffered().is_empty(), "finish drains the tail");
        }
        assert_eq!(seen, (0..11u32).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn truncating_reports_done_at_capacity() {
        let mut sink = BoundedSink::truncating(3);
        assert_eq!(sink.pair_limit(), Some(3));
        feed(&mut sink, 10);
        assert!(sink.is_done());
        assert_eq!(sink.pair_limit(), Some(0));
        assert_eq!(sink.buffered(), &[(0, 100), (1, 101), (2, 102)]);
        assert_eq!(sink.total(), 3);
        // Late pushes (engines may overshoot slightly) are tolerated, not kept.
        sink.push(99, 99);
        assert_eq!(sink.total(), 3);
    }

    #[test]
    fn reset_restores_the_budget_for_the_next_query() {
        let mut sink = BoundedSink::truncating(2);
        feed(&mut sink, 5);
        assert!(sink.is_done());
        sink.reset();
        assert!(!sink.is_done());
        assert_eq!(sink.pair_limit(), Some(2));
        feed(&mut sink, 5);
        assert_eq!(sink.buffered(), &[(0, 100), (1, 101)]);
    }

    #[test]
    fn capacity_zero_rounds_up_to_one() {
        let mut flushed = 0u64;
        {
            let mut sink = BoundedSink::flushing(0, |chunk| flushed += chunk.len() as u64);
            assert_eq!(sink.capacity(), 1);
            feed(&mut sink, 3);
        }
        assert_eq!(flushed, 3, "every pair spills through the one-slot buffer");
        assert_eq!(BoundedSink::truncating(0).capacity(), 1);
    }
}

//! # touch-serve — concurrent serving layer for the TOUCH join
//!
//! The one-shot engines (`touch-core`, `touch-parallel`) answer a query and
//! exit; the streaming engine (`touch-streaming`) pins one immutable A-side
//! tree for many probe epochs. This crate closes the remaining gap: **serving
//! joins while the A-side itself changes.**
//!
//! * [`JoinServer`] owns the A dataset as a sequence of frozen **generations**.
//!   [`insert`](JoinServer::insert)/[`remove`](JoinServer::remove) buffer into
//!   a delta; [`publish`](JoinServer::publish) folds the delta into the next
//!   generation — incrementally (re-tiling the previous generation's STR
//!   order) for small deltas, by full STR rebuild past a planner-decided
//!   threshold — and swaps it in atomically.
//! * [`SnapshotReader`]s run planned joins against whatever generation is
//!   current when each query starts. The read path takes **no locks**: a
//!   hazard-pointer [`GenCell`] hands out `Arc` snapshots with a handful of
//!   atomic operations, and all per-query state (assignment lists, join
//!   scratch) is reader-owned ([`touch_core::AssignmentBuffer`]).
//! * [`BoundedSink`] caps per-query result memory with a spill-or-truncate
//!   [`OverflowPolicy`] — long-running servers must not let one pathological
//!   query materialise an unbounded pair set.
//!
//! The correctness bar (pinned by the workspace's `serve_equivalence` and
//! `serve_stress` suites): a snapshot query against a fully rebuilt generation
//! is **bit-identical — pairs and counters** — to a one-shot
//! [`touch_core::TouchJoin`] over the same logical A contents, and every
//! snapshot a reader ever observes is internally consistent, no matter how
//! the writer races it.
//!
//! ## Quick example
//!
//! ```
//! use touch_core::CollectingSink;
//! use touch_geom::{Aabb, Dataset, Point3};
//! use touch_serve::{JoinServer, ServeConfig};
//!
//! let a = Dataset::from_mbrs((0..32).map(|i| {
//!     let min = Point3::new(i as f64 * 2.0, 0.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//! let b = Dataset::from_mbrs((0..32).map(|i| {
//!     let min = Point3::new(i as f64 * 2.0 + 0.5, 0.0, 0.0);
//!     Aabb::new(min, min + Point3::splat(1.0))
//! }));
//!
//! let server = JoinServer::new(&a, ServeConfig::default());
//! let mut reader = server.reader();
//!
//! // Queries see the published generation...
//! let mut sink = CollectingSink::new();
//! let report = reader.query(b.objects(), &mut sink);
//! assert_eq!(report.result_pairs(), 32);
//! assert_eq!(report.generation, Some(0));
//!
//! // ...mutations stay invisible until the next publish.
//! let id = server.insert(Aabb::new(Point3::new(0.6, 0.0, 0.0), Point3::splat(1.4)));
//! let mut sink = CollectingSink::new();
//! assert_eq!(reader.query(b.objects(), &mut sink).result_pairs(), 32);
//! server.publish();
//! let mut sink = CollectingSink::new();
//! let report = reader.query(b.objects(), &mut sink);
//! assert_eq!(report.result_pairs(), 33);
//! assert_eq!(report.generation, Some(1));
//! assert!(server.remove(id));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bounded;
mod server;
mod snapshot;

pub use bounded::{BoundedSink, OverflowPolicy};
pub use server::{Generation, JoinServer, ServeConfig, SnapshotReader};
pub use snapshot::GenCell;

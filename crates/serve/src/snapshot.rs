//! The lock-free generation cell: epoch snapshots by hazard pointers.
//!
//! A [`GenCell<T>`] holds the **current generation** of some shared, immutable
//! value behind a single atomic pointer. Readers take an `Arc` snapshot with
//! [`GenCell::load`] — no locks, no allocation, a handful of atomic operations
//! — while one writer at a time swaps in the next generation with
//! [`GenCell::publish`]. The published value is frozen forever; mutation
//! happens by building a *new* generation and publishing it, never by touching
//! the old one.
//!
//! ## Why not just `Mutex<Arc<T>>`?
//!
//! Cloning an `Arc` under a mutex serialises every reader on one cache line
//! and makes tail latency hostage to the writer. The serving layer's whole
//! point is that queries against the current tree keep streaming while the
//! next tree builds, so the read path must not block — on anything.
//!
//! ## The protocol
//!
//! The classic hazard-pointer handshake, specialised to a single protected
//! pointer and a fixed slot array:
//!
//! * **Reader**: (R1) read `current`; (R2) claim a free hazard slot by CAS-ing
//!   it from null to that pointer — claiming and publishing the hazard are one
//!   atomic step; (R3) re-read `current` — if it moved, clear the slot and
//!   retry; (R4) bump the generation's strong count; (R5) clear the slot and
//!   return the `Arc`.
//! * **Writer**: under the writer mutex, (W1) swap `current` to the new
//!   generation; (W2) for every slot, spin until it no longer holds the *old*
//!   pointer; (W3) drop the cell's reference to the old generation.
//!
//! **Safety argument.** All protocol operations are `SeqCst`, so they form one
//! total order. A reader only reaches R4 if its R3 saw the old pointer, i.e.
//! R3 < W1 in that order, hence R2 < R3 < W1: the slot already held the
//! pointer when the writer swapped. The writer's W2 scan therefore observes
//! the claim and spins until the reader's R5 — which happens *after* R4 has
//! secured a strong count — so W3 can never drop the last reference out from
//! under a reader. Address reuse (ABA) is benign: if R3 matches a *recycled*
//! allocation, `current` again points at that address, so the reader returns
//! the then-current generation — never a freed one, because the matching W3
//! for the old incarnation happened before the address could be reused, and
//! that W3 ordered itself after every slot claim it could have raced with.

use std::marker::PhantomData;
use std::ptr::null_mut;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// A single-value hazard-pointer cell: lock-free `Arc` snapshots of the
/// current generation under concurrent publishes. The full reader/writer
/// protocol and its safety argument live in the source module's docs.
///
/// `hazard_slots` bounds how many readers can be *inside the claim window*
/// (a few atomic ops wide) simultaneously — not how many threads may read.
/// A reader finding every slot busy yields and retries.
#[derive(Debug)]
pub struct GenCell<T> {
    /// Owns one strong count of the current generation (released on publish
    /// or at drop).
    current: AtomicPtr<T>,
    /// The hazard slots: null = free, otherwise the pointer some reader is
    /// mid-acquisition on.
    hazards: Box<[AtomicPtr<T>]>,
    /// Serialises publishers; readers never touch it.
    writer: Mutex<()>,
    /// The cell behaves as an owner of `Arc<T>`s: inherit its auto traits so
    /// `GenCell<T>` is only `Send`/`Sync` when sharing `T` is sound.
    _owns: PhantomData<Arc<T>>,
}

impl<T> GenCell<T> {
    /// A cell whose first generation is `initial`, with `hazard_slots`
    /// concurrent acquisition slots (at least one).
    pub fn new(initial: Arc<T>, hazard_slots: usize) -> Self {
        GenCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            hazards: (0..hazard_slots.max(1)).map(|_| AtomicPtr::new(null_mut())).collect(),
            writer: Mutex::new(()),
            _owns: PhantomData,
        }
    }

    /// Number of hazard slots (the claim-window concurrency bound).
    pub fn hazard_slots(&self) -> usize {
        self.hazards.len()
    }

    /// Takes a snapshot of the current generation. Lock-free and wait-free in
    /// the absence of publishes; under a concurrent publish a reader retries
    /// at most once per generation it races with.
    pub fn load(&self) -> Arc<T> {
        loop {
            // R1: the candidate generation.
            let p = self.current.load(Ordering::SeqCst);
            // R2: claim a free slot, publishing the candidate in the same
            // atomic step. No free slot → too many mid-acquisition readers;
            // yield and retry (the window is a few instructions wide).
            let Some(slot) = self.hazards.iter().find(|slot| {
                slot.compare_exchange(null_mut(), p, Ordering::SeqCst, Ordering::Relaxed).is_ok()
            }) else {
                std::thread::yield_now();
                continue;
            };
            // R3: revalidate. If the pointer moved, the writer may have
            // scanned this slot *before* our claim became visible — the claim
            // protects nothing, so back out and retry.
            if self.current.load(Ordering::SeqCst) == p {
                // R4: the claim is now guaranteed visible to any writer that
                // could free `p` (see the module-level safety argument), so
                // the allocation is alive and we may take a reference.
                // SAFETY: `p` came from `Arc::into_raw` and cannot have been
                // dropped: the writer that would drop it spins on our slot.
                let snapshot = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                // R5: release the slot — the strong count protects us now.
                slot.store(null_mut(), Ordering::SeqCst);
                return snapshot;
            }
            slot.store(null_mut(), Ordering::SeqCst);
        }
    }

    /// Publishes `next` as the new current generation and releases the cell's
    /// reference to the previous one once no reader is mid-acquisition on it.
    /// Publishers are serialised; readers are never blocked (they either get
    /// the old generation or the new one).
    pub fn publish(&self, next: Arc<T>) {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // W1: from here on every reader's R1/R3 sees the new generation.
        let old = self.current.swap(Arc::into_raw(next) as *mut T, Ordering::SeqCst);
        // W2: wait out readers still mid-acquisition on the old generation.
        // Each can only be in the claim window (R2..R5) — a few atomic ops —
        // so this spin is short and bounded.
        for slot in self.hazards.iter() {
            while slot.load(Ordering::SeqCst) == old {
                std::thread::yield_now();
            }
        }
        // W3: release the cell's strong count on the old generation.
        // SAFETY: `old` came from `Arc::into_raw` at `new` or an earlier
        // publish, and the cell's own reference has not been released before
        // (the swap in W1 took it out of `current` exactly once).
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for GenCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no reader or writer is active; the cell
        // still owns the strong count `current` carries.
        unsafe { drop(Arc::from_raw(*self.current.get_mut())) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Tracks liveness: bumps a shared counter on drop.
    struct Tracked {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_returns_the_published_generation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = GenCell::new(Arc::new(Tracked { value: 1, drops: Arc::clone(&drops) }), 4);
        assert_eq!(cell.hazard_slots(), 4);
        assert_eq!(cell.load().value, 1);
        cell.publish(Arc::new(Tracked { value: 2, drops: Arc::clone(&drops) }));
        assert_eq!(cell.load().value, 2);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "the old generation is freed at publish");
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "dropping the cell frees the current one");
    }

    #[test]
    fn snapshots_outlive_the_publish_that_replaces_them() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = GenCell::new(Arc::new(Tracked { value: 10, drops: Arc::clone(&drops) }), 2);
        let held = cell.load();
        cell.publish(Arc::new(Tracked { value: 11, drops: Arc::clone(&drops) }));
        // The replaced generation lives on in the reader's hands...
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(held.value, 10);
        drop(held);
        // ...and dies with its last snapshot.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn a_single_slot_still_serves_many_threads() {
        let cell = Arc::new(GenCell::new(Arc::new(0u64), 1));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let _ = cell.load();
                    }
                });
            }
        });
    }

    /// The hammer: readers continuously snapshot while a writer publishes a
    /// strictly increasing sequence. Every snapshot must be a value that was
    /// genuinely published, every reader must observe a monotone sequence
    /// (the cell can't travel back in time), and nothing may be freed early —
    /// a use-after-free here shows up as a garbage value or a crash under the
    /// drop tracker.
    #[test]
    fn concurrent_readers_survive_a_publishing_storm() {
        const PUBLISHES: u64 = 500;
        const READERS: usize = 6;
        let drops = Arc::new(AtomicUsize::new(0));
        let cell =
            Arc::new(GenCell::new(Arc::new(Tracked { value: 0, drops: Arc::clone(&drops) }), 2));
        let stop = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while stop.load(Ordering::SeqCst) == 0 {
                        let snap = cell.load();
                        assert!(snap.value <= PUBLISHES, "unpublished value {}", snap.value);
                        assert!(snap.value >= last, "time went backwards");
                        last = snap.value;
                    }
                });
            }
            for v in 1..=PUBLISHES {
                cell.publish(Arc::new(Tracked { value: v, drops: Arc::clone(&drops) }));
            }
            stop.store(1, Ordering::SeqCst);
        });

        assert_eq!(cell.load().value, PUBLISHES);
        // All but the final generation have been reclaimed by now: the readers
        // dropped their snapshots before the scope joined.
        assert_eq!(drops.load(Ordering::SeqCst), PUBLISHES as usize);
    }
}

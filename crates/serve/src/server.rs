//! The serving layer: a mutable A-side behind immutable, queryable snapshots.
//!
//! A [`JoinServer`] owns the A dataset of a TOUCH join as a sequence of
//! **generations** — frozen [`TouchTree`]s published through the lock-free
//! [`GenCell`]. Mutations ([`JoinServer::insert`], [`JoinServer::remove`])
//! buffer into a delta; [`JoinServer::publish`] folds the delta into the next
//! generation and swaps it in atomically. Reader threads hold
//! [`SnapshotReader`]s and run planned joins against whichever generation was
//! current when their query started — never blocking on the writer, never
//! observing a half-built tree.
//!
//! ## The equivalence contract
//!
//! A [`SnapshotReader::query`] against a generation built by **full rebuild**
//! is bit-identical — pairs in emission order *and counters* — to a one-shot
//! [`touch_core::TouchJoin`] (tree on A) over that generation's logical live
//! contents: survivors in arrival order, then inserts in arrival order. An
//! **incrementally folded** generation reuses the previous generation's STR
//! tiling (minus removals, plus appended inserts), which preserves the exact
//! result set but may prune differently — pairs identical as sets, counters
//! equal to a [`TouchTree::from_tiled`] reference over the same tiled order.
//! The planner decides which path each publish takes
//! ([`JoinPlanner::delta_rebuild_limit`]); pin it with
//! [`ServeConfig::delta_limit`] when the distinction matters.

use crate::bounded::{BoundedSink, OverflowPolicy};
use crate::snapshot::GenCell;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use touch_core::{
    catch_phase, deliver, time_phase_traced, AssignmentBuffer, ExecControl, JoinError, JoinPlanner,
    LocalJoinScratch, PairSink, TouchConfig, TouchTree,
};
use touch_geom::{Aabb, ObjectId, SpatialObject};
use touch_metrics::{MemoryUsage, NoTrace, Phase, RunReport, TraceEvent, TraceSink};

/// Configuration of a [`JoinServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The algorithmic knobs every generation is built and queried with. The
    /// hierarchy is always on the served (A) side, so `join_order` is ignored.
    pub touch: TouchConfig,
    /// Buffered mutations beyond which [`JoinServer::publish`] abandons the
    /// incremental fold and rebuilds the STR tiling from scratch. `None`
    /// (default) lets the planner decide from the live size
    /// ([`JoinPlanner::delta_rebuild_limit`]); `Some(0)` forces a full rebuild
    /// on every publish — the setting the bit-identity equivalence suite pins.
    pub delta_limit: Option<usize>,
    /// Hazard slots of the generation cell — the number of readers that can be
    /// *mid-snapshot-acquisition* at once, not a reader-count limit (see
    /// [`GenCell`]).
    pub hazard_slots: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { touch: TouchConfig::default(), delta_limit: None, hazard_slots: 64 }
    }
}

/// One frozen, immutable generation of the served A-side: the tree plus the
/// pre-resolved query parameters that depend on the A data.
#[derive(Debug)]
pub struct Generation {
    version: u64,
    tree: TouchTree,
    /// The A-side contribution to the per-query grid-cell floor, computed over
    /// the **logical live order** at publish — the identical summation order a
    /// one-shot join over the same contents would use, so resolved query
    /// parameters are bit-identical to the reference.
    a_cell_floor: f64,
    /// Mutations folded into this generation by the publish that created it.
    delta: usize,
}

impl Generation {
    /// The generation number (0 for the initial build, then monotonic).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The frozen hierarchy (no assignments — readers keep those).
    pub fn tree(&self) -> &TouchTree {
        &self.tree
    }

    /// Number of live A-objects.
    pub fn live(&self) -> usize {
        self.tree.a_len()
    }

    /// Buffered mutations folded in by the publish that created this
    /// generation (0 for the initial one).
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The A-side grid-cell floor (see the field docs).
    pub fn a_cell_floor(&self) -> f64 {
        self.a_cell_floor
    }
}

/// Writer-side state: the canonical live list and the pending delta.
#[derive(Debug)]
struct WriterState {
    /// The logical live contents in canonical (arrival) order — the order the
    /// equivalence reference joins in, and the order full rebuilds STR-sort.
    live: Vec<SpatialObject>,
    /// Ids of `live`, for O(1) `remove` validation.
    live_ids: HashSet<ObjectId>,
    pending_inserts: Vec<SpatialObject>,
    pending_removes: HashSet<ObjectId>,
    next_id: ObjectId,
    version: u64,
}

/// The concurrent serving layer over a mutable A-side: buffered mutations
/// ([`JoinServer::insert`] / [`JoinServer::remove`]), explicit generation
/// publishes ([`JoinServer::publish`]), lock-free snapshot readers
/// ([`JoinServer::reader`]).
#[derive(Debug)]
pub struct JoinServer {
    cell: Arc<GenCell<Generation>>,
    state: Mutex<WriterState>,
    config: ServeConfig,
}

impl JoinServer {
    /// Builds generation 0 over `a` and starts serving it.
    pub fn new(a: &touch_geom::Dataset, config: ServeConfig) -> Self {
        let live = a.objects().to_vec();
        let next_id = live.iter().map(|o| o.id + 1).max().unwrap_or(0);
        let generation = Self::full_rebuild(&live, &config, 0, 0);
        JoinServer {
            cell: Arc::new(GenCell::new(Arc::new(generation), config.hazard_slots)),
            state: Mutex::new(WriterState {
                live_ids: live.iter().map(|o| o.id).collect(),
                live,
                pending_inserts: Vec::new(),
                pending_removes: HashSet::new(),
                next_id,
                version: 0,
            }),
            config,
        }
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A handle for running snapshot queries — cheap to create, meant to be
    /// moved onto a reader thread and reused query after query (it owns the
    /// reusable assignment and join scratch).
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
            config: self.config.touch,
            buffer: AssignmentBuffer::new(),
            scratch: LocalJoinScratch::new(),
        }
    }

    /// The currently served generation (what a query starting now would see).
    pub fn snapshot(&self) -> Arc<Generation> {
        self.cell.load()
    }

    /// The currently served generation number.
    pub fn generation(&self) -> u64 {
        self.cell.load().version()
    }

    /// Buffers the insertion of one A-object and returns its id. Invisible to
    /// readers until [`JoinServer::publish`].
    pub fn insert(&self, mbr: Aabb) -> ObjectId {
        let mut state = self.lock_state();
        let id = state.next_id;
        state.next_id += 1;
        state.pending_inserts.push(SpatialObject { id, mbr });
        id
    }

    /// Buffers the removal of the A-object `id`. Returns `false` when the id
    /// is unknown (never inserted, already removed, or already pending
    /// removal). Removing a still-pending insert simply cancels it.
    pub fn remove(&self, id: ObjectId) -> bool {
        let mut state = self.lock_state();
        if let Some(at) = state.pending_inserts.iter().position(|o| o.id == id) {
            state.pending_inserts.remove(at);
            return true;
        }
        if state.live_ids.contains(&id) {
            return state.pending_removes.insert(id);
        }
        false
    }

    /// Buffered mutations awaiting the next publish.
    pub fn pending_delta(&self) -> usize {
        let state = self.lock_state();
        state.pending_inserts.len() + state.pending_removes.len()
    }

    /// Folds the buffered delta into a new generation and publishes it; see
    /// [`publish_traced`](JoinServer::publish_traced). Returns the now-current
    /// generation number (unchanged if nothing was pending).
    pub fn publish(&self) -> u64 {
        self.publish_traced(&NoTrace)
    }

    /// [`JoinServer::publish`] with an execution-trace sink: the fold/rebuild
    /// records a [`TraceEvent::Generation`] span.
    ///
    /// With a delta at or below the [rebuild limit](ServeConfig::delta_limit)
    /// the new tree reuses the previous generation's STR tiling — removals
    /// filtered out, inserts appended ([`TouchTree::from_tiled`]); past it the
    /// tiling is rebuilt from scratch over the canonical live order. Readers
    /// keep querying the old generation throughout and switch atomically.
    ///
    /// # Panics
    /// Panics if the fold panics — use [`JoinServer::try_publish`] to contain
    /// that instead.
    pub fn publish_traced(&self, trace: &dyn TraceSink) -> u64 {
        self.try_publish(ExecControl::with_trace(trace)).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`JoinServer::publish`]: the fold runs under panic containment
    /// **before** any writer state or the published generation moves, so the
    /// server survives a panicking build with full consistency.
    ///
    /// * A pre-tripped `ctl.cancel` returns [`JoinError::Cancelled`] /
    ///   [`JoinError::DeadlineExceeded`] with the delta still buffered — a
    ///   publish has no meaningful partial result.
    /// * A panic inside the fold (or the trace sink it reports to) returns
    ///   [`JoinError::WorkerPanicked`] and **restores the pending delta**:
    ///   readers keep the old generation, the version does not advance, and
    ///   retrying the publish later folds exactly the same mutations.
    pub fn try_publish(&self, ctl: ExecControl<'_>) -> Result<u64, JoinError> {
        let mut state = self.lock_state();
        if state.pending_inserts.is_empty() && state.pending_removes.is_empty() {
            return Ok(state.version);
        }
        if let Some(cause) = ctl.cancel.triggered() {
            return Err(cause.into_error());
        }
        let trace = ctl.trace;
        let start_us = if trace.is_enabled() { trace.now_us() } else { 0 };
        let inserts = std::mem::take(&mut state.pending_inserts);
        let removes = std::mem::take(&mut state.pending_removes);
        let delta = inserts.len() + removes.len();

        // The candidate live order: survivors keep their order, inserts arrive
        // at the back. Built on the side — the canonical state only advances
        // once the whole generation exists.
        let mut next_live: Vec<SpatialObject> =
            state.live.iter().filter(|o| !removes.contains(&o.id)).copied().collect();
        next_live.extend(inserts.iter().copied());
        let version = state.version + 1;

        let limit = self
            .config
            .delta_limit
            .unwrap_or_else(|| JoinPlanner::default().delta_rebuild_limit(next_live.len()));
        let built = catch_phase(Phase::Build, 0, || {
            let generation = if delta > limit {
                Self::full_rebuild(&next_live, &self.config, version, delta)
            } else {
                // Incremental fold: the previous tiling, minus removals, plus
                // the inserts appended — any permutation is a correct tiling,
                // and this one keeps the surviving objects' spatial coherence
                // for free.
                let previous = self.cell.load();
                let tiled: Vec<SpatialObject> = previous
                    .tree
                    .a_objects()
                    .iter()
                    .filter(|o| !removes.contains(&o.id))
                    .copied()
                    .chain(inserts.iter().copied())
                    .collect();
                let cfg = &self.config.touch;
                let mut tree = TouchTree::from_tiled(tiled, cfg.partitions, cfg.fanout);
                let a_cell_floor = cfg.min_local_cell_size_of_objects(&next_live);
                tree.memoise_grids(&cfg.local_join_params(a_cell_floor));
                Generation { version, tree, a_cell_floor, delta }
            };
            if trace.is_enabled() {
                trace.record(TraceEvent::Generation {
                    generation: version,
                    live: generation.live(),
                    delta,
                    start_us,
                    duration_us: trace.now_us().saturating_sub(start_us),
                });
            }
            generation
        });
        let generation = match built {
            Ok(generation) => generation,
            Err(e) => {
                // Put the delta back so a later publish retries it; nothing
                // else moved, so readers and writer state stay consistent.
                state.pending_inserts = inserts;
                state.pending_removes = removes;
                return Err(e);
            }
        };

        // Commit: canonical state and the published cell advance together,
        // under the writer lock, after the only fallible region succeeded.
        state.live = next_live;
        for id in &removes {
            state.live_ids.remove(id);
        }
        state.live_ids.extend(inserts.iter().map(|o| o.id));
        state.version = version;
        self.cell.publish(Arc::new(generation));
        Ok(version)
    }

    /// STR-rebuilds a generation from the canonical live order — the path
    /// whose queries are bit-identical (pairs *and* counters) to the one-shot
    /// reference join.
    fn full_rebuild(
        live: &[SpatialObject],
        config: &ServeConfig,
        version: u64,
        delta: usize,
    ) -> Generation {
        let cfg = &config.touch;
        let mut tree = TouchTree::build(live, cfg.partitions, cfg.fanout);
        let a_cell_floor = cfg.min_local_cell_size_of_objects(live);
        tree.memoise_grids(&cfg.local_join_params(a_cell_floor));
        Generation { version, tree, a_cell_floor, delta }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, WriterState> {
        // Writer state is plain data: a panicked mutator leaves it consistent
        // (every method restores invariants before returning), so recover
        // instead of propagating the poison to unrelated callers.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A per-thread query handle over a [`JoinServer`]'s generations.
///
/// Each query snapshots the current generation ([`GenCell::load`] — lock-free)
/// and runs the assignment + local-join phases against it with reader-owned
/// memory ([`AssignmentBuffer`], [`LocalJoinScratch`]), so any number of
/// readers proceed fully independently, at full speed, while the server
/// rebuilds. The reader reuses its buffers across queries: a warmed-up reader
/// allocates nothing on the query path.
#[derive(Debug)]
pub struct SnapshotReader {
    cell: Arc<GenCell<Generation>>,
    config: TouchConfig,
    buffer: AssignmentBuffer,
    scratch: LocalJoinScratch,
}

impl SnapshotReader {
    /// Joins `batch` (the B side) against the current generation; pairs stream
    /// into `sink` as `(a_id, b_id)`, and the returned report carries the
    /// generation number it ran against ([`RunReport::generation`]).
    pub fn query(&mut self, batch: &[SpatialObject], sink: &mut dyn PairSink) -> RunReport {
        self.query_traced(batch, sink, &NoTrace)
    }

    /// [`SnapshotReader::query`] with an execution-trace sink attached
    /// (assignment/join phase spans and per-node join spans, as worker 0).
    ///
    /// # Panics
    /// Panics if a phase panics — use [`SnapshotReader::try_query`] to contain
    /// that instead.
    pub fn query_traced(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        trace: &dyn TraceSink,
    ) -> RunReport {
        self.try_query(batch, sink, ExecControl::with_trace(trace))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SnapshotReader::query`]: polls `ctl.cancel` at chunk
    /// granularity through assignment and before every per-node local join,
    /// and contains phase panics instead of aborting.
    ///
    /// A trip mid-query returns `Ok` with a *partial* report — pairs already
    /// delivered to `sink` stand, the counters cover exactly the work done,
    /// and [`RunReport::completion`](touch_metrics::RunReport) says why the
    /// query stopped. A contained panic returns
    /// [`JoinError::WorkerPanicked`]; the sink's contents are then
    /// unspecified and [`PairSink::finish`] has not been invoked, but the
    /// reader and the served generation remain fully usable.
    pub fn try_query(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut dyn PairSink,
        ctl: ExecControl<'_>,
    ) -> Result<RunReport, JoinError> {
        let snapshot = self.cell.load();
        let mut report = RunReport::new("TOUCH-SERVE".to_string(), snapshot.live(), batch.len());
        report.threads = 1;
        report.generation = Some(snapshot.version());
        if let Some(cause) = ctl.cancel.triggered() {
            report.completion = cause.completion();
            sink.finish();
            return Ok(report);
        }
        let trace = ctl.trace;

        // Resolve the grid floor exactly as the one-shot reference would:
        // max of the A-side floor (pre-computed at publish over the logical
        // live order) and this batch's floor.
        let min_cell =
            snapshot.a_cell_floor().max(self.config.min_local_cell_size_of_objects(batch));
        let params = self.config.local_join_params(min_cell);

        self.buffer.clear();
        let mut counters = std::mem::take(&mut report.counters);
        let buffer = &mut self.buffer;
        let assigned = catch_phase(Phase::Assignment, 0, || {
            time_phase_traced(&mut report, Phase::Assignment, trace, || {
                buffer.assign_ctl(&snapshot.tree, batch, &mut counters, ctl.cancel)
            })
        });
        let assign_cause = match assigned {
            Ok(cause) => cause,
            Err(e) => {
                report.counters = counters;
                return Err(e);
            }
        };
        if let Some(cause) = assign_cause {
            report.counters = counters;
            report.completion = cause.completion();
            report.memory_bytes = snapshot.tree.memory_bytes();
            sink.finish();
            return Ok(report);
        }

        let buffer = &self.buffer;
        let scratch = &mut self.scratch;
        let mut results = 0u64;
        let joined = catch_phase(Phase::Join, 0, || {
            time_phase_traced(&mut report, Phase::Join, trace, || {
                buffer.join_ctl(
                    &snapshot.tree,
                    &params,
                    scratch,
                    &mut counters,
                    &mut |a_id, b_id| deliver(sink, a_id, b_id, &mut results),
                    ctl,
                    0,
                )
            })
        });
        counters.results += results;
        report.counters = counters;
        match joined {
            Ok((local_aux, cause)) => {
                report.memory_bytes = snapshot.tree.memory_bytes() + local_aux;
                if let Some(c) = cause {
                    report.completion = c.completion();
                }
                sink.finish();
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// [`SnapshotReader::try_query`] against a [`BoundedSink`], mapping a
    /// tripped result-memory cap to [`JoinError::ResourceExhausted`]: under
    /// [`OverflowPolicy::Truncate`] a query whose result set would exceed the
    /// sink's capacity is reported as a hard budget failure instead of a
    /// silently truncated success. A flushing sink never exhausts (it spills),
    /// so this behaves exactly like `try_query`.
    pub fn try_query_bounded(
        &mut self,
        batch: &[SpatialObject],
        sink: &mut BoundedSink<'_>,
        ctl: ExecControl<'_>,
    ) -> Result<RunReport, JoinError> {
        let report = self.try_query(batch, sink, ctl)?;
        if sink.policy() == OverflowPolicy::Truncate && sink.is_done() {
            return Err(JoinError::ResourceExhausted {
                detail: format!("bounded sink capacity of {} pairs reached", sink.capacity()),
            });
        }
        Ok(report)
    }

    /// The generation a query starting now would run against.
    pub fn current_generation(&self) -> u64 {
        self.cell.load().version()
    }
}

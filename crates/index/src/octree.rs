//! Region octree with multiple assignment — the 3-D analogue of the quadtree double
//! index traversal discussed in Section 2.2.1 of the paper.
//!
//! A region octree recursively splits the space at the centre of each node into eight
//! equal octants until a node holds at most `leaf_capacity` objects or the maximum
//! depth is reached. Objects are assigned to **every** leaf whose region they overlap
//! (like the R+-tree, Section 2.2.1), so a join over octree leaves may discover the
//! same pair several times and has to de-duplicate — which is exactly the drawback the
//! paper contrasts TOUCH against. The [`crate::UniformGrid`]-style reference-point
//! rule is applied by the octree join baseline in `touch-baselines`.

use touch_geom::{Aabb, Point3, SpatialObject};
use touch_metrics::{vec_bytes, MemoryUsage};

/// One node of an [`Octree`].
#[derive(Debug, Clone)]
struct OctreeNode {
    /// The region this node is responsible for (a partition of the parent's region).
    region: Aabb,
    /// Index of the first child (children are contiguous), or `None` for a leaf.
    first_child: Option<u32>,
    /// Number of children (8 in the general case; fewer when some axes are
    /// degenerate — e.g. 4 for planar 2-D data — so that sibling regions never
    /// coincide).
    child_count: u8,
    /// Objects assigned to this node (only non-empty for leaves).
    entries: Vec<u32>,
}

/// A region octree over a set of spatial objects with multiple assignment.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<OctreeNode>,
    objects: usize,
    assignments: usize,
    leaf_capacity: usize,
    max_depth: u32,
}

impl Octree {
    /// Builds an octree over `objects` covering `extent`.
    ///
    /// * `leaf_capacity` — a leaf holding more objects is split (unless `max_depth`
    ///   is reached).
    /// * `max_depth` — hard recursion limit; keeps heavily overlapping inputs from
    ///   splitting forever.
    ///
    /// # Panics
    /// Panics if `leaf_capacity` is zero.
    pub fn build(
        extent: Aabb,
        objects: &[SpatialObject],
        leaf_capacity: usize,
        max_depth: u32,
    ) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        let root = OctreeNode {
            region: extent,
            first_child: None,
            child_count: 0,
            entries: (0..objects.len() as u32).collect(),
        };
        let mut tree = Octree {
            nodes: vec![root],
            objects: objects.len(),
            assignments: objects.len(),
            leaf_capacity,
            max_depth,
        };
        tree.split_recursively(0, objects, 0);
        tree
    }

    /// A reasonable default configuration: 32 objects per leaf, depth at most 8.
    pub fn with_defaults(extent: Aabb, objects: &[SpatialObject]) -> Self {
        Self::build(extent, objects, 32, 8)
    }

    fn split_recursively(&mut self, node: usize, objects: &[SpatialObject], depth: u32) {
        if self.nodes[node].entries.len() <= self.leaf_capacity || depth >= self.max_depth {
            return;
        }
        let region = self.nodes[node].region;
        let centre = region.center();
        // Only split axes with positive extent; degenerate (e.g. planar 2-D) axes
        // would otherwise produce coinciding sibling regions.
        let splittable: Vec<usize> = (0..3).filter(|&axis| region.side(axis) > 0.0).collect();
        if splittable.is_empty() {
            return;
        }
        let child_count = 1u32 << splittable.len();
        let first = self.nodes.len() as u32;
        for combo in 0..child_count {
            let child_region = sub_region(&region, centre, &splittable, combo);
            self.nodes.push(OctreeNode {
                region: child_region,
                first_child: None,
                child_count: 0,
                entries: Vec::new(),
            });
        }
        // Distribute the parent's entries to every overlapping child.
        let entries = std::mem::take(&mut self.nodes[node].entries);
        self.assignments -= entries.len();
        for id in entries {
            let mbr = objects[id as usize].mbr;
            for child_offset in 0..child_count as usize {
                let child = first as usize + child_offset;
                if self.nodes[child].region.intersects(&mbr) {
                    self.nodes[child].entries.push(id);
                    self.assignments += 1;
                }
            }
        }
        self.nodes[node].first_child = Some(first);
        self.nodes[node].child_count = child_count as u8;
        // Recurse.
        for child_offset in 0..child_count as usize {
            self.split_recursively(first as usize + child_offset, objects, depth + 1);
        }
    }

    /// Number of indexed objects (before replication).
    #[inline]
    pub fn len(&self) -> usize {
        self.objects
    }

    /// `true` if the tree indexes no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects == 0
    }

    /// Total number of (object, leaf) assignments; replication is
    /// `total_assignments() - len()`.
    #[inline]
    pub fn total_assignments(&self) -> usize {
        self.assignments
    }

    /// Number of nodes (inner + leaf).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Calls `f` with the region and object ids of every non-empty leaf.
    pub fn for_each_leaf(&self, mut f: impl FnMut(&Aabb, &[u32])) {
        for node in &self.nodes {
            if node.first_child.is_none() && !node.entries.is_empty() {
                f(&node.region, &node.entries);
            }
        }
    }

    /// The ids of all objects whose leaf regions overlap `query` (deduplicated).
    pub fn query_candidates(&self, query: &Aabb) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if !node.region.intersects(query) {
                continue;
            }
            match node.first_child {
                Some(first) => {
                    stack.extend((first as usize)..(first as usize + node.child_count as usize))
                }
                None => out.extend_from_slice(&node.entries),
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `true` if `leaf_region` is the unique *owner* of point `p` among the leaves of
    /// this tree: ownership uses half-open intervals (`[min, max)`, closed at the
    /// global upper boundary), so a point lying exactly on a split plane belongs to
    /// exactly one leaf. Join algorithms use this to report a replicated pair from a
    /// single leaf.
    pub fn owns_point(&self, leaf_region: &Aabb, p: &Point3) -> bool {
        let global = self.nodes[0].region;
        for axis in 0..3 {
            let v = p.coord(axis);
            if v < leaf_region.min.coord(axis) {
                return false;
            }
            let hi = leaf_region.max.coord(axis);
            let at_global_max = hi >= global.max.coord(axis);
            if v > hi || (v == hi && !at_global_max) {
                return false;
            }
        }
        true
    }
}

impl MemoryUsage for Octree {
    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<OctreeNode>()
            + self.nodes.iter().map(|n| vec_bytes(&n.entries)).sum::<usize>()
    }
}

/// The sub-region selected by `combo` (one bit per *splittable* axis, low bit = first
/// splittable axis; bit set = upper half) of `region` split at `centre`. Axes not in
/// `splittable` keep the parent's full (degenerate) range.
fn sub_region(region: &Aabb, centre: Point3, splittable: &[usize], combo: u32) -> Aabb {
    let mut min = region.min;
    let mut max = region.max;
    for (bit, &axis) in splittable.iter().enumerate() {
        if combo & (1 << bit) != 0 {
            min.set_coord(axis, centre.coord(axis));
        } else {
            max.set_coord(axis, centre.coord(axis));
        }
    }
    Aabb::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::Dataset;

    fn sample(n: usize, seed: u64, spread: f64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * spread, next() * spread, next() * spread);
            Aabb::new(min, min + Point3::splat(0.3 + next() * 2.0))
        }))
    }

    #[test]
    fn octant_regions_tile_the_parent() {
        let region = Aabb::new(Point3::ORIGIN, Point3::new(8.0, 4.0, 2.0));
        let centre = region.center();
        let splittable = [0usize, 1, 2];
        let mut total_volume = 0.0;
        for combo in 0..8 {
            let r = sub_region(&region, centre, &splittable, combo);
            assert!(region.contains(&r));
            total_volume += r.volume();
        }
        assert!((total_volume - region.volume()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_axes_are_not_split_and_ownership_is_unique() {
        // Planar (2-D) data: the z axis must not be split, and every point must be
        // owned by exactly one leaf.
        let mut ds = Dataset::new();
        for x in 0..20 {
            for y in 0..20 {
                let min = Point3::new(x as f64, y as f64, 0.0);
                ds.push_mbr(Aabb::new(min, min + Point3::new(0.9, 0.9, 0.0)));
            }
        }
        let tree = Octree::build(ds.extent().unwrap(), ds.objects(), 16, 6);
        assert!(tree.node_count() > 1);
        let probes = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(10.45, 9.95, 0.0), // on/near split planes
            Point3::new(19.9, 19.9, 0.0),  // the global max corner of the extent
            Point3::new(5.2, 17.3, 0.0),
        ];
        for p in probes {
            let mut owners = 0;
            tree.for_each_leaf(|region, _| {
                if tree.owns_point(region, &p) {
                    owners += 1;
                }
            });
            assert_eq!(owners, 1, "point {p:?} must be owned by exactly one leaf");
        }
    }

    #[test]
    fn small_inputs_stay_in_the_root_leaf() {
        let ds = sample(10, 1, 50.0);
        let tree = Octree::build(ds.extent().unwrap(), ds.objects(), 32, 8);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.total_assignments(), 10);
        let mut leaves = 0;
        tree.for_each_leaf(|_, ids| {
            leaves += 1;
            assert_eq!(ids.len(), 10);
        });
        assert_eq!(leaves, 1);
    }

    #[test]
    fn every_object_is_assigned_to_every_overlapping_leaf() {
        let ds = sample(600, 2, 60.0);
        let tree = Octree::with_defaults(ds.extent().unwrap(), ds.objects());
        assert!(tree.node_count() > 1, "600 objects must force splits");
        assert!(tree.total_assignments() >= ds.len(), "multiple assignment only adds copies");
        // Each leaf's entries actually overlap the leaf region; and each object is
        // present in every leaf it overlaps.
        let mut per_object = vec![0usize; ds.len()];
        tree.for_each_leaf(|region, ids| {
            for &id in ids {
                assert!(region.intersects(&ds.get(id).mbr));
                per_object[id as usize] += 1;
            }
        });
        assert!(per_object.iter().all(|&c| c >= 1), "no object may be lost");
    }

    #[test]
    fn query_candidates_superset_of_true_matches() {
        let ds = sample(500, 3, 40.0);
        let tree = Octree::with_defaults(ds.extent().unwrap(), ds.objects());
        let query = Aabb::new(Point3::splat(10.0), Point3::splat(18.0));
        let candidates = tree.query_candidates(&query);
        for o in ds.iter() {
            if o.mbr.intersects(&query) {
                assert!(candidates.binary_search(&o.id).is_ok(), "missing candidate {}", o.id);
            }
        }
        assert!(tree.memory_bytes() > 0);
    }

    #[test]
    fn max_depth_limits_splitting() {
        // Identical boxes can never be separated; the depth limit must stop recursion.
        let ds = Dataset::from_mbrs(
            std::iter::repeat(Aabb::new(Point3::ORIGIN, Point3::splat(1.0))).take(200),
        );
        let tree =
            Octree::build(Aabb::new(Point3::ORIGIN, Point3::splat(10.0)), ds.objects(), 4, 3);
        // Depth 3 means at most 1 + 8 + 64 + 512 nodes.
        assert!(tree.node_count() <= 585);
    }

    #[test]
    #[should_panic(expected = "leaf capacity must be positive")]
    fn zero_capacity_rejected() {
        let ds = sample(5, 4, 10.0);
        let _ = Octree::build(ds.extent().unwrap(), ds.objects(), 0, 4);
    }
}

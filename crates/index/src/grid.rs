//! Uniform space-partitioning grid with multiple assignment.
//!
//! PBSM (Patel & DeWitt, SIGMOD '96) partitions the joint extent of both datasets
//! into a uniform grid and assigns every object to *all* cells it overlaps (multiple
//! assignment). The paper evaluates two configurations, 100 and 500 cells per
//! dimension, illustrating the comparisons-vs-memory trade-off. The same geometric
//! grid ([`UniformGrid`]) is reused by TOUCH's local join (with a sparse cell store,
//! see `touch-core`).
//!
//! [`MultiAssignGrid`] stores the assignment in CSR form (one offsets array + one
//! entries array) rather than one `Vec` per cell: two flat allocations, no per-cell
//! overhead, and a memory footprint that directly reflects the replication the paper
//! attributes PBSM's memory consumption to.

use touch_geom::{Aabb, SpatialObject};
use touch_metrics::{vec_bytes, MemoryUsage};

/// Integer coordinates of a grid cell, one index per axis.
pub type CellCoords = [usize; 3];

/// The geometry of a uniform grid over an extent: cell counts and cell sizes per axis.
///
/// `UniformGrid` is pure geometry — it maps points and boxes to cell coordinates but
/// stores nothing. [`MultiAssignGrid`] (dense, CSR) and the sparse per-node grids of
/// the TOUCH local join build on it.
#[derive(Debug, Clone, Copy)]
pub struct UniformGrid {
    extent: Aabb,
    cells: [usize; 3],
    cell_size: [f64; 3],
}

impl UniformGrid {
    /// Creates a grid over `extent` with `cells_per_dim` cells along every axis.
    ///
    /// # Panics
    /// Panics if `cells_per_dim` is zero.
    pub fn new(extent: Aabb, cells_per_dim: usize) -> Self {
        Self::with_cells(extent, [cells_per_dim; 3])
    }

    /// Creates a grid with a per-axis cell count.
    ///
    /// # Panics
    /// Panics if any cell count is zero.
    pub fn with_cells(extent: Aabb, cells: [usize; 3]) -> Self {
        assert!(cells.iter().all(|&c| c > 0), "cell counts must be positive");
        let ext = extent.extent();
        let sides = [ext.x, ext.y, ext.z];
        let mut cell_size = [0.0; 3];
        for axis in 0..3 {
            cell_size[axis] =
                if sides[axis] > 0.0 { sides[axis] / cells[axis] as f64 } else { 0.0 };
        }
        UniformGrid { extent, cells, cell_size }
    }

    /// Creates a grid aiming for `cells_per_dim` cells per axis but never letting a
    /// cell shrink below `min_cell_size` (Section 5.2.2: the cell size should stay
    /// "considerably larger than the average size of the objects").
    pub fn with_min_cell_size(extent: Aabb, cells_per_dim: usize, min_cell_size: f64) -> Self {
        assert!(cells_per_dim > 0, "cell counts must be positive");
        let ext = extent.extent();
        let sides = [ext.x, ext.y, ext.z];
        let mut cells = [1usize; 3];
        for axis in 0..3 {
            let max_cells = if min_cell_size > 0.0 && sides[axis] > 0.0 {
                (sides[axis] / min_cell_size).floor() as usize
            } else {
                cells_per_dim
            };
            cells[axis] = cells_per_dim.min(max_cells).max(1);
        }
        Self::with_cells(extent, cells)
    }

    /// The extent the grid covers.
    #[inline]
    pub fn extent(&self) -> Aabb {
        self.extent
    }

    /// Cells per axis.
    #[inline]
    pub fn cells_per_axis(&self) -> [usize; 3] {
        self.cells
    }

    /// Cell side length per axis (0 along degenerate axes).
    #[inline]
    pub fn cell_size(&self) -> [f64; 3] {
        self.cell_size
    }

    /// Total number of cells.
    #[inline]
    pub fn total_cells(&self) -> usize {
        self.cells[0] * self.cells[1] * self.cells[2]
    }

    #[inline]
    fn axis_cell(&self, axis: usize, v: f64) -> usize {
        if self.cell_size[axis] <= 0.0 {
            return 0;
        }
        let rel = (v - self.extent.min.coord(axis)) / self.cell_size[axis];
        (rel.floor().max(0.0) as usize).min(self.cells[axis] - 1)
    }

    /// The coordinates of the cell containing `p` (points outside the extent are
    /// clamped to the border cells).
    #[inline]
    pub fn cell_of_point(&self, p: &touch_geom::Point3) -> CellCoords {
        [self.axis_cell(0, p.x), self.axis_cell(1, p.y), self.axis_cell(2, p.z)]
    }

    /// The inclusive range of cell coordinates overlapped by `mbr`.
    #[inline]
    pub fn cell_range(&self, mbr: &Aabb) -> (CellCoords, CellCoords) {
        let lo = [
            self.axis_cell(0, mbr.min.x),
            self.axis_cell(1, mbr.min.y),
            self.axis_cell(2, mbr.min.z),
        ];
        let hi = [
            self.axis_cell(0, mbr.max.x),
            self.axis_cell(1, mbr.max.y),
            self.axis_cell(2, mbr.max.z),
        ];
        (lo, hi)
    }

    /// Number of cells overlapped by `mbr`.
    #[inline]
    pub fn cells_overlapped(&self, mbr: &Aabb) -> usize {
        let (lo, hi) = self.cell_range(mbr);
        (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1) * (hi[2] - lo[2] + 1)
    }

    /// Linearises cell coordinates into a single index in `0..total_cells()`.
    #[inline]
    pub fn linear_index(&self, c: CellCoords) -> usize {
        (c[2] * self.cells[1] + c[1]) * self.cells[0] + c[0]
    }

    /// Calls `f` with the linear index of every cell overlapped by `mbr`.
    #[inline]
    pub fn for_each_overlapped_cell(&self, mbr: &Aabb, mut f: impl FnMut(usize)) {
        let (lo, hi) = self.cell_range(mbr);
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    f(self.linear_index([x, y, z]));
                }
            }
        }
    }
}

/// A uniform grid with every object assigned to all cells it overlaps (PBSM-style
/// multiple assignment), stored in CSR form.
#[derive(Debug, Clone)]
pub struct MultiAssignGrid {
    grid: UniformGrid,
    /// `offsets[c]..offsets[c+1]` indexes `entries` for cell `c`.
    offsets: Vec<u32>,
    /// Object ids, grouped by cell.
    entries: Vec<u32>,
    /// Number of objects assigned (before replication).
    objects: usize,
}

impl MultiAssignGrid {
    /// Assigns `objects` to `grid`, replicating each object into every cell its MBR
    /// overlaps. Returns the built index; the number of replicas created (total
    /// assignments minus number of objects) is available via
    /// [`MultiAssignGrid::replicas`].
    pub fn build(grid: UniformGrid, objects: &[SpatialObject]) -> Self {
        let cells = grid.total_cells();
        // Pass 1: count assignments per cell.
        let mut counts = vec![0u32; cells + 1];
        for o in objects {
            grid.for_each_overlapped_cell(&o.mbr, |c| counts[c + 1] += 1);
        }
        // Prefix sums -> offsets.
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let total = counts[cells] as usize;
        // Pass 2: fill entries.
        let mut entries = vec![0u32; total];
        let mut cursor = counts.clone();
        for o in objects {
            grid.for_each_overlapped_cell(&o.mbr, |c| {
                entries[cursor[c] as usize] = o.id;
                cursor[c] += 1;
            });
        }
        MultiAssignGrid { grid, offsets: counts, entries, objects: objects.len() }
    }

    /// The parallel form of [`MultiAssignGrid::build`]: the objects are split
    /// into contiguous chunks, each chunk's cell placements are computed on a
    /// scoped thread (the geometric traversal is the expensive part), and the
    /// placements are then merged **in chunk order** into the CSR arrays.
    /// Because chunks are contiguous and each preserves its internal traversal
    /// order, the resulting `offsets`/`entries` are bit-identical to the
    /// sequential build's — the two constructors are interchangeable anywhere,
    /// including replica accounting.
    pub fn build_parallel(grid: UniformGrid, objects: &[SpatialObject], threads: usize) -> Self {
        let cells = grid.total_cells();
        let threads = threads.clamp(1, objects.len().max(1));
        // Placements index cells as u32; a grid that large (or one worker)
        // takes the sequential path unchanged.
        if threads <= 1 || cells >= u32::MAX as usize {
            return Self::build(grid, objects);
        }
        let chunk = objects.len().div_ceil(threads);
        let placements: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = objects
                .chunks(chunk)
                .map(|objs| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for o in objs {
                            grid.for_each_overlapped_cell(&o.mbr, |c| out.push((c as u32, o.id)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(placed) => placed,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut counts = vec![0u32; cells + 1];
        for placed in &placements {
            for &(c, _) in placed {
                counts[c as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let total = counts[cells] as usize;
        let mut entries = vec![0u32; total];
        let mut cursor = counts.clone();
        for placed in &placements {
            for &(c, id) in placed {
                entries[cursor[c as usize] as usize] = id;
                cursor[c as usize] += 1;
            }
        }
        MultiAssignGrid { grid, offsets: counts, entries, objects: objects.len() }
    }

    /// The grid geometry.
    #[inline]
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The object ids assigned to the cell with linear index `cell`.
    #[inline]
    pub fn cell_entries(&self, cell: usize) -> &[u32] {
        let start = self.offsets[cell] as usize;
        let end = self.offsets[cell + 1] as usize;
        &self.entries[start..end]
    }

    /// Total number of (object, cell) assignments.
    #[inline]
    pub fn total_assignments(&self) -> usize {
        self.entries.len()
    }

    /// Number of replicas created by multiple assignment
    /// (total assignments − number of objects).
    #[inline]
    pub fn replicas(&self) -> usize {
        self.entries.len().saturating_sub(self.objects)
    }

    /// Iterator over the linear indices of non-empty cells.
    pub fn non_empty_cells(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.grid.total_cells()).filter(|&c| self.offsets[c + 1] > self.offsets[c])
    }
}

impl MemoryUsage for MultiAssignGrid {
    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.offsets) + vec_bytes(&self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Dataset, Point3};

    fn space() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(100.0))
    }

    #[test]
    fn geometry_basics() {
        let g = UniformGrid::new(space(), 10);
        assert_eq!(g.cells_per_axis(), [10, 10, 10]);
        assert_eq!(g.total_cells(), 1000);
        assert_eq!(g.cell_size(), [10.0, 10.0, 10.0]);
        assert_eq!(g.cell_of_point(&Point3::new(0.0, 0.0, 0.0)), [0, 0, 0]);
        assert_eq!(g.cell_of_point(&Point3::new(99.9, 55.0, 10.0)), [9, 5, 1]);
        // Boundary and outside points clamp to valid cells.
        assert_eq!(g.cell_of_point(&Point3::new(100.0, 200.0, -5.0)), [9, 9, 0]);
    }

    #[test]
    fn cell_range_and_overlap_count() {
        let g = UniformGrid::new(space(), 10);
        let mbr = Aabb::new(Point3::new(5.0, 15.0, 95.0), Point3::new(25.0, 15.0, 99.0));
        let (lo, hi) = g.cell_range(&mbr);
        assert_eq!(lo, [0, 1, 9]);
        assert_eq!(hi, [2, 1, 9]);
        assert_eq!(g.cells_overlapped(&mbr), 3);
        let mut visited = Vec::new();
        g.for_each_overlapped_cell(&mbr, |c| visited.push(c));
        assert_eq!(visited.len(), 3);
        // all distinct
        let mut dedup = visited.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn linear_index_is_a_bijection() {
        let g = UniformGrid::with_cells(space(), [4, 3, 2]);
        let mut seen = vec![false; g.total_cells()];
        for z in 0..2 {
            for y in 0..3 {
                for x in 0..4 {
                    let idx = g.linear_index([x, y, z]);
                    assert!(idx < g.total_cells());
                    assert!(!seen[idx], "linear index collision at {:?}", [x, y, z]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_axis_maps_to_single_cell() {
        // 2-D data (zero z extent) must still work: the z axis has one logical cell.
        let flat = Aabb::new(Point3::ORIGIN, Point3::new(100.0, 100.0, 0.0));
        let g = UniformGrid::new(flat, 10);
        assert_eq!(g.cell_of_point(&Point3::new(50.0, 50.0, 0.0))[2], 0);
        let mbr = Aabb::new(Point3::new(1.0, 1.0, 0.0), Point3::new(2.0, 2.0, 0.0));
        assert_eq!(g.cells_overlapped(&mbr), 1);
    }

    #[test]
    fn min_cell_size_caps_resolution() {
        let g = UniformGrid::with_min_cell_size(space(), 500, 5.0);
        // 100 units / 5 units minimum cell size = at most 20 cells per axis.
        assert_eq!(g.cells_per_axis(), [20, 20, 20]);
        let g2 = UniformGrid::with_min_cell_size(space(), 10, 5.0);
        assert_eq!(g2.cells_per_axis(), [10, 10, 10]);
    }

    #[test]
    fn multi_assign_replicates_boundary_objects() {
        let g = UniformGrid::new(space(), 10);
        let mut ds = Dataset::new();
        // Object fully inside one cell.
        ds.push_mbr(Aabb::new(Point3::splat(1.0), Point3::splat(2.0)));
        // Object spanning two cells along x.
        ds.push_mbr(Aabb::new(Point3::new(8.0, 1.0, 1.0), Point3::new(12.0, 2.0, 2.0)));
        // Object spanning 8 cells (2 per axis).
        ds.push_mbr(Aabb::new(Point3::splat(18.0), Point3::splat(22.0)));
        let idx = MultiAssignGrid::build(g, ds.objects());
        assert_eq!(idx.total_assignments(), 1 + 2 + 8);
        assert_eq!(idx.replicas(), 8);
        // Each listed cell actually intersects the object's MBR.
        for c in idx.non_empty_cells() {
            assert!(!idx.cell_entries(c).is_empty());
        }
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn every_object_cell_pair_is_consistent() {
        let g = UniformGrid::new(space(), 5);
        let mut ds = Dataset::new();
        let mut k = 0.0;
        for _ in 0..50 {
            k += 1.9;
            let min = Point3::new(k % 90.0, (k * 1.7) % 90.0, (k * 2.3) % 90.0);
            ds.push_mbr(Aabb::new(min, min + Point3::splat(7.0)));
        }
        let idx = MultiAssignGrid::build(g, ds.objects());
        // Sum over cells equals sum over objects of cells_overlapped.
        let expected: usize = ds.iter().map(|o| g.cells_overlapped(&o.mbr)).sum();
        assert_eq!(idx.total_assignments(), expected);
        // And each object appears in each of its cells exactly once.
        for o in ds.iter() {
            let mut appearances = 0;
            g.for_each_overlapped_cell(&o.mbr, |c| {
                appearances += idx.cell_entries(c).iter().filter(|&&id| id == o.id).count();
            });
            assert_eq!(appearances, g.cells_overlapped(&o.mbr));
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let g = UniformGrid::new(space(), 8);
        let mut ds = Dataset::new();
        let mut k = 0.0;
        for _ in 0..257 {
            k += 2.3;
            let min = Point3::new(k % 92.0, (k * 1.3) % 92.0, (k * 3.1) % 92.0);
            ds.push_mbr(Aabb::new(min, min + Point3::splat(0.5 + k % 9.0)));
        }
        let seq = MultiAssignGrid::build(g, ds.objects());
        for threads in [1, 2, 3, 4, 8, 300] {
            let par = MultiAssignGrid::build_parallel(g, ds.objects(), threads);
            assert_eq!(par.offsets, seq.offsets, "{threads} threads: offsets diverged");
            assert_eq!(par.entries, seq.entries, "{threads} threads: entry order diverged");
            assert_eq!(par.replicas(), seq.replicas());
        }
        // Degenerate inputs stay well-defined.
        let empty = MultiAssignGrid::build_parallel(g, &[], 4);
        assert_eq!(empty.total_assignments(), 0);
    }

    #[test]
    #[should_panic(expected = "cell counts must be positive")]
    fn zero_cells_panics() {
        let _ = UniformGrid::new(space(), 0);
    }
}

//! Sort-Tile-Recursive (STR) bulk-loading partitioner.
//!
//! STR (Leutenegger, Lopez & Edgington, ICDE '97) groups spatially close objects into
//! buckets of (nearly) equal size: it sorts objects by the centre of their MBR along
//! the first dimension, cuts the sequence into vertical *slabs*, and recurses into
//! each slab with the remaining dimensions. The resulting consecutive runs of `cap`
//! objects have compact MBRs, which is why the paper uses STR both for TOUCH's
//! tree-building phase (Section 5.1) and for the bulk-loaded R-tree baseline.

use touch_geom::Point3;

/// Reorders `items` in place so that consecutive chunks of `cap` items form STR tiles
/// (spatially coherent buckets).
///
/// `center` extracts the point used for sorting — typically the centre of the item's
/// MBR. After the call, `items.chunks(cap)` are the STR buckets in tile order.
pub fn str_sort<T>(items: &mut [T], center: impl Fn(&T) -> Point3 + Copy, cap: usize) {
    assert!(cap > 0, "bucket capacity must be positive");
    str_sort_axis(items, center, cap, 0);
}

/// Reorders `items` in place with [`str_sort`] and returns the bucket boundaries as
/// index ranges (`start..end` into the reordered slice).
pub fn str_partition<T>(
    items: &mut [T],
    center: impl Fn(&T) -> Point3 + Copy,
    cap: usize,
) -> Vec<std::ops::Range<usize>> {
    str_sort(items, center, cap);
    let n = items.len();
    let mut ranges = Vec::with_capacity(n.div_ceil(cap.max(1)));
    let mut start = 0;
    while start < n {
        let end = (start + cap).min(n);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

fn str_sort_axis<T>(
    items: &mut [T],
    center: impl Fn(&T) -> Point3 + Copy,
    cap: usize,
    axis: usize,
) {
    let n = items.len();
    if n <= cap {
        return;
    }
    sort_by_axis(items, center, axis);
    if axis + 1 >= touch_geom::DIMS {
        // Last dimension: the sorted order is the final tile order.
        return;
    }
    // Number of buckets still to form and number of slabs along this axis:
    // S = ceil(P^(1/d_remaining)) where P = ceil(n / cap).
    let buckets = n.div_ceil(cap);
    let remaining_dims = (touch_geom::DIMS - axis) as f64;
    let slabs = (buckets as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slabs = slabs.clamp(1, buckets);
    let slab_size = n.div_ceil(slabs);
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_sort_axis(&mut items[start..end], center, cap, axis + 1);
        start = end;
    }
}

fn sort_by_axis<T>(items: &mut [T], center: impl Fn(&T) -> Point3 + Copy, axis: usize) {
    items.sort_by(|a, b| {
        center(a)
            .coord(axis)
            .partial_cmp(&center(b).coord(axis))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Aabb, Dataset, SpatialObject};

    fn grid_objects(side: usize) -> Vec<SpatialObject> {
        // side³ unit boxes on an integer lattice.
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(x as f64, y as f64, z as f64);
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(0.9)));
                }
            }
        }
        ds.objects().to_vec()
    }

    fn bucket_mbr(objs: &[SpatialObject]) -> Aabb {
        Aabb::union_all(objs.iter().map(|o| o.mbr)).unwrap()
    }

    #[test]
    fn partition_preserves_every_item_exactly_once() {
        let mut objs = grid_objects(6);
        let before: Vec<u32> = {
            let mut ids: Vec<u32> = objs.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            ids
        };
        let ranges = str_partition(&mut objs, |o| o.mbr.center(), 16);
        let mut after: Vec<u32> = objs.iter().map(|o| o.id).collect();
        after.sort_unstable();
        assert_eq!(before, after, "STR must be a permutation");
        // Ranges cover 0..n without gaps or overlap.
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, objs.len());
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, objs.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn bucket_sizes_are_capacity_except_last() {
        let mut objs = grid_objects(5); // 125 objects
        let ranges = str_partition(&mut objs, |o| o.mbr.center(), 16);
        assert_eq!(ranges.len(), 8);
        for r in &ranges[..ranges.len() - 1] {
            assert_eq!(r.len(), 16);
        }
        assert_eq!(ranges.last().unwrap().len(), 125 - 7 * 16);
    }

    #[test]
    fn str_buckets_are_tighter_than_shuffled_buckets() {
        // The point of STR: buckets of spatially close objects have far smaller MBR
        // volume than buckets formed from a scrambled object order.
        let mut shuffled = grid_objects(8); // 512 objects
        shuffled.sort_by_key(|o| (o.id as usize).wrapping_mul(2654435761) % 4096);
        let cap = 64;
        let shuffled_volume: f64 = shuffled.chunks(cap).map(|c| bucket_mbr(c).volume()).sum();
        let mut sorted = shuffled.clone();
        let ranges = str_partition(&mut sorted, |o| o.mbr.center(), cap);
        let str_volume: f64 = ranges.iter().map(|r| bucket_mbr(&sorted[r.clone()]).volume()).sum();
        assert!(
            str_volume < shuffled_volume * 0.5,
            "STR volume {str_volume} should be well below shuffled volume {shuffled_volume}"
        );
    }

    #[test]
    fn small_inputs_are_single_bucket() {
        let mut objs = grid_objects(2); // 8 objects
        let ranges = str_partition(&mut objs, |o| o.mbr.center(), 100);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], 0..8);
        let mut empty: Vec<SpatialObject> = Vec::new();
        assert!(str_partition(&mut empty, |o| o.mbr.center(), 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let mut objs = grid_objects(2);
        str_sort(&mut objs, |o| o.mbr.center(), 0);
    }

    #[test]
    fn last_axis_is_sorted_within_slabs() {
        // For a 1-D-like dataset (all y=z=0) STR degenerates to a plain sort by x.
        let mut ds = Dataset::new();
        for x in [5.0, 1.0, 9.0, 3.0, 7.0, 0.0, 2.0, 8.0] {
            let min = Point3::new(x, 0.0, 0.0);
            ds.push_mbr(Aabb::new(min, min + Point3::splat(0.5)));
        }
        let mut objs = ds.objects().to_vec();
        str_sort(&mut objs, |o| o.mbr.center(), 2);
        let xs: Vec<f64> = objs.iter().map(|o| o.mbr.min.x).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(xs, sorted);
    }
}

//! STR bulk-loaded (packed) R-tree.
//!
//! The paper's indexed baselines use bulk-loaded R-trees: the indexed nested loop
//! joins dataset B against an R-tree on A, and the "RTree" baseline performs a
//! synchronous traversal of R-trees built on both datasets (Brinkhoff et al.,
//! SIGMOD '93). Per Section 6, an STR-packed R-tree is used because it performs best
//! on non-extreme real-world data.
//!
//! The tree is stored as a flat arena: all objects live in one `Vec` in STR (tile)
//! order, and all nodes live in one `Vec` built level by level, each node referencing
//! a contiguous range of either objects (leaves) or child nodes (inner nodes). No
//! per-node allocations, no pointers — small and cache-friendly, and the memory
//! footprint the evaluation reports is simply the sum of the two vectors.

use crate::str_pack::str_sort;
use std::ops::Range;
use touch_geom::{Aabb, SpatialObject};
use touch_metrics::{vec_bytes, Counters, MemoryUsage};

/// One node of a [`PackedRTree`].
#[derive(Debug, Clone, Copy)]
pub struct RTreeNode {
    /// MBR enclosing everything below this node.
    pub mbr: Aabb,
    /// Tree level: 0 for leaves, increasing towards the root.
    pub level: u32,
    first: u32,
    count: u32,
    is_leaf: bool,
}

impl RTreeNode {
    /// `true` if this node is a leaf (its range indexes objects, not child nodes).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.is_leaf
    }

    /// For a leaf: the range of object indices it covers.
    /// For an inner node: the range of child-node indices it covers.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.first as usize..(self.first + self.count) as usize
    }

    /// Number of entries (objects or children) under this node.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// `true` if the node has no entries (only possible for an empty tree's root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// An STR bulk-loaded R-tree over a set of [`SpatialObject`]s.
#[derive(Debug, Clone)]
pub struct PackedRTree {
    items: Vec<SpatialObject>,
    nodes: Vec<RTreeNode>,
    /// Node-index ranges of each level, from leaves (index 0) to the root level.
    levels: Vec<Range<usize>>,
    leaf_capacity: usize,
    fanout: usize,
}

impl PackedRTree {
    /// Bulk-loads a tree from `objects` with the given leaf capacity and inner-node
    /// fanout.
    ///
    /// The paper's R-tree baselines use small nodes ("a fanout of 2 and nodes of
    /// 2 KB"); [`PackedRTree::paper_default`] mirrors that configuration.
    ///
    /// # Panics
    /// Panics if `leaf_capacity` or `fanout` is zero.
    // Packing invariants, not fallible paths: every grouped range is non-empty
    // by loop construction and `levels` is pushed before it is read.
    #[allow(clippy::expect_used, clippy::unwrap_used)]
    pub fn build(objects: &[SpatialObject], leaf_capacity: usize, fanout: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        assert!(fanout > 1, "fanout must be at least 2");
        let mut items = objects.to_vec();
        str_sort(&mut items, |o| o.mbr.center(), leaf_capacity);

        let mut nodes: Vec<RTreeNode> = Vec::new();
        let mut levels: Vec<Range<usize>> = Vec::new();

        if items.is_empty() {
            return PackedRTree { items, nodes, levels, leaf_capacity, fanout };
        }

        // Leaf level.
        let leaf_start = nodes.len();
        let mut start = 0;
        while start < items.len() {
            let end = (start + leaf_capacity).min(items.len());
            let mbr =
                Aabb::union_all(items[start..end].iter().map(|o| o.mbr)).expect("non-empty leaf");
            nodes.push(RTreeNode {
                mbr,
                level: 0,
                first: start as u32,
                count: (end - start) as u32,
                is_leaf: true,
            });
            start = end;
        }
        levels.push(leaf_start..nodes.len());

        // Upper levels: group consecutive runs of `fanout` nodes of the previous
        // level (they are already in STR tile order).
        let mut level = 1u32;
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap().clone();
            let this_start = nodes.len();
            let mut child = prev.start;
            while child < prev.end {
                let child_end = (child + fanout).min(prev.end);
                let mbr = Aabb::union_all(nodes[child..child_end].iter().map(|n| n.mbr))
                    .expect("non-empty inner node");
                nodes.push(RTreeNode {
                    mbr,
                    level,
                    first: child as u32,
                    count: (child_end - child) as u32,
                    is_leaf: false,
                });
                child = child_end;
            }
            levels.push(this_start..nodes.len());
            level += 1;
        }

        PackedRTree { items, nodes, levels, leaf_capacity, fanout }
    }

    /// The paper's R-tree configuration for the baselines: fanout 2 and ~2 KB nodes
    /// (64 objects of 32 bytes per leaf).
    pub fn paper_default(objects: &[SpatialObject]) -> Self {
        Self::build(objects, 64, 2)
    }

    /// Number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the tree indexes no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of tree levels (0 for an empty tree; 1 if the root is a leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf capacity the tree was built with.
    #[inline]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Inner-node fanout the tree was built with.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Index of the root node, or `None` for an empty tree.
    #[inline]
    pub fn root_index(&self) -> Option<usize> {
        self.levels.last().map(|r| r.start)
    }

    /// The root node, or `None` for an empty tree.
    #[inline]
    pub fn root(&self) -> Option<&RTreeNode> {
        self.root_index().map(|i| &self.nodes[i])
    }

    /// The node at `index`.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    #[inline]
    pub fn node(&self, index: usize) -> &RTreeNode {
        &self.nodes[index]
    }

    /// The objects stored in a leaf node.
    ///
    /// # Panics
    /// Panics if `node` is not a leaf.
    #[inline]
    pub fn leaf_entries(&self, node: &RTreeNode) -> &[SpatialObject] {
        assert!(node.is_leaf, "leaf_entries called on an inner node");
        &self.items[node.range()]
    }

    /// The node indices of the children of an inner node.
    ///
    /// # Panics
    /// Panics if `node` is a leaf.
    #[inline]
    pub fn child_indices(&self, node: &RTreeNode) -> Range<usize> {
        assert!(!node.is_leaf, "child_indices called on a leaf node");
        node.range()
    }

    /// All objects in STR order.
    #[inline]
    pub fn items(&self) -> &[SpatialObject] {
        &self.items
    }

    /// Runs a range query: calls `on_hit` for every object whose MBR intersects
    /// `query`.
    ///
    /// Node-level MBR tests are recorded as `node_tests`; object-level tests at the
    /// leaves are recorded as `comparisons`, matching the paper's definition of a
    /// comparison (object against object).
    pub fn query(
        &self,
        query: &Aabb,
        counters: &mut Counters,
        mut on_hit: impl FnMut(&SpatialObject),
    ) {
        let Some(root) = self.root_index() else { return };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if node.is_leaf {
                for obj in &self.items[node.range()] {
                    counters.record_comparison();
                    if obj.mbr.intersects(query) {
                        on_hit(obj);
                    }
                }
            } else {
                for child in node.range() {
                    counters.record_node_test();
                    if self.nodes[child].mbr.intersects(query) {
                        stack.push(child);
                    }
                }
            }
        }
    }

    /// Collects the ids of all objects whose MBR intersects `query`.
    pub fn query_ids(&self, query: &Aabb, counters: &mut Counters) -> Vec<u32> {
        let mut out = Vec::new();
        self.query(query, counters, |o| out.push(o.id));
        out
    }
}

impl MemoryUsage for PackedRTree {
    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.items) + vec_bytes(&self.nodes) + vec_bytes(&self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Dataset, Point3};

    fn lattice(side: usize) -> Dataset {
        let mut ds = Dataset::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(x as f64 * 2.0, y as f64 * 2.0, z as f64 * 2.0);
                    ds.push_mbr(Aabb::new(min, min + Point3::splat(1.0)));
                }
            }
        }
        ds
    }

    #[test]
    fn builds_expected_shape() {
        let ds = lattice(4); // 64 objects
        let tree = PackedRTree::build(ds.objects(), 8, 2);
        assert_eq!(tree.len(), 64);
        assert_eq!(tree.height(), 4); // 8 leaves -> 4 -> 2 -> 1
        assert!(tree.root().is_some());
        assert_eq!(tree.node_count(), 8 + 4 + 2 + 1);
        assert!(tree.memory_bytes() > 0);
    }

    #[test]
    fn empty_tree() {
        let tree = PackedRTree::build(&[], 8, 2);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.root().is_none());
        let mut c = Counters::new();
        let hits = tree.query_ids(&Aabb::new(Point3::ORIGIN, Point3::splat(1.0)), &mut c);
        assert!(hits.is_empty());
        assert_eq!(c.comparisons, 0);
    }

    #[test]
    fn single_leaf_tree() {
        let ds = lattice(1);
        let tree = PackedRTree::build(ds.objects(), 8, 2);
        assert_eq!(tree.height(), 1);
        let root = tree.root().unwrap();
        assert!(root.is_leaf());
        assert_eq!(tree.leaf_entries(root).len(), 1);
    }

    #[test]
    fn node_mbrs_contain_their_subtrees() {
        let ds = lattice(5);
        let tree = PackedRTree::build(ds.objects(), 7, 3);
        for idx in 0..tree.node_count() {
            let node = tree.node(idx);
            if node.is_leaf() {
                for obj in tree.leaf_entries(node) {
                    assert!(node.mbr.contains(&obj.mbr));
                }
            } else {
                for child in tree.child_indices(node) {
                    assert!(node.mbr.contains(&tree.node(child).mbr));
                    assert_eq!(tree.node(child).level + 1, node.level);
                }
            }
        }
        // Root contains everything.
        let root = tree.root().unwrap();
        for o in ds.iter() {
            assert!(root.mbr.contains(&o.mbr));
        }
    }

    #[test]
    fn every_object_is_in_exactly_one_leaf() {
        let ds = lattice(4);
        let tree = PackedRTree::build(ds.objects(), 5, 2);
        let mut seen = vec![0u32; ds.len()];
        for idx in 0..tree.node_count() {
            let node = tree.node(idx);
            if node.is_leaf() {
                for obj in tree.leaf_entries(node) {
                    seen[obj.id as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each object appears exactly once");
    }

    #[test]
    fn query_matches_brute_force() {
        let ds = lattice(6);
        let tree = PackedRTree::build(ds.objects(), 8, 2);
        let queries = [
            Aabb::new(Point3::ORIGIN, Point3::splat(3.0)),
            Aabb::new(Point3::splat(4.5), Point3::splat(7.5)),
            Aabb::new(Point3::new(0.0, 0.0, 9.0), Point3::new(11.0, 11.0, 11.0)),
            Aabb::new(Point3::splat(100.0), Point3::splat(110.0)), // empty
        ];
        for q in &queries {
            let mut c = Counters::new();
            let mut hits = tree.query_ids(q, &mut c);
            hits.sort_unstable();
            let mut expected: Vec<u32> =
                ds.iter().filter(|o| o.mbr.intersects(q)).map(|o| o.id).collect();
            expected.sort_unstable();
            assert_eq!(hits, expected);
        }
    }

    #[test]
    fn query_counts_comparisons_and_node_tests() {
        let ds = lattice(4);
        let tree = PackedRTree::build(ds.objects(), 8, 2);
        let mut c = Counters::new();
        let q = Aabb::new(Point3::ORIGIN, Point3::splat(1.5));
        tree.query(&q, &mut c, |_| {});
        assert!(c.comparisons > 0, "leaf entries must be tested");
        assert!(c.node_tests > 0, "inner nodes must be tested");
        // A selective query must not test every object in the dataset.
        assert!(c.comparisons < ds.len() as u64, "query should prune most leaves");
    }

    #[test]
    fn paper_default_configuration() {
        let ds = lattice(4);
        let tree = PackedRTree::paper_default(ds.objects());
        assert_eq!(tree.fanout(), 2);
        assert_eq!(tree.leaf_capacity(), 64);
        assert_eq!(tree.len(), 64);
        assert_eq!(tree.height(), 1, "64 objects fit in one paper-sized leaf");
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn fanout_one_is_rejected() {
        let ds = lattice(2);
        let _ = PackedRTree::build(ds.objects(), 4, 1);
    }
}

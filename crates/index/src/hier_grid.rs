//! Hierarchical equi-width grids — the partitioning substrate of S3.
//!
//! S3 (Size Separation Spatial Join, Koudas & Sevcik, SIGMOD '97) maintains a
//! hierarchy of `L` equi-width grids of increasing granularity over the joint extent
//! of the two datasets. Each object is assigned to exactly one cell: the cell of the
//! *finest* level at which the object overlaps only a single cell (single assignment,
//! no replication). Cells of the two hierarchies are then joined pairwise whenever
//! one cell's region encloses the other's (same cell, or ancestor/descendant), which
//! is sufficient because every object is fully contained in its assigned cell.
//!
//! The paper configures S3 with a refinement fanout of 3 and 5 levels.

use std::collections::HashMap;
use touch_geom::{Aabb, SpatialObject};
use touch_metrics::MemoryUsage;

/// Integer coordinates of a cell within one level of the hierarchy.
pub type LevelCoords = [u32; 3];

/// A cell of the hierarchy: its level (0 = coarsest, a single cell) and coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelCell {
    /// Level in the hierarchy; level `l` has `refinement^l` cells per axis.
    pub level: u32,
    /// Cell coordinates within that level.
    pub coords: LevelCoords,
}

/// The geometry of a hierarchy of equi-width grids.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalGrid {
    extent: Aabb,
    levels: u32,
    refinement: u32,
}

impl HierarchicalGrid {
    /// Creates a hierarchy of `levels` grids over `extent`, each level `refinement`×
    /// finer per axis than the previous one. Level 0 always has a single cell.
    ///
    /// # Panics
    /// Panics if `levels` is zero or `refinement < 2`.
    pub fn new(extent: Aabb, levels: u32, refinement: u32) -> Self {
        assert!(levels >= 1, "hierarchy needs at least one level");
        assert!(refinement >= 2, "refinement factor must be at least 2");
        HierarchicalGrid { extent, levels, refinement }
    }

    /// The paper's S3 configuration: 5 levels, refinement fanout 3.
    pub fn paper_default(extent: Aabb) -> Self {
        Self::new(extent, 5, 3)
    }

    /// The extent the hierarchy covers.
    #[inline]
    pub fn extent(&self) -> Aabb {
        self.extent
    }

    /// Number of levels.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Refinement factor between consecutive levels.
    #[inline]
    pub fn refinement(&self) -> u32 {
        self.refinement
    }

    /// Cells per axis at `level` (`refinement^level`).
    #[inline]
    pub fn cells_per_axis(&self, level: u32) -> u64 {
        (self.refinement as u64).pow(level)
    }

    #[inline]
    fn axis_cell(&self, level: u32, axis: usize, v: f64) -> u32 {
        let cells = self.cells_per_axis(level);
        let lo = self.extent.min.coord(axis);
        let side = self.extent.max.coord(axis) - lo;
        if side <= 0.0 {
            return 0;
        }
        let cell = ((v - lo) / side * cells as f64).floor();
        (cell.max(0.0) as u64).min(cells - 1) as u32
    }

    /// Cell range (inclusive) overlapped by `mbr` at `level`.
    pub fn cell_range(&self, level: u32, mbr: &Aabb) -> (LevelCoords, LevelCoords) {
        let lo = [
            self.axis_cell(level, 0, mbr.min.x),
            self.axis_cell(level, 1, mbr.min.y),
            self.axis_cell(level, 2, mbr.min.z),
        ];
        let hi = [
            self.axis_cell(level, 0, mbr.max.x),
            self.axis_cell(level, 1, mbr.max.y),
            self.axis_cell(level, 2, mbr.max.z),
        ];
        (lo, hi)
    }

    /// Assigns an MBR to the finest level at which it overlaps exactly one cell.
    ///
    /// Level 0 has a single cell, so assignment always succeeds (as in S3, objects
    /// that straddle cell borders on every finer level end up at the root level and
    /// are compared against everything).
    pub fn assign(&self, mbr: &Aabb) -> LevelCell {
        for level in (0..self.levels).rev() {
            let (lo, hi) = self.cell_range(level, mbr);
            if lo == hi {
                return LevelCell { level, coords: lo };
            }
        }
        LevelCell { level: 0, coords: [0, 0, 0] }
    }

    /// The ancestor of `cell` at the (coarser or equal) `level`.
    ///
    /// # Panics
    /// Panics if `level` is finer than the cell's level.
    pub fn ancestor(&self, cell: LevelCell, level: u32) -> LevelCell {
        assert!(level <= cell.level, "ancestor level must be coarser");
        let shift = (self.refinement as u64).pow(cell.level - level);
        LevelCell {
            level,
            coords: [
                (cell.coords[0] as u64 / shift) as u32,
                (cell.coords[1] as u64 / shift) as u32,
                (cell.coords[2] as u64 / shift) as u32,
            ],
        }
    }

    /// `true` if `ancestor`'s region encloses `descendant`'s region
    /// (requires `ancestor.level <= descendant.level`; equal cells count).
    pub fn encloses(&self, ancestor: LevelCell, descendant: LevelCell) -> bool {
        if ancestor.level > descendant.level {
            return false;
        }
        self.ancestor(descendant, ancestor.level).coords == ancestor.coords
    }
}

/// A single-assignment index over one dataset: each object id stored in the cell
/// [`HierarchicalGrid::assign`] chose for it.
#[derive(Debug, Clone)]
pub struct HierGridIndex {
    hier: HierarchicalGrid,
    /// One sparse map per level: cell coordinates → object ids.
    levels: Vec<HashMap<LevelCoords, Vec<u32>>>,
}

impl HierGridIndex {
    /// Assigns every object of `objects` to its hierarchy cell.
    pub fn build(hier: HierarchicalGrid, objects: &[SpatialObject]) -> Self {
        let mut levels: Vec<HashMap<LevelCoords, Vec<u32>>> =
            (0..hier.levels()).map(|_| HashMap::new()).collect();
        for o in objects {
            let cell = hier.assign(&o.mbr);
            levels[cell.level as usize].entry(cell.coords).or_default().push(o.id);
        }
        HierGridIndex { hier, levels }
    }

    /// The hierarchy geometry.
    #[inline]
    pub fn hierarchy(&self) -> &HierarchicalGrid {
        &self.hier
    }

    /// The object ids in the given cell, if any.
    pub fn cell(&self, cell: LevelCell) -> Option<&[u32]> {
        self.levels.get(cell.level as usize).and_then(|m| m.get(&cell.coords)).map(Vec::as_slice)
    }

    /// Iterator over all non-empty cells and their object ids.
    pub fn non_empty_cells(&self) -> impl Iterator<Item = (LevelCell, &[u32])> + '_ {
        self.levels.iter().enumerate().flat_map(|(level, map)| {
            map.iter().map(move |(coords, ids)| {
                (LevelCell { level: level as u32, coords: *coords }, ids.as_slice())
            })
        })
    }

    /// Number of objects indexed.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|m| m.values().map(Vec::len).sum::<usize>()).sum()
    }

    /// `true` if no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objects assigned to each level, coarsest first
    /// (level 0 objects are compared against everything — see Section 2.2.3).
    pub fn level_histogram(&self) -> Vec<usize> {
        self.levels.iter().map(|m| m.values().map(Vec::len).sum()).collect()
    }
}

impl MemoryUsage for HierGridIndex {
    fn memory_bytes(&self) -> usize {
        // Sparse maps: count one bucket (key + vec header) per occupied cell plus the
        // id storage itself.
        let per_bucket = std::mem::size_of::<LevelCoords>() + std::mem::size_of::<Vec<u32>>();
        self.levels
            .iter()
            .map(|m| {
                m.len() * per_bucket
                    + m.values().map(|v| v.capacity() * std::mem::size_of::<u32>()).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_geom::{Dataset, Point3};

    fn space() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(81.0))
    }

    #[test]
    fn level_resolution_grows_with_refinement() {
        let h = HierarchicalGrid::new(space(), 5, 3);
        assert_eq!(h.cells_per_axis(0), 1);
        assert_eq!(h.cells_per_axis(1), 3);
        assert_eq!(h.cells_per_axis(4), 81);
        assert_eq!(h.levels(), 5);
        assert_eq!(h.refinement(), 3);
    }

    #[test]
    fn small_objects_go_to_fine_levels_large_objects_to_coarse() {
        let h = HierarchicalGrid::new(space(), 5, 3);
        // A tiny object well inside a finest-level cell (cells at level 4 are 1 unit).
        let tiny = Aabb::new(Point3::new(10.1, 10.1, 10.1), Point3::new(10.9, 10.9, 10.9));
        assert_eq!(h.assign(&tiny).level, 4);
        // An object spanning a third of the space cannot fit a single cell below level 1.
        let large = Aabb::new(Point3::new(1.0, 1.0, 1.0), Point3::new(26.0, 2.0, 2.0));
        assert!(h.assign(&large).level <= 1);
        // An object spanning the whole space goes to level 0.
        let huge = Aabb::new(Point3::ORIGIN, Point3::splat(80.0));
        assert_eq!(h.assign(&huge).level, 0);
    }

    #[test]
    fn straddling_objects_are_promoted() {
        let h = HierarchicalGrid::new(space(), 5, 3);
        // Straddles the x = 27 boundary of level-1 cells (cell size 27), so even
        // though it is tiny it cannot be assigned below level 0.
        let straddler = Aabb::new(Point3::new(26.9, 1.0, 1.0), Point3::new(27.1, 1.2, 1.2));
        assert_eq!(h.assign(&straddler).level, 0);
    }

    #[test]
    fn assigned_cell_contains_the_object() {
        let h = HierarchicalGrid::new(space(), 4, 3);
        let ds = sample_dataset();
        for o in ds.iter() {
            let cell = h.assign(&o.mbr);
            let (lo, hi) = h.cell_range(cell.level, &o.mbr);
            assert_eq!(lo, hi, "object must overlap exactly one cell at its level");
            assert_eq!(lo, cell.coords);
        }
    }

    #[test]
    fn ancestor_and_encloses() {
        let h = HierarchicalGrid::new(space(), 5, 3);
        let fine = LevelCell { level: 4, coords: [80, 40, 13] };
        let a3 = h.ancestor(fine, 3);
        assert_eq!(a3, LevelCell { level: 3, coords: [26, 13, 4] });
        let a0 = h.ancestor(fine, 0);
        assert_eq!(a0, LevelCell { level: 0, coords: [0, 0, 0] });
        assert!(h.encloses(a3, fine));
        assert!(h.encloses(a0, fine));
        assert!(h.encloses(fine, fine));
        let other = LevelCell { level: 3, coords: [0, 0, 0] };
        assert!(!h.encloses(other, fine));
        assert!(!h.encloses(fine, other), "finer cell cannot enclose a coarser one");
    }

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let mut k = 0.37;
        for _ in 0..200 {
            k = (k * 7.13 + 1.7) % 75.0;
            let side = 0.2 + (k % 3.0);
            let min = Point3::new(k, (k * 1.3) % 75.0, (k * 2.1) % 75.0);
            ds.push_mbr(Aabb::new(min, min + Point3::splat(side)));
        }
        ds
    }

    #[test]
    fn index_holds_every_object_exactly_once() {
        let h = HierarchicalGrid::paper_default(space());
        let ds = sample_dataset();
        let idx = HierGridIndex::build(h, ds.objects());
        assert_eq!(idx.len(), ds.len());
        assert!(!idx.is_empty());
        let mut seen = vec![0u32; ds.len()];
        for (_, ids) in idx.non_empty_cells() {
            for &id in ids {
                seen[id as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "single assignment: each object once");
        assert_eq!(idx.level_histogram().iter().sum::<usize>(), ds.len());
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn lookup_returns_assigned_objects() {
        let h = HierarchicalGrid::paper_default(space());
        let ds = sample_dataset();
        let idx = HierGridIndex::build(h, ds.objects());
        for o in ds.iter() {
            let cell = h.assign(&o.mbr);
            let ids = idx.cell(cell).expect("assigned cell must exist");
            assert!(ids.contains(&o.id));
        }
        // An untouched cell at the finest level is empty.
        assert!(idx.cell(LevelCell { level: h.levels() - 1, coords: [999, 999, 999] }).is_none());
    }

    #[test]
    #[should_panic(expected = "refinement factor must be at least 2")]
    fn refinement_one_rejected() {
        let _ = HierarchicalGrid::new(space(), 3, 1);
    }
}

//! # touch-index — spatial index substrates for the TOUCH reproduction
//!
//! The TOUCH algorithm and every baseline of the paper's evaluation are built from a
//! small set of indexing substrates, all implemented here from scratch:
//!
//! * [`str_sort`] / [`str_partition`] — the Sort-Tile-Recursive (STR) bulk-loading
//!   partitioner (Leutenegger et al., ICDE '97) used by TOUCH's tree-building phase
//!   and by the packed R-tree,
//! * [`PackedRTree`] — an STR bulk-loaded R-tree with range queries and access to its
//!   node structure (for the synchronous-traversal join baseline),
//! * [`UniformGrid`] / [`MultiAssignGrid`] — space-oriented uniform grid with
//!   multiple assignment, used by PBSM and by TOUCH's grid local join,
//! * [`HierarchicalGrid`] / [`HierGridIndex`] — the hierarchy of increasingly fine
//!   equi-width grids with single assignment used by S3 (Koudas & Sevcik, SIGMOD '97),
//! * [`Octree`] — a region octree with multiple assignment, the 3-D quadtree of the
//!   double-index-traversal discussion in Section 2.2.1 (used by the extra
//!   `OctreeJoin` baseline).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod grid;
mod hier_grid;
mod octree;
mod rtree;
mod str_pack;

pub use grid::{CellCoords, MultiAssignGrid, UniformGrid};
pub use hier_grid::{HierGridIndex, HierarchicalGrid, LevelCell};
pub use octree::Octree;
pub use rtree::{PackedRTree, RTreeNode};
pub use str_pack::{str_partition, str_sort};
